"""``repro.core`` — the Vertexica layer (the paper's primary contribution).

A Pregel-compatible vertex-centric interface executed *inside* the
relational engine: the coordinator is a stored procedure, workers are
partitioned transform UDFs, and graph state lives in vertex/edge/message
tables.  See DESIGN.md §1 for the architecture map.
"""

from repro.core import faults
from repro.core.api import OutEdge, Vertex
from repro.core.codecs import (
    FLOAT_CODEC,
    INTEGER_CODEC,
    JSON_CODEC,
    ValueCodec,
    vector_codec,
)
from repro.core.config import VertexicaConfig
from repro.core.coordinator import Coordinator, register_coordinator
from repro.core.faults import FaultPlan, FaultSpec, InjectedFault, InjectedKill
from repro.core.metrics import RunStats, SuperstepStats
from repro.core.recovery import CheckpointPolicy, RunRecovery, program_fingerprint
from repro.core.program import (
    BatchVertexProgram,
    VertexBatch,
    VertexProgram,
    supports_batch,
)
from repro.core.runner import Vertexica, VertexicaResult
from repro.core.storage import GraphHandle, GraphStorage

__all__ = [
    "Vertex",
    "OutEdge",
    "VertexProgram",
    "BatchVertexProgram",
    "VertexBatch",
    "supports_batch",
    "ValueCodec",
    "FLOAT_CODEC",
    "INTEGER_CODEC",
    "JSON_CODEC",
    "vector_codec",
    "VertexicaConfig",
    "Coordinator",
    "register_coordinator",
    "Vertexica",
    "VertexicaResult",
    "GraphHandle",
    "GraphStorage",
    "RunStats",
    "SuperstepStats",
    "faults",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedKill",
    "CheckpointPolicy",
    "RunRecovery",
    "program_fingerprint",
]
