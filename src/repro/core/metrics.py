"""Per-superstep and per-run metrics.

The demo GUI's "time monitor" plots runtimes; these records are its
programmatic equivalent and also feed the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SuperstepStats", "RunStats"]


@dataclass(frozen=True)
class SuperstepStats:
    """What one superstep did and how long it took."""

    superstep: int
    active_vertices: int
    messages_in: int
    messages_out: int
    vertex_updates: int
    update_path: str  # "update" | "replace" | "none" | "memory"
    seconds: float
    #: global aggregator values produced this superstep (name, value)
    aggregated: tuple[tuple[str, float], ...] = ()


@dataclass
class RunStats:
    """Aggregated metrics for one Vertexica run."""

    program: str
    graph: str
    supersteps: list[SuperstepStats] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def n_supersteps(self) -> int:
        """Number of supersteps executed."""
        return len(self.supersteps)

    @property
    def total_messages(self) -> int:
        """Messages produced across all supersteps."""
        return sum(s.messages_out for s in self.supersteps)

    @property
    def total_vertex_updates(self) -> int:
        """Vertex-value updates across all supersteps."""
        return sum(s.vertex_updates for s in self.supersteps)

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"{self.program} on {self.graph}: {self.n_supersteps} supersteps, "
            f"{self.total_messages} messages, {self.total_seconds:.3f}s"
        )
