"""Per-superstep and per-run metrics.

The demo GUI's "time monitor" plots runtimes; these records are its
programmatic equivalent and also feed the benchmark harness
(``benchmarks/run_bench.py`` serializes them into BENCH_*.json).  Each
superstep now carries data-plane throughput — rows into the worker, rows
staged out, and vertices processed per second — so benchmark output and
the demo console can show where time goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SuperstepStats", "RunStats"]


@dataclass(frozen=True)
class SuperstepStats:
    """What one superstep did and how long it took."""

    superstep: int
    active_vertices: int
    messages_in: int
    messages_out: int
    vertex_updates: int
    update_path: str  # "update" | "replace" | "none" | "memory"
    seconds: float
    #: global aggregator values produced this superstep (name, value)
    aggregated: tuple[tuple[str, float], ...] = ()
    #: worker input rows (vertex + edge + message tuples seen)
    rows_in: int = 0
    #: staged output rows (vertex updates + messages + aggregator partials)
    rows_out: int = 0
    #: which compute path ran: "batch" | "scalar"
    compute_path: str = "scalar"
    #: per-shard compute seconds (sharded data plane only; empty on the
    #: SQL plane, whose partition work is not individually timed)
    shard_seconds: tuple[float, ...] = ()
    #: seconds spent mirroring shard state into the SQL tables (the
    #: ``superstep_sync="every"`` tax; 0.0 on the SQL plane / under halt)
    sync_seconds: float = 0.0
    #: seconds writing the run checkpoint that closed this superstep
    #: (includes the halt-policy boundary sync; 0.0 off boundaries and
    #: with checkpointing disabled).  Excluded from ``seconds``.
    checkpoint_seconds: float = 0.0
    #: True when the serving tier replayed this superstep's record from
    #: its version-keyed result cache instead of executing it
    served_from_cache: bool = False
    #: message rows staged *before* the combiner ran (equals
    #: ``messages_out`` when combining is off or nothing combined); the
    #: gap to ``messages_out`` is the message volume the combiner kept
    #: out of routing / staging / the shared-memory pipes
    messages_precombine: int = 0

    @property
    def vertices_per_sec(self) -> float:
        """Active vertices processed per second of superstep wall time."""
        return self.active_vertices / self.seconds if self.seconds > 0 else 0.0

    @property
    def shard_balance(self) -> float:
        """Max-over-mean shard compute time (1.0 = perfectly balanced;
        0.0 when shard timings were not recorded).  The closer to 1.0,
        the better parallel shard workers can scale this superstep."""
        busy = [s for s in self.shard_seconds if s > 0]
        if not busy:
            return 0.0
        return max(busy) / (sum(busy) / len(busy))

    @property
    def rows_per_sec(self) -> float:
        """Worker input rows consumed per second of superstep wall time."""
        return self.rows_in / self.seconds if self.seconds > 0 else 0.0


@dataclass
class RunStats:
    """Aggregated metrics for one Vertexica run."""

    program: str
    graph: str
    supersteps: list[SuperstepStats] = field(default_factory=list)
    total_seconds: float = 0.0
    #: transient faults retried (shard-task retries + superstep rollbacks)
    retries: int = 0
    #: completed-superstep counts restored from checkpoints instead of
    #: executed, summed over recovery events (``resume=True`` and in-run
    #: rollbacks); 0 for an undisturbed run
    recovered_supersteps: int = 0
    #: total seconds writing run checkpoints (0.0 when disabled)
    checkpoint_seconds: float = 0.0
    #: True when the serving tier answered from its version-keyed result
    #: cache — the timings then describe the *original* computation, not
    #: this request (demo console and bench output show the marker)
    served_from_cache: bool = False

    @property
    def n_supersteps(self) -> int:
        """Number of supersteps executed."""
        return len(self.supersteps)

    @property
    def total_messages(self) -> int:
        """Messages produced across all supersteps."""
        return sum(s.messages_out for s in self.supersteps)

    @property
    def total_messages_precombine(self) -> int:
        """Message rows staged before combining, across all supersteps
        (equals :attr:`total_messages` when no combiner ran)."""
        return sum(s.messages_precombine for s in self.supersteps)

    @property
    def messages_combined_away(self) -> int:
        """Message rows the combiner eliminated before routing/delivery
        — the volume that never crossed staging or the executor pipes."""
        return self.total_messages_precombine - self.total_messages

    @property
    def total_vertex_updates(self) -> int:
        """Vertex-value updates across all supersteps."""
        return sum(s.vertex_updates for s in self.supersteps)

    @property
    def total_rows_in(self) -> int:
        """Worker input rows consumed across all supersteps."""
        return sum(s.rows_in for s in self.supersteps)

    @property
    def total_rows_out(self) -> int:
        """Staged output rows produced across all supersteps."""
        return sum(s.rows_out for s in self.supersteps)

    @property
    def vertices_per_sec(self) -> float:
        """Active-vertex throughput over superstep wall time."""
        superstep_seconds = sum(s.seconds for s in self.supersteps)
        if superstep_seconds <= 0:
            return 0.0
        return sum(s.active_vertices for s in self.supersteps) / superstep_seconds

    @property
    def rows_per_sec(self) -> float:
        """Worker input-row throughput over superstep wall time."""
        superstep_seconds = sum(s.seconds for s in self.supersteps)
        if superstep_seconds <= 0:
            return 0.0
        return self.total_rows_in / superstep_seconds

    def summary(self) -> str:
        """One-line human summary including data-plane throughput."""
        line = (
            f"{self.program} on {self.graph}: {self.n_supersteps} supersteps, "
            f"{self.total_messages} messages, {self.total_seconds:.3f}s"
        )
        if self.total_rows_in:
            line += (
                f" ({self.vertices_per_sec:,.0f} vertices/s, "
                f"{self.rows_per_sec:,.0f} rows/s)"
            )
        if self.recovered_supersteps:
            line += f" [recovered {self.recovered_supersteps} supersteps]"
        if self.retries:
            line += f" [{self.retries} transient retries]"
        if self.served_from_cache:
            line += " [served from cache]"
        return line

    def breakdown(self) -> str:
        """Per-superstep table showing where the time goes."""
        header = (
            f"{'step':>4} {'path':>6} {'active':>8} {'rows in':>9} "
            f"{'rows out':>9} {'msgs out':>9} {'v/sec':>11} {'seconds':>8}"
        )
        lines = [header, "-" * len(header)]
        for s in self.supersteps:
            lines.append(
                f"{s.superstep:>4} {s.compute_path:>6} {s.active_vertices:>8} "
                f"{s.rows_in:>9} {s.rows_out:>9} {s.messages_out:>9} "
                f"{s.vertices_per_sec:>11,.0f} {s.seconds:>8.3f}"
            )
        return "\n".join(lines)
