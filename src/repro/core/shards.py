"""The shard-resident superstep data plane (``data_plane="shards"``).

The paper's workers "hash partition the table union on the vertex id"
**every superstep** — the SQL plane faithfully pays that cost each
iteration: re-run the union input query, lexsort the whole relation into
partitions, stage worker output into a table, and apply it back with SQL.
This module keeps the run state resident instead:

1. **Partition once.**  At run setup the graph is hash-partitioned into
   ``n_partitions`` vid-hash shards (``vid % n_shards`` — the same
   bucketing :class:`~repro.engine.operators.TransformOp` uses, so both
   planes compute over identical vertex groupings).  Each
   :class:`VertexShard` owns its sorted vertex ids, halt flags,
   storage-encoded values, and a CSR view of its out-edges (the PR 2
   edge-cache layout, built once instead of decoded at superstep 0).
2. **Compute shard-local.**  Every superstep builds a
   :class:`~repro.core.worker._DecodedPartition` view straight over the
   resident arrays — no SQL, no decode — and runs the *same* layer-2
   compute as the SQL plane (:meth:`VertexWorker.compute_decoded`), so
   batch and scalar programs work unchanged.  Shard tasks have no global
   sort barrier and the kernels are numpy-heavy (GIL released), which is
   what lets ``n_workers > 1`` actually scale.
3. **Route messages in-plane.**  Emitted messages scatter to their
   destination shards with one stable bucket sort per source shard
   (:func:`~repro.engine.operators.hash_bucket_order`); each destination
   concatenates its inbound buffers in source-shard order and segment-
   sorts them by destination id.  That ordering — (destination, source
   shard, emission order) — is exactly the delivery order the SQL plane
   produces via the staging table and the per-superstep lexsort, which
   is what keeps float reductions (``sum(messages)``) bit-identical
   across planes.  Combiners are applied at the destination shard with
   the same float64 ``reduceat`` arithmetic the SQL ``GROUP BY`` uses.

Relational interop is preserved by an explicit sync policy
(``superstep_sync``): ``"every"`` mirrors the vertex/message tables
after each superstep (the legacy plane's observable behavior — hybrid
SQL queries, the demo console, and checkpoints see fresh state),
``"halt"`` materializes once at completion (the fast path).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core import faults
from repro.core.program import VertexProgram
from repro.core.storage import GraphHandle, GraphStorage
from repro.core.worker import (
    StagedRows,
    VertexWorker,
    _csr_align,
    _DecodedPartition,
)
from repro.engine.operators import hash_bucket_order
from repro.engine.parallel import PartitionExecutor
from repro.engine.types import VARCHAR

__all__ = ["ShardedDataPlane", "VertexShard", "ShardStepStats"]


@dataclass
class VertexShard:
    """One vid-hash shard's resident state.

    Vertex arrays are aligned and sorted by vertex id; edges are CSR
    against ``vertex_ids`` (built once — the edge relation is immutable
    during a run).  Pending messages are kept stably sorted by
    destination id, preserving arrival order within a destination.
    Values are *storage-encoded* (the vertex/message table
    representation), exactly like the SQL plane's columns.
    """

    index: int
    vertex_ids: np.ndarray  # int64, sorted
    halted: np.ndarray  # bool
    raw_values: np.ndarray  # storage dtype (float64/int64/object; (nv, k) for vectors)
    value_valid: np.ndarray  # bool
    edge_indptr: np.ndarray  # int64 [nv + 1]
    edge_targets: np.ndarray  # int64
    edge_weights: np.ndarray  # float64
    msg_src: np.ndarray  # int64 senders (MIN(vid) once combined)
    msg_dst: np.ndarray  # int64, stably sorted
    msg_raw: np.ndarray  # storage dtype ((nm, k) for vector codecs)
    msg_valid: np.ndarray  # bool

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_ids)

    @property
    def pending_messages(self) -> int:
        return len(self.msg_dst)

    @property
    def active_vertices(self) -> int:
        return int(np.count_nonzero(~self.halted))

    def decoded(self) -> _DecodedPartition:
        """A layer-2 view over the resident arrays — the shard plane's
        replacement for the SQL plane's decode layer.  Messages to ids
        with no vertex row are dropped here (and counted), exactly like
        the relational decode."""
        msg_indptr, (msg_src, msg_raw, msg_valid), dropped = _csr_align(
            self.msg_dst, self.vertex_ids, (self.msg_src, self.msg_raw, self.msg_valid)
        )
        return _DecodedPartition(
            self.vertex_ids,
            self.halted,
            self.raw_values,
            self.value_valid,
            self.edge_indptr,
            self.edge_targets,
            self.edge_weights,
            msg_indptr,
            msg_src,
            msg_raw,
            msg_valid,
            dropped,
        )

    def clear_messages(self, empty_raw: np.ndarray) -> None:
        empty_i64 = np.empty(0, dtype=np.int64)
        self.msg_src = empty_i64
        self.msg_dst = empty_i64
        self.msg_raw = empty_raw
        self.msg_valid = np.empty(0, dtype=bool)


@dataclass(frozen=True)
class ShardStepStats:
    """What one sharded superstep did (feeds ``SuperstepStats``)."""

    vertices_ran: int
    vertex_updates: int
    messages_out: int
    rows_in: int
    rows_out: int
    shard_seconds: tuple[float, ...]
    #: transient shard-task faults retried in place this superstep
    retries: int = 0


class ShardedDataPlane:
    """Resident shards for one run: built once, stepped per superstep,
    synced back to the relational tables per the ``superstep_sync``
    policy."""

    def __init__(
        self,
        storage: GraphStorage,
        graph: GraphHandle,
        program: VertexProgram,
        n_shards: int,
        use_combiner: bool,
        task_retries: int = 0,
        retry_backoff: float = 0.01,
    ) -> None:
        self.storage = storage
        self.graph = graph
        self.program = program
        self.n_shards = max(1, int(n_shards))
        self.use_combiner = bool(use_combiner and program.combiner is not None)
        #: bounded in-place retry budget for transient shard-task faults
        self.task_retries = max(0, int(task_retries))
        self.retry_backoff = retry_backoff
        self.aggregated: dict[str, float] = {}
        v_codec = program.vertex_codec
        m_codec = program.message_codec
        v_sql = v_codec.sql_type
        m_sql = m_codec.sql_type
        self._value_storage_dtype = object if v_sql is VARCHAR else v_sql.numpy_dtype
        self._msg_storage_dtype = object if m_sql is VARCHAR else m_sql.numpy_dtype
        self._msg_is_varchar = m_sql is VARCHAR
        self._value_is_varchar = v_sql is VARCHAR
        #: vector codec widths (0 = scalar): resident value/message
        #: arrays are 2-D ``(n, k)`` when > 0.
        self._value_width = v_codec.width
        self._msg_width = m_codec.width
        self.shards = self._build_shards()

    def _empty_msg_raw(self) -> np.ndarray:
        """A zero-length message storage array of the run's shape."""
        if self._msg_width:
            return np.empty((0, self._msg_width), dtype=np.float64)
        return np.empty(0, dtype=self._msg_storage_dtype)

    # ------------------------------------------------------------------
    # Partition once (run setup)
    # ------------------------------------------------------------------
    def _build_shards(self) -> list[VertexShard]:
        """Hash-partition the freshly set-up vertex/edge tables into
        resident shards — the single partitioning pass of the run."""
        db = self.storage.db
        graph = self.graph
        vdata = db.table(graph.vertex_table).data()
        ids = np.asarray(vdata.column("id").values, dtype=np.int64)
        halted = np.asarray(vdata.column("halted").values, dtype=bool)
        if self._value_width:
            names = self.program.vertex_codec.column_names()
            raw_values = np.column_stack(
                [np.asarray(vdata.column(c).values, np.float64) for c in names]
            ) if len(ids) else np.empty((0, self._value_width), dtype=np.float64)
            value_valid = np.asarray(vdata.column(names[0]).valid, dtype=bool)
        else:
            value_col = vdata.column("value")
            raw_values = value_col.values
            value_valid = value_col.valid
        if len(ids) > 1 and np.any(ids[1:] < ids[:-1]):  # setup_run sorts; stay safe
            order = np.argsort(ids, kind="stable")
            ids, halted = ids[order], halted[order]
            raw_values, value_valid = raw_values[order], value_valid[order]

        edata = db.table(graph.edge_table).data()
        esrc = np.asarray(edata.column("src").values, dtype=np.int64)
        edst = np.asarray(edata.column("dst").values, dtype=np.int64)
        eweight = np.asarray(edata.column("weight").values, dtype=np.float64)

        n = self.n_shards
        v_order, v_bounds = hash_bucket_order(ids % n, n)
        # Edges sort by src *within* each bucket (`_csr_align` needs
        # sorted owners): `load_graph` stores canonical (src, dst,
        # weight) order, but SQL DML on the edge table between runs may
        # have appended rows out of order.  The sort is stable, so rows
        # with equal src keep table order — exactly what the SQL plane's
        # stable per-superstep lexsort delivers.
        e_order, e_bounds = hash_bucket_order(esrc % n, n, (esrc,))
        shards: list[VertexShard] = []
        for s in range(n):
            v_sel = v_order[v_bounds[s] : v_bounds[s + 1]]
            shard_ids = ids[v_sel]
            e_sel = e_order[e_bounds[s] : e_bounds[s + 1]]
            edge_indptr, (edge_targets, edge_weights), _ = _csr_align(
                esrc[e_sel], shard_ids, (edst[e_sel], eweight[e_sel])
            )
            shard = VertexShard(
                index=s,
                vertex_ids=shard_ids,
                halted=halted[v_sel],
                raw_values=raw_values[v_sel],
                value_valid=value_valid[v_sel],
                edge_indptr=edge_indptr,
                edge_targets=edge_targets,
                edge_weights=edge_weights,
                msg_src=np.empty(0, dtype=np.int64),
                msg_dst=np.empty(0, dtype=np.int64),
                msg_raw=self._empty_msg_raw(),
                msg_valid=np.empty(0, dtype=bool),
            )
            shards.append(shard)
        self._load_messages(shards)
        return shards

    def _load_messages(self, shards: list[VertexShard]) -> None:
        """Adopt the message table's pending rows into the shard inboxes.

        Empty on a fresh run (``setup_run`` recreates the table); non-empty
        when the plane is (re)built from restored checkpoint state or a
        prior sync.  ``sync_tables`` wrote the rows globally stable-sorted
        by destination id — and every destination id lives in exactly one
        shard — so the stable re-bucketing below reproduces each shard's
        inbox bit-for-bit, including the (source shard, emission order)
        tie order that keeps float reductions deterministic.
        """
        mdata = self.storage.db.table(self.graph.message_table).data()
        if mdata.num_rows == 0:
            return
        src = np.asarray(mdata.column("src").values, dtype=np.int64)
        dst = np.asarray(mdata.column("dst").values, dtype=np.int64)
        if self._msg_width:
            names = self.program.message_codec.column_names()
            raw = np.column_stack(
                [np.asarray(mdata.column(c).values, np.float64) for c in names]
            )
            valid = np.asarray(mdata.column(names[0]).valid, dtype=bool)
        else:
            value_col = mdata.column("value")
            raw = value_col.values
            valid = value_col.valid
        n = self.n_shards
        order, bounds = hash_bucket_order(dst % n, n, (dst,))
        for shard in shards:
            sel = order[bounds[shard.index] : bounds[shard.index + 1]]
            if not len(sel):
                continue
            shard.msg_src = src[sel]
            shard.msg_dst = dst[sel]
            shard.msg_raw = raw[sel]
            shard.msg_valid = np.asarray(valid[sel], dtype=bool)

    # ------------------------------------------------------------------
    # Run-state queries (the coordinator's halt condition)
    # ------------------------------------------------------------------
    @property
    def pending_messages(self) -> int:
        return sum(shard.pending_messages for shard in self.shards)

    @property
    def active_vertices(self) -> int:
        return sum(shard.active_vertices for shard in self.shards)

    # ------------------------------------------------------------------
    # One superstep
    # ------------------------------------------------------------------
    def run_superstep(
        self, worker: VertexWorker, executor: PartitionExecutor
    ) -> ShardStepStats:
        """Compute every shard (optionally in parallel), then apply
        vertex updates, route messages, and reduce aggregators — the
        synchronous superstep barrier, minus all the SQL.

        Each shard task also *pre-buckets* its own emitted messages by
        destination shard (one stable sort per source shard, inside the
        parallel section), so the barrier-side router only concatenates
        per-destination inboxes and segment-sorts them.
        """
        messages_in = self.pending_messages
        shard_seconds = [0.0] * self.n_shards

        def run_shard(
            shard: VertexShard, index: int
        ) -> tuple[StagedRows, tuple | None, int]:
            started = time.perf_counter()
            retried = [0]

            # A shard task is a pure function of resident state (kernels
            # never mutate their input views; fancy-indexed copies back
            # them), so a transient fault — injected or real — can be
            # retried in place without touching the checkpoint layer.
            # Run counters are recorded exactly once, after the retry
            # loop commits.
            def attempt() -> tuple[StagedRows, tuple | None, int, int]:
                faults.trip("shard.compute", superstep=worker.superstep, shard=index)
                part = shard.decoded()
                out, ran = worker.compute_decoded(part, record=False)
                staged = out.to_staged()
                return staged, self._bucket_messages(staged), ran, part.dropped

            def on_retry(exc: BaseException, attempt_no: int, delay: float) -> None:
                retried[0] = attempt_no

            try:
                staged, routed, ran, dropped = faults.retry_call(
                    attempt,
                    retries=self.task_retries,
                    backoff=self.retry_backoff,
                    on_retry=on_retry,
                )
            except Exception as exc:
                exc.add_note(
                    f"shard {index} failed at superstep {worker.superstep} "
                    f"after {retried[0]} retries"
                )
                raise
            worker.record_partition_counts(ran, dropped)
            shard_seconds[index] = time.perf_counter() - started
            return staged, routed, retried[0]

        results = executor(
            run_shard, [(shard, shard.index) for shard in self.shards]
        )
        staged = [result[0] for result in results]
        routed = [result[1] for result in results]
        retries = sum(result[2] for result in results)
        vertex_updates = self._apply_vertex_updates(staged)
        faults.trip("shard.route", superstep=worker.superstep)
        messages_out = self._route_messages(routed)
        self.aggregated = self._reduce_aggregators(staged)
        rows_in = self.graph.num_vertices + messages_in
        if worker.superstep == 0:
            rows_in += self.graph.num_edges
        return ShardStepStats(
            vertices_ran=worker.vertices_ran,
            vertex_updates=vertex_updates,
            messages_out=messages_out,
            rows_in=rows_in,
            rows_out=sum(rows.num_rows for rows in staged),
            shard_seconds=tuple(shard_seconds),
            retries=retries,
        )

    # ------------------------------------------------------------------
    # Apply staged vertex updates in place
    # ------------------------------------------------------------------
    def _apply_vertex_updates(self, staged: list[StagedRows]) -> int:
        """Kind-0 rows mutate the owning shard directly — the in-memory
        equivalent of the paper's Update-vs-Replace choice (``"memory"``
        in the metrics)."""
        total = 0
        for shard, rows in zip(self.shards, staged):
            mask = rows.kind == 0
            count = int(np.count_nonzero(mask))
            if count == 0:
                continue
            vids = rows.vid[mask]
            pos = np.searchsorted(shard.vertex_ids, vids)
            shard.halted[pos] = rows.halted[mask]
            if self._value_width:
                values = rows.pay[mask][:, : self._value_width]
                valid = rows.pay_valid[mask]
            elif self._value_is_varchar:
                values, valid = rows.s1[mask], rows.s1_valid[mask]
            else:
                # Numeric payloads stage as float64; the SQL plane casts
                # them back on the way into the vertex table
                # (CAST(f1 AS INTEGER) for integral codecs) — mirror it.
                values = rows.f1[mask].astype(self._value_storage_dtype)
                valid = rows.f1_valid[mask]
            shard.raw_values[pos] = values
            shard.value_valid[pos] = valid
            total += count
        return total

    # ------------------------------------------------------------------
    # In-plane message routing
    # ------------------------------------------------------------------
    def _bucket_messages(
        self, staged: StagedRows
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """One source shard's emitted messages, bucket-sorted by
        ``(destination shard, destination id)`` — runs *inside* the shard
        task, so the per-source routing sort lands in the parallel
        section.  Returns ``(senders, dst, values, valid, bounds)`` with
        destination shard ``d`` owning ``[bounds[d]:bounds[d+1]]``, or
        ``None`` when the shard emitted nothing."""
        rows = staged
        mask = rows.kind == 1
        if not mask.any():
            return None
        if self._msg_width:
            values = rows.pay[mask][:, : self._msg_width]
            valid = rows.pay_valid[mask]
        elif self._msg_is_varchar:
            values, valid = rows.s1[mask], rows.s1_valid[mask]
        else:
            # Mirror the SQL plane's apply_messages cast into the
            # message table's column type.
            values = rows.f1[mask].astype(self._msg_storage_dtype)
            valid = rows.f1_valid[mask]
        senders, dst = rows.vid[mask], rows.dst[mask]
        order, bounds = hash_bucket_order(dst % self.n_shards, self.n_shards, (dst,))
        return senders[order], dst[order], values[order], valid[order], bounds

    def _route_messages(self, routed: list[tuple | None]) -> int:
        """Deliver the pre-bucketed messages to their destination shards.

        Ordering contract (what makes the planes bit-identical): the SQL
        plane concatenates partition outputs in partition-index order
        into the staging table, and its next-superstep lexsort is stable
        — so vertex ``v`` receives messages ordered by (source
        partition, emission order).  Here each source shard has already
        stable-sorted its own messages by ``(destination shard,
        destination id)`` (:meth:`_bucket_messages`); a destination
        concatenates its per-source buckets in shard-index order (the
        staging order) and one stable segment-sort by destination id
        restores exactly that delivery order — the ties within a
        destination id keep (source shard, emission order).
        """
        chunks = [c for c in routed if c is not None]
        if not chunks:
            for shard in self.shards:
                shard.clear_messages(self._empty_msg_raw())
            return 0

        total = 0
        for shard in self.shards:
            d = shard.index
            parts = [
                (c[0][c[4][d]:c[4][d + 1]], c[1][c[4][d]:c[4][d + 1]],
                 c[2][c[4][d]:c[4][d + 1]], c[3][c[4][d]:c[4][d + 1]])
                for c in chunks
            ]
            parts = [p for p in parts if len(p[1])]
            if not parts:
                shard.clear_messages(self._empty_msg_raw())
                continue
            if len(parts) == 1:
                # A single contributing source's bucket is already sorted
                # by destination id — no merge sort needed.
                inbox = parts[0]
            else:
                senders = np.concatenate([p[0] for p in parts])
                dst = np.concatenate([p[1] for p in parts])
                values = np.concatenate([p[2] for p in parts])
                valid = np.concatenate([p[3] for p in parts])
                order = np.argsort(dst, kind="stable")
                inbox = (senders[order], dst[order], values[order], valid[order])
            if self.use_combiner:
                inbox = self._combine(*inbox)
            shard.msg_src, shard.msg_dst, shard.msg_raw, shard.msg_valid = inbox
            total += len(inbox[1])
        return total

    def _combine(
        self,
        senders: np.ndarray,
        dst: np.ndarray,
        values: np.ndarray,
        valid: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Apply the program's combiner per destination.

        Reproduces the SQL plane's ``SELECT MIN(vid), dst, OP(value) ...
        GROUP BY dst`` arithmetic exactly: reductions run over float64
        with ``reduceat`` in arrival order, NULLs replaced by the
        reduction identity, and the result cast back to the message
        column's storage type.
        """
        boundaries = np.flatnonzero(
            np.r_[True, dst[1:] != dst[:-1]] if len(dst) else np.empty(0, bool)
        )
        out_dst = dst[boundaries]
        out_src = np.minimum.reduceat(senders, boundaries)
        valid_counts = np.add.reduceat(valid.astype(np.int64), boundaries)
        out_valid = valid_counts > 0
        floats = values.astype(np.float64)
        op = self.program.combiner
        if op == "SUM":
            floats = np.where(valid, floats, 0.0)
            agg = np.add.reduceat(floats, boundaries)
        elif op == "MIN":
            floats = np.where(valid, floats, np.inf)
            agg = np.minimum.reduceat(floats, boundaries)
        else:  # MAX (validate() admits nothing else)
            floats = np.where(valid, floats, -np.inf)
            agg = np.maximum.reduceat(floats, boundaries)
        agg = np.where(out_valid, agg, 0.0)
        return out_src, out_dst, agg.astype(self._msg_storage_dtype), out_valid

    # ------------------------------------------------------------------
    # Aggregators
    # ------------------------------------------------------------------
    def _reduce_aggregators(self, staged: list[StagedRows]) -> dict[str, float]:
        """Reduce the per-shard kind-2 partials across shards.

        The SQL plane runs ``OP(f1)`` over the partials in staging
        (shard-index) order through ``ufunc.reduceat``; the same ufunc
        reduction over the same float64 sequence keeps the result
        bit-equal (numpy's pairwise float summation is deterministic for
        a given length, but differs from a naive sequential loop).
        """
        names = self.program.aggregators
        if not names:
            return {}
        partials: dict[str, list[float]] = {name: [] for name in names}
        for rows in staged:
            mask = rows.kind == 2
            if not mask.any():
                continue
            for name, value in zip(rows.s1[mask], rows.f1[mask].tolist()):
                partials[name].append(value)
        start = np.zeros(1, dtype=np.int64)
        ufuncs = {"SUM": np.add, "MIN": np.minimum, "MAX": np.maximum}
        out: dict[str, float] = {}
        for name, op in names.items():
            values = partials[name]
            if not values:
                continue
            array = np.asarray(values, dtype=np.float64)
            out[name] = float(ufuncs[op].reduceat(array, start)[0])
        return out

    # ------------------------------------------------------------------
    # Sync policy: mirror resident state into the relational tables
    # ------------------------------------------------------------------
    def sync_tables(self, superstep: int | None = None) -> float:
        """Write the vertex and message tables from resident shard state
        (returns seconds spent).  Under ``superstep_sync="every"`` this
        runs per superstep; under ``"halt"`` at checkpoint boundaries
        (when checkpointing) and once at completion."""
        started = time.perf_counter()
        faults.trip("storage.sync", superstep=superstep)
        shards = self.shards
        ids = np.concatenate([s.vertex_ids for s in shards])
        values = np.concatenate([s.raw_values for s in shards])
        value_valid = np.concatenate([s.value_valid for s in shards])
        halted = np.concatenate([s.halted for s in shards])
        order = np.argsort(ids, kind="stable")
        self.storage.sync_vertex_state(
            self.graph,
            self.program,
            ids[order],
            values[order],
            value_valid[order],
            halted[order],
        )
        src = np.concatenate([s.msg_src for s in shards])
        dst = np.concatenate([s.msg_dst for s in shards])
        raw = np.concatenate([s.msg_raw for s in shards])
        valid = np.concatenate([s.msg_valid for s in shards])
        morder = np.argsort(dst, kind="stable")
        self.storage.sync_message_state(
            self.graph,
            self.program,
            src[morder],
            dst[morder],
            raw[morder],
            valid[morder],
        )
        return time.perf_counter() - started
