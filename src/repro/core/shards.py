"""The shard-resident superstep data plane (``data_plane="shards"``).

The paper's workers "hash partition the table union on the vertex id"
**every superstep** — the SQL plane faithfully pays that cost each
iteration: re-run the union input query, lexsort the whole relation into
partitions, stage worker output into a table, and apply it back with SQL.
This module keeps the run state resident instead:

1. **Partition once.**  At run setup the graph is hash-partitioned into
   ``n_partitions`` vid-hash shards (``vid % n_shards`` — the same
   bucketing :class:`~repro.engine.operators.TransformOp` uses, so both
   planes compute over identical vertex groupings).  Each
   :class:`VertexShard` owns its sorted vertex ids, halt flags,
   storage-encoded values, and a CSR view of its out-edges (the PR 2
   edge-cache layout, built once instead of decoded at superstep 0).
2. **Compute shard-local.**  Every superstep builds a
   :class:`~repro.core.worker._DecodedPartition` view straight over the
   resident arrays — no SQL, no decode — and runs the *same* layer-2
   compute as the SQL plane (:meth:`VertexWorker.compute_decoded`), so
   batch and scalar programs work unchanged.  Shard tasks have no global
   sort barrier and the kernels are numpy-heavy (GIL released), which is
   what lets ``n_workers > 1`` actually scale.
3. **Route messages in-plane.**  Emitted messages scatter to their
   destination shards with one stable bucket sort per source shard
   (:func:`~repro.engine.operators.hash_bucket_order`); each destination
   concatenates its inbound buffers in source-shard order and segment-
   sorts them by destination id.  That ordering — (destination, source
   shard, emission order) — is exactly the delivery order the SQL plane
   produces via the staging table and the per-superstep lexsort, which
   is what keeps float reductions (``sum(messages)``) bit-identical
   across planes.  Combiners are applied at the destination shard with
   the same float64 ``reduceat`` arithmetic the SQL ``GROUP BY`` uses.

Relational interop is preserved by an explicit sync policy
(``superstep_sync``): ``"every"`` mirrors the vertex/message tables
after each superstep (the legacy plane's observable behavior — hybrid
SQL queries, the demo console, and checkpoints see fresh state),
``"halt"`` materializes once at completion (the fast path).

**Process-parallel execution** (``executor="processes"``): when the
coordinator binds a :class:`~repro.engine.parallel.ProcessExecutor`
(:meth:`ShardedDataPlane.bind_executor`), the fixed-width shard arrays —
ids, halt flags, encoded values, validity, CSR edges — move into
``multiprocessing.shared_memory`` segments (:mod:`repro.core.shmem`) and
the parent's shards are rebound to views over them.  A picklable
bootstrap ships the program closure, segment descriptors, and the armed
fault plan to every worker process exactly once (at pool start and on
plane rebuilds); per superstep only a tiny :class:`_ProcessStep`
descriptor crosses the pipe.  Message inboxes are published into fresh
shared segments each superstep (VARCHAR-codec payloads, which have no
fixed width, ship inline by pickle instead).  Every shard task returns a
:class:`ShardTaskOutput` whose aggregator partials are already reduced
to *scalars* — the shard-resident aggregator fast path, shared by all
executors — so the barrier reduces a handful of floats, not arrays.
Parent-side apply/route/reduce run in the exact same order as the
in-process path, which is what keeps ``executor="processes"``
bit-identical to serial and threaded execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core import faults
from repro.core.program import VertexProgram
from repro.core.shmem import GroupDescriptor, SharedArrayGroup, new_segment_name
from repro.core.storage import GraphHandle, GraphStorage
from repro.core.worker import (
    StagedRows,
    VertexWorker,
    _csr_align,
    _DecodedPartition,
)
from repro.engine.operators import hash_bucket_order
from repro.engine.parallel import PartitionExecutor, ProcessExecutor
from repro.engine.types import VARCHAR

__all__ = [
    "ShardedDataPlane",
    "VertexShard",
    "ShardStepStats",
    "ShardTaskOutput",
    "PlaneMeta",
]


@dataclass
class VertexShard:
    """One vid-hash shard's resident state.

    Vertex arrays are aligned and sorted by vertex id; edges are CSR
    against ``vertex_ids`` (built once — the edge relation is immutable
    during a run).  Pending messages are kept stably sorted by
    destination id, preserving arrival order within a destination.
    Values are *storage-encoded* (the vertex/message table
    representation), exactly like the SQL plane's columns.  Under
    process-parallel execution the fixed-width arrays are views into
    shared-memory segments; the layout is identical either way.
    """

    index: int
    vertex_ids: np.ndarray  # int64, sorted
    halted: np.ndarray  # bool
    raw_values: np.ndarray  # storage dtype (float64/int64/object; (nv, k) for vectors)
    value_valid: np.ndarray  # bool
    edge_indptr: np.ndarray  # int64 [nv + 1]
    edge_targets: np.ndarray  # int64
    edge_weights: np.ndarray  # float64
    msg_src: np.ndarray  # int64 senders (MIN(vid) once combined)
    msg_dst: np.ndarray  # int64, stably sorted
    msg_raw: np.ndarray  # storage dtype ((nm, k) for vector codecs)
    msg_valid: np.ndarray  # bool

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_ids)

    @property
    def pending_messages(self) -> int:
        return len(self.msg_dst)

    @property
    def active_vertices(self) -> int:
        return int(np.count_nonzero(~self.halted))

    def decoded(self) -> _DecodedPartition:
        """A layer-2 view over the resident arrays — the shard plane's
        replacement for the SQL plane's decode layer.  Messages to ids
        with no vertex row are dropped here (and counted), exactly like
        the relational decode."""
        msg_indptr, (msg_src, msg_raw, msg_valid), dropped = _csr_align(
            self.msg_dst, self.vertex_ids, (self.msg_src, self.msg_raw, self.msg_valid)
        )
        return _DecodedPartition(
            self.vertex_ids,
            self.halted,
            self.raw_values,
            self.value_valid,
            self.edge_indptr,
            self.edge_targets,
            self.edge_weights,
            msg_indptr,
            msg_src,
            msg_raw,
            msg_valid,
            dropped,
        )

    def clear_messages(self, empty_raw: np.ndarray) -> None:
        empty_i64 = np.empty(0, dtype=np.int64)
        self.msg_src = empty_i64
        self.msg_dst = empty_i64
        self.msg_raw = empty_raw
        self.msg_valid = np.empty(0, dtype=bool)


@dataclass(frozen=True)
class ShardStepStats:
    """What one sharded superstep did (feeds ``SuperstepStats``)."""

    vertices_ran: int
    vertex_updates: int
    messages_out: int
    rows_in: int
    rows_out: int
    shard_seconds: tuple[float, ...]
    #: transient shard-task faults retried in place this superstep
    retries: int = 0
    #: routed message rows before the combiner ran (== messages_out when
    #: combining is off)
    messages_precombine: int = 0


@dataclass(frozen=True)
class PlaneMeta:
    """The picklable, immutable description of a plane's storage shapes.

    Everything a worker process needs to run a shard task — widths,
    storage dtypes, retry budget — without holding a reference to the
    plane itself.  The parent plane and every child plane share one
    instance, so both sides run the exact same code paths.
    """

    n_shards: int
    task_retries: int
    retry_backoff: float
    value_width: int
    msg_width: int
    value_is_varchar: bool
    msg_is_varchar: bool
    value_dtype: str  # numpy dtype .str for numeric codecs ("|O8"-free)
    msg_dtype: str

    @property
    def value_storage_dtype(self):
        return object if self.value_is_varchar else np.dtype(self.value_dtype)

    @property
    def msg_storage_dtype(self):
        return object if self.msg_is_varchar else np.dtype(self.msg_dtype)

    def empty_msg_raw(self) -> np.ndarray:
        """A zero-length message storage array of the run's shape."""
        if self.msg_width:
            return np.empty((0, self.msg_width), dtype=np.float64)
        return np.empty(0, dtype=self.msg_storage_dtype)


@dataclass
class ShardTaskOutput:
    """One shard task's result, in wire-friendly (picklable) form.

    ``updates`` carries the kind-0 vertex-update rows only and
    ``agg_partials`` carries each aggregator partial as an already
    reduced *scalar* — the shard-resident aggregator fast path: the
    superstep barrier applies updates and reduces a few floats instead
    of re-scanning whole staged-row arrays (and, under process
    execution, the pipe never ships kind-1/kind-2 rows at all — routed
    messages travel pre-bucketed, aggregates as scalars).
    """

    updates: StagedRows
    routed: tuple | None
    agg_partials: list[tuple[str, float]]
    ran: int
    dropped: int
    rows_out: int
    retried: int
    seconds: float


# ---------------------------------------------------------------------------
# Shard-task primitives (shared verbatim by the parent plane and worker
# processes — one implementation is what keeps every executor bit-identical)
# ---------------------------------------------------------------------------
def _mask_staged(rows: StagedRows, kind: int) -> StagedRows:
    """The subset of ``rows`` with the given kind, order preserved."""
    mask = rows.kind == kind
    return StagedRows(
        rows.kind[mask],
        rows.vid[mask],
        rows.dst[mask],
        rows.f1[mask],
        rows.f1_valid[mask],
        rows.s1[mask],
        rows.s1_valid[mask],
        rows.halted[mask],
        rows.pay[mask] if rows.pay is not None else None,
        rows.pay_valid[mask] if rows.pay_valid is not None else None,
    )


def _staged_agg_partials(rows: StagedRows) -> list[tuple[str, float]]:
    """Kind-2 rows as ``(name, scalar)`` pairs in staging order."""
    mask = rows.kind == 2
    if not mask.any():
        return []
    return list(zip(rows.s1[mask].tolist(), rows.f1[mask].tolist()))


def _bucket_staged(staged: StagedRows, meta: PlaneMeta) -> tuple | None:
    """One source shard's emitted messages, bucket-sorted by
    ``(destination shard, destination id)`` — runs *inside* the shard
    task, so the per-source routing sort lands in the parallel section.
    Returns ``(senders, dst, values, valid, bounds)`` with destination
    shard ``d`` owning ``[bounds[d]:bounds[d+1]]``, or ``None`` when the
    shard emitted nothing."""
    rows = staged
    mask = rows.kind == 1
    if not mask.any():
        return None
    if meta.msg_width:
        values = rows.pay[mask][:, : meta.msg_width]
        valid = rows.pay_valid[mask]
    elif meta.msg_is_varchar:
        values, valid = rows.s1[mask], rows.s1_valid[mask]
    else:
        # Mirror the SQL plane's apply_messages cast into the
        # message table's column type.
        values = rows.f1[mask].astype(meta.msg_storage_dtype)
        valid = rows.f1_valid[mask]
    senders, dst = rows.vid[mask], rows.dst[mask]
    order, bounds = hash_bucket_order(dst % meta.n_shards, meta.n_shards, (dst,))
    return senders[order], dst[order], values[order], valid[order], bounds


def _apply_updates_to_shard(shard: VertexShard, rows: StagedRows, meta: PlaneMeta) -> int:
    """Kind-0 rows mutate the owning shard directly — the in-memory
    equivalent of the paper's Update-vs-Replace choice (``"memory"``
    in the metrics)."""
    mask = rows.kind == 0
    count = int(np.count_nonzero(mask))
    if count == 0:
        return 0
    vids = rows.vid[mask]
    pos = np.searchsorted(shard.vertex_ids, vids)
    shard.halted[pos] = rows.halted[mask]
    if meta.value_width:
        values = rows.pay[mask][:, : meta.value_width]
        valid = rows.pay_valid[mask]
    elif meta.value_is_varchar:
        values, valid = rows.s1[mask], rows.s1_valid[mask]
    else:
        # Numeric payloads stage as float64; the SQL plane casts
        # them back on the way into the vertex table
        # (CAST(f1 AS INTEGER) for integral codecs) — mirror it.
        values = rows.f1[mask].astype(meta.value_storage_dtype)
        valid = rows.f1_valid[mask]
    shard.raw_values[pos] = values
    shard.value_valid[pos] = valid
    return count


def _run_shard_task(
    shard: VertexShard, index: int, worker: VertexWorker, meta: PlaneMeta
) -> ShardTaskOutput:
    """Execute one shard's superstep: trip/retry, compute, pre-bucket.

    A shard task is a pure function of resident state (kernels never
    mutate their input views; fancy-indexed copies back them), so a
    transient fault — injected or real — can be retried in place without
    touching the checkpoint layer.  Run counters are *not* recorded here:
    the caller accounts exactly once after the task commits.
    """
    started = time.perf_counter()
    retried = [0]

    def attempt() -> tuple[StagedRows, tuple | None, int, int]:
        faults.trip("shard.compute", superstep=worker.superstep, shard=index)
        part = shard.decoded()
        out, ran = worker.compute_decoded(part, record=False)
        staged = out.to_staged()
        return staged, _bucket_staged(staged, meta), ran, part.dropped

    def on_retry(exc: BaseException, attempt_no: int, delay: float) -> None:
        retried[0] = attempt_no

    try:
        staged, routed, ran, dropped = faults.retry_call(
            attempt,
            retries=meta.task_retries,
            backoff=meta.retry_backoff,
            on_retry=on_retry,
        )
    except Exception as exc:
        exc.add_note(
            f"shard {index} failed at superstep {worker.superstep} "
            f"after {retried[0]} retries"
        )
        raise
    return ShardTaskOutput(
        updates=_mask_staged(staged, 0),
        routed=routed,
        agg_partials=_staged_agg_partials(staged),
        ran=ran,
        dropped=dropped,
        rows_out=staged.num_rows,
        retried=retried[0],
        seconds=time.perf_counter() - started,
    )


class ShardedDataPlane:
    """Resident shards for one run: built once, stepped per superstep,
    synced back to the relational tables per the ``superstep_sync``
    policy.  :meth:`bind_executor` moves the resident arrays into shared
    memory when the run executes on worker processes."""

    def __init__(
        self,
        storage: GraphStorage,
        graph: GraphHandle,
        program: VertexProgram,
        n_shards: int,
        use_combiner: bool,
        task_retries: int = 0,
        retry_backoff: float = 0.01,
    ) -> None:
        self.storage = storage
        self.graph = graph
        self.program = program
        self.n_shards = max(1, int(n_shards))
        self.use_combiner = bool(use_combiner and program.combiner is not None)
        self.aggregated: dict[str, float] = {}
        v_codec = program.vertex_codec
        m_codec = program.message_codec
        v_sql = v_codec.sql_type
        m_sql = m_codec.sql_type
        self.meta = PlaneMeta(
            n_shards=self.n_shards,
            task_retries=max(0, int(task_retries)),
            retry_backoff=retry_backoff,
            value_width=v_codec.width,
            msg_width=m_codec.width,
            value_is_varchar=v_sql is VARCHAR,
            msg_is_varchar=m_sql is VARCHAR,
            value_dtype="f8" if v_sql is VARCHAR else np.dtype(v_sql.numpy_dtype).str,
            msg_dtype="f8" if m_sql is VARCHAR else np.dtype(m_sql.numpy_dtype).str,
        )
        self.shards = self._build_shards()
        # Process-parallel state (armed by bind_executor).
        self._proc_executor: ProcessExecutor | None = None
        self._token: str | None = None
        self._shard_groups: list[SharedArrayGroup] = []
        self._msg_groups: list[SharedArrayGroup | None] = [None] * self.n_shards
        self._closed = False

    def _empty_msg_raw(self) -> np.ndarray:
        """A zero-length message storage array of the run's shape."""
        return self.meta.empty_msg_raw()

    # ------------------------------------------------------------------
    # Partition once (run setup)
    # ------------------------------------------------------------------
    def _build_shards(self) -> list[VertexShard]:
        """Hash-partition the freshly set-up vertex/edge tables into
        resident shards — the single partitioning pass of the run."""
        db = self.storage.db
        graph = self.graph
        meta = self.meta
        vdata = db.table(graph.vertex_table).data()
        ids = np.asarray(vdata.column("id").values, dtype=np.int64)
        halted = np.asarray(vdata.column("halted").values, dtype=bool)
        if meta.value_width:
            names = self.program.vertex_codec.column_names()
            raw_values = np.column_stack(
                [np.asarray(vdata.column(c).values, np.float64) for c in names]
            ) if len(ids) else np.empty((0, meta.value_width), dtype=np.float64)
            value_valid = np.asarray(vdata.column(names[0]).valid, dtype=bool)
        else:
            value_col = vdata.column("value")
            raw_values = value_col.values
            value_valid = value_col.valid
        if len(ids) > 1 and np.any(ids[1:] < ids[:-1]):  # setup_run sorts; stay safe
            order = np.argsort(ids, kind="stable")
            ids, halted = ids[order], halted[order]
            raw_values, value_valid = raw_values[order], value_valid[order]

        edata = db.table(graph.edge_table).data()
        esrc = np.asarray(edata.column("src").values, dtype=np.int64)
        edst = np.asarray(edata.column("dst").values, dtype=np.int64)
        eweight = np.asarray(edata.column("weight").values, dtype=np.float64)

        n = self.n_shards
        v_order, v_bounds = hash_bucket_order(ids % n, n)
        # Edges sort by src *within* each bucket (`_csr_align` needs
        # sorted owners): `load_graph` stores canonical (src, dst,
        # weight) order, but SQL DML on the edge table between runs may
        # have appended rows out of order.  The sort is stable, so rows
        # with equal src keep table order — exactly what the SQL plane's
        # stable per-superstep lexsort delivers.
        e_order, e_bounds = hash_bucket_order(esrc % n, n, (esrc,))
        shards: list[VertexShard] = []
        for s in range(n):
            v_sel = v_order[v_bounds[s] : v_bounds[s + 1]]
            shard_ids = ids[v_sel]
            e_sel = e_order[e_bounds[s] : e_bounds[s + 1]]
            edge_indptr, (edge_targets, edge_weights), _ = _csr_align(
                esrc[e_sel], shard_ids, (edst[e_sel], eweight[e_sel])
            )
            shard = VertexShard(
                index=s,
                vertex_ids=shard_ids,
                halted=halted[v_sel],
                raw_values=raw_values[v_sel],
                value_valid=value_valid[v_sel],
                edge_indptr=edge_indptr,
                edge_targets=edge_targets,
                edge_weights=edge_weights,
                msg_src=np.empty(0, dtype=np.int64),
                msg_dst=np.empty(0, dtype=np.int64),
                msg_raw=self._empty_msg_raw(),
                msg_valid=np.empty(0, dtype=bool),
            )
            shards.append(shard)
        self._load_messages(shards)
        return shards

    def _load_messages(self, shards: list[VertexShard]) -> None:
        """Adopt the message table's pending rows into the shard inboxes.

        Empty on a fresh run (``setup_run`` recreates the table); non-empty
        when the plane is (re)built from restored checkpoint state or a
        prior sync.  ``sync_tables`` wrote the rows globally stable-sorted
        by destination id — and every destination id lives in exactly one
        shard — so the stable re-bucketing below reproduces each shard's
        inbox bit-for-bit, including the (source shard, emission order)
        tie order that keeps float reductions deterministic.
        """
        mdata = self.storage.db.table(self.graph.message_table).data()
        if mdata.num_rows == 0:
            return
        src = np.asarray(mdata.column("src").values, dtype=np.int64)
        dst = np.asarray(mdata.column("dst").values, dtype=np.int64)
        if self.meta.msg_width:
            names = self.program.message_codec.column_names()
            raw = np.column_stack(
                [np.asarray(mdata.column(c).values, np.float64) for c in names]
            )
            valid = np.asarray(mdata.column(names[0]).valid, dtype=bool)
        else:
            value_col = mdata.column("value")
            raw = value_col.values
            valid = value_col.valid
        n = self.n_shards
        order, bounds = hash_bucket_order(dst % n, n, (dst,))
        for shard in shards:
            sel = order[bounds[shard.index] : bounds[shard.index + 1]]
            if not len(sel):
                continue
            shard.msg_src = src[sel]
            shard.msg_dst = dst[sel]
            shard.msg_raw = raw[sel]
            shard.msg_valid = np.asarray(valid[sel], dtype=bool)

    # ------------------------------------------------------------------
    # Process-parallel wiring: shared segments + pickled-once bootstrap
    # ------------------------------------------------------------------
    def bind_executor(self, executor: PartitionExecutor) -> None:
        """Arm the plane for its run executor.

        For a multi-process :class:`ProcessExecutor` over more than one
        shard, this moves every fixed-width shard array into shared
        memory and installs the plane bootstrap — program closure,
        segment descriptors, armed fault plan — into the worker
        processes, pickled exactly once.  (Called again after a plane
        rebuild: the fresh bootstrap replaces the workers' stale plane.)
        For serial/thread executors it is a no-op.
        """
        if not isinstance(executor, ProcessExecutor):
            return
        if self.n_shards <= 1 or executor.n_processes <= 1:
            return  # the executor serial-fallbacks anyway; nothing to share
        token = new_segment_name("vxplane")
        groups: list[SharedArrayGroup] = []
        descriptors: list[GroupDescriptor] = []
        object_values: list[np.ndarray | None] = []
        for shard in self.shards:
            arrays = {
                "vertex_ids": shard.vertex_ids,
                "halted": shard.halted,
                "value_valid": shard.value_valid,
                "edge_indptr": shard.edge_indptr,
                "edge_targets": shard.edge_targets,
                "edge_weights": shard.edge_weights,
            }
            if not self.meta.value_is_varchar:
                arrays["raw_values"] = np.asarray(shard.raw_values)
            group = SharedArrayGroup.create(f"{token}s{shard.index}", arrays)
            groups.append(group)
            descriptors.append(group.descriptor)
            # Rebind the parent's shard to the shared views: parent-side
            # vertex updates become visible to the workers with no copy.
            shard.vertex_ids = group.arrays["vertex_ids"]
            shard.halted = group.arrays["halted"]
            shard.value_valid = group.arrays["value_valid"]
            shard.edge_indptr = group.arrays["edge_indptr"]
            shard.edge_targets = group.arrays["edge_targets"]
            shard.edge_weights = group.arrays["edge_weights"]
            if not self.meta.value_is_varchar:
                shard.raw_values = group.arrays["raw_values"]
                object_values.append(None)
            else:
                object_values.append(shard.raw_values)
        bootstrap = _PlaneBootstrap(
            token=token,
            program=self.program,
            num_vertices=self.graph.num_vertices,
            meta=self.meta,
            shard_groups=tuple(descriptors),
            object_values=tuple(object_values),
            fault_plan=faults.active_plan_json(),
        )
        executor.install(bootstrap)
        self._token = token
        self._shard_groups = groups
        self._proc_executor = executor

    def _publish_inboxes(self) -> list:
        """Expose each shard's pending inbox to the worker processes.

        Fixed-width message arrays are copied into a fresh shared
        segment per shard (the previous superstep's segment is unlinked
        — workers copy their inbox out at task start, so nothing still
        references it); VARCHAR payloads ship inline by pickle.
        """
        descriptors: list = []
        for shard in self.shards:
            old = self._msg_groups[shard.index]
            if old is not None:
                old.unlink()
                self._msg_groups[shard.index] = None
            if shard.pending_messages == 0:
                descriptors.append(None)
                continue
            if self.meta.msg_is_varchar:
                descriptors.append(
                    ("inline", (shard.msg_src, shard.msg_dst, shard.msg_raw, shard.msg_valid))
                )
                continue
            group = SharedArrayGroup.create(
                f"{self._token}m{shard.index}",
                {
                    "msg_src": shard.msg_src,
                    "msg_dst": shard.msg_dst,
                    "msg_raw": np.asarray(shard.msg_raw),
                    "msg_valid": shard.msg_valid,
                },
            )
            self._msg_groups[shard.index] = group
            descriptors.append(("shm", group.descriptor))
        return descriptors

    def close(self) -> None:
        """Release the plane's shared segments (creator side; idempotent).
        A plane without process execution holds none — no-op."""
        if self._closed:
            return
        self._closed = True
        for group in self._msg_groups:
            if group is not None:
                group.unlink()
        for group in self._shard_groups:
            group.unlink()
        self._msg_groups = [None] * self.n_shards
        self._shard_groups = []
        self._proc_executor = None

    def __del__(self) -> None:  # best-effort: never leak shm segments
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Run-state queries (the coordinator's halt condition)
    # ------------------------------------------------------------------
    @property
    def pending_messages(self) -> int:
        return sum(shard.pending_messages for shard in self.shards)

    @property
    def active_vertices(self) -> int:
        return sum(shard.active_vertices for shard in self.shards)

    # ------------------------------------------------------------------
    # One superstep
    # ------------------------------------------------------------------
    def run_superstep(
        self, worker: VertexWorker, executor: PartitionExecutor
    ) -> ShardStepStats:
        """Compute every shard (optionally in parallel), then apply
        vertex updates, route messages, and reduce aggregators — the
        synchronous superstep barrier, minus all the SQL.

        Each shard task also *pre-buckets* its own emitted messages by
        destination shard (one stable sort per source shard, inside the
        parallel section), so the barrier-side router only concatenates
        per-destination inboxes and segment-sorts them.
        """
        if self._proc_executor is not None:
            return self._run_superstep_processes(worker)
        messages_in = self.pending_messages
        meta = self.meta

        def run_shard(shard: VertexShard, index: int) -> ShardTaskOutput:
            out = _run_shard_task(shard, index, worker, meta)
            worker.record_partition_counts(out.ran, out.dropped)
            return out

        outputs = executor(
            run_shard, [(shard, shard.index) for shard in self.shards]
        )
        return self._finish_superstep(worker, outputs, messages_in)

    def _run_superstep_processes(self, worker: VertexWorker) -> ShardStepStats:
        """One superstep on the bound :class:`ProcessExecutor`: publish
        inboxes, dispatch tiny task descriptors, gather
        :class:`ShardTaskOutput` results, then run the exact same
        barrier as the in-process path."""
        messages_in = self.pending_messages
        step = _ProcessStep(
            token=self._token,
            superstep=worker.superstep,
            use_batch=worker.use_batch,
            aggregated=dict(worker.aggregated),
            inboxes=tuple(self._publish_inboxes()),
        )
        outputs = self._proc_executor(
            step, [(shard.index, shard.index) for shard in self.shards]
        )
        for out in outputs:
            worker.record_partition_counts(out.ran, out.dropped)
        return self._finish_superstep(worker, outputs, messages_in)

    def _finish_superstep(
        self,
        worker: VertexWorker,
        outputs: list[ShardTaskOutput],
        messages_in: int,
    ) -> ShardStepStats:
        """The superstep barrier: apply updates, route, reduce — same
        order for every executor (which is what parity rests on)."""
        vertex_updates = self._apply_vertex_updates([out.updates for out in outputs])
        faults.trip("shard.route", superstep=worker.superstep)
        messages_precombine, messages_out = self._route_messages(
            [out.routed for out in outputs]
        )
        self.aggregated = self._reduce_aggregators(
            [out.agg_partials for out in outputs]
        )
        rows_in = self.graph.num_vertices + messages_in
        if worker.superstep == 0:
            rows_in += self.graph.num_edges
        return ShardStepStats(
            vertices_ran=worker.vertices_ran,
            vertex_updates=vertex_updates,
            messages_out=messages_out,
            rows_in=rows_in,
            rows_out=sum(out.rows_out for out in outputs),
            shard_seconds=tuple(out.seconds for out in outputs),
            retries=sum(out.retried for out in outputs),
            messages_precombine=messages_precombine,
        )

    # ------------------------------------------------------------------
    # Apply staged vertex updates in place
    # ------------------------------------------------------------------
    def _apply_vertex_updates(self, staged: list[StagedRows]) -> int:
        """Each shard's kind-0 rows mutate the owning shard directly (see
        :func:`_apply_updates_to_shard`)."""
        total = 0
        for shard, rows in zip(self.shards, staged):
            total += _apply_updates_to_shard(shard, rows, self.meta)
        return total

    # ------------------------------------------------------------------
    # In-plane message routing
    # ------------------------------------------------------------------
    def _route_messages(self, routed: list[tuple | None]) -> tuple[int, int]:
        """Deliver the pre-bucketed messages to their destination shards.
        Returns ``(rows_before_combining, rows_delivered)``.

        Ordering contract (what makes the planes bit-identical): the SQL
        plane concatenates partition outputs in partition-index order
        into the staging table, and its next-superstep lexsort is stable
        — so vertex ``v`` receives messages ordered by (source
        partition, emission order).  Here each source shard has already
        stable-sorted its own messages by ``(destination shard,
        destination id)`` (:func:`_bucket_staged`); a destination
        concatenates its per-source buckets in shard-index order (the
        staging order) and one stable segment-sort by destination id
        restores exactly that delivery order — the ties within a
        destination id keep (source shard, emission order).
        """
        chunks = [c for c in routed if c is not None]
        if not chunks:
            for shard in self.shards:
                shard.clear_messages(self._empty_msg_raw())
            return 0, 0

        staged = 0
        total = 0
        for shard in self.shards:
            d = shard.index
            parts = [
                (c[0][c[4][d]:c[4][d + 1]], c[1][c[4][d]:c[4][d + 1]],
                 c[2][c[4][d]:c[4][d + 1]], c[3][c[4][d]:c[4][d + 1]])
                for c in chunks
            ]
            parts = [p for p in parts if len(p[1])]
            if not parts:
                shard.clear_messages(self._empty_msg_raw())
                continue
            if len(parts) == 1:
                # A single contributing source's bucket is already sorted
                # by destination id — no merge sort needed.
                inbox = parts[0]
            else:
                senders = np.concatenate([p[0] for p in parts])
                dst = np.concatenate([p[1] for p in parts])
                values = np.concatenate([p[2] for p in parts])
                valid = np.concatenate([p[3] for p in parts])
                order = np.argsort(dst, kind="stable")
                inbox = (senders[order], dst[order], values[order], valid[order])
            staged += sum(len(p[1]) for p in parts)
            if self.use_combiner:
                inbox = self._combine(*inbox)
            shard.msg_src, shard.msg_dst, shard.msg_raw, shard.msg_valid = inbox
            total += len(inbox[1])
        return staged, total

    def _combine(
        self,
        senders: np.ndarray,
        dst: np.ndarray,
        values: np.ndarray,
        valid: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Apply the program's combiner per destination.

        Reproduces the SQL plane's ``SELECT MIN(vid), dst, OP(...) ...
        GROUP BY dst`` arithmetic exactly: reductions run over float64
        with ``reduceat`` in arrival order, NULLs replaced by the
        reduction identity, and the result cast back to the message
        column's storage type.  Vector message codecs arrive as 2-D
        ``(rows, k)`` blocks and reduce element-wise with the same
        ``reduceat`` call over ``axis=0`` — bit-identical to the SQL
        plane's per-column aggregates (whole-vector validity broadcasts
        across the row).
        """
        boundaries = np.flatnonzero(
            np.r_[True, dst[1:] != dst[:-1]] if len(dst) else np.empty(0, bool)
        )
        out_dst = dst[boundaries]
        out_src = np.minimum.reduceat(senders, boundaries)
        valid_counts = np.add.reduceat(valid.astype(np.int64), boundaries)
        out_valid = valid_counts > 0
        floats = values.astype(np.float64)
        two_d = floats.ndim == 2
        row_valid = valid[:, None] if two_d else valid
        op = self.program.combiner
        if op == "SUM":
            floats = np.where(row_valid, floats, 0.0)
            agg = np.add.reduceat(floats, boundaries, axis=0)
        elif op == "MIN":
            floats = np.where(row_valid, floats, np.inf)
            agg = np.minimum.reduceat(floats, boundaries, axis=0)
        else:  # MAX (validate() admits nothing else)
            floats = np.where(row_valid, floats, -np.inf)
            agg = np.maximum.reduceat(floats, boundaries, axis=0)
        agg = np.where(out_valid[:, None] if two_d else out_valid, agg, 0.0)
        return out_src, out_dst, agg.astype(self.meta.msg_storage_dtype), out_valid

    # ------------------------------------------------------------------
    # Aggregators
    # ------------------------------------------------------------------
    def _reduce_aggregators(
        self, partials_per_shard: list[list[tuple[str, float]]]
    ) -> dict[str, float]:
        """Reduce the per-shard scalar partials across shards.

        The SQL plane runs ``OP(f1)`` over the partials in staging
        (shard-index) order through ``ufunc.reduceat``; the same ufunc
        reduction over the same float64 sequence keeps the result
        bit-equal (numpy's pairwise float summation is deterministic for
        a given length, but differs from a naive sequential loop).
        """
        names = self.program.aggregators
        if not names:
            return {}
        partials: dict[str, list[float]] = {name: [] for name in names}
        for shard_partials in partials_per_shard:
            for name, value in shard_partials:
                partials[name].append(value)
        start = np.zeros(1, dtype=np.int64)
        ufuncs = {"SUM": np.add, "MIN": np.minimum, "MAX": np.maximum}
        out: dict[str, float] = {}
        for name, op in names.items():
            values = partials[name]
            if not values:
                continue
            array = np.asarray(values, dtype=np.float64)
            out[name] = float(ufuncs[op].reduceat(array, start)[0])
        return out

    # ------------------------------------------------------------------
    # Sync policy: mirror resident state into the relational tables
    # ------------------------------------------------------------------
    def sync_tables(self, superstep: int | None = None) -> float:
        """Write the vertex and message tables from resident shard state
        (returns seconds spent).  Under ``superstep_sync="every"`` this
        runs per superstep; under ``"halt"`` at checkpoint boundaries
        (when checkpointing) and once at completion."""
        started = time.perf_counter()
        faults.trip("storage.sync", superstep=superstep)
        shards = self.shards
        ids = np.concatenate([s.vertex_ids for s in shards])
        values = np.concatenate([s.raw_values for s in shards])
        value_valid = np.concatenate([s.value_valid for s in shards])
        halted = np.concatenate([s.halted for s in shards])
        order = np.argsort(ids, kind="stable")
        self.storage.sync_vertex_state(
            self.graph,
            self.program,
            ids[order],
            values[order],
            value_valid[order],
            halted[order],
        )
        src = np.concatenate([s.msg_src for s in shards])
        dst = np.concatenate([s.msg_dst for s in shards])
        raw = np.concatenate([s.msg_raw for s in shards])
        valid = np.concatenate([s.msg_valid for s in shards])
        morder = np.argsort(dst, kind="stable")
        self.storage.sync_message_state(
            self.graph,
            self.program,
            src[morder],
            dst[morder],
            raw[morder],
            valid[morder],
        )
        return time.perf_counter() - started


# ---------------------------------------------------------------------------
# Worker-process side: the child plane and its pickled task descriptors
# ---------------------------------------------------------------------------
#: Planes installed in *this* process by a ProcessExecutor bootstrap,
#: keyed by plane token.  In the coordinator process this stays empty.
_CHILD_PLANES: dict[str, "_ChildPlane"] = {}


@dataclass(frozen=True)
class _PlaneBootstrap:
    """The pickled-once worker bootstrap a plane installs at pool start.

    Carries everything per-superstep dispatch must not re-ship: the
    program closure, the shared-segment descriptors, VARCHAR value
    arrays (object dtype cannot live in shared memory), and the armed
    fault plan so injection sites trip inside the worker that actually
    runs the shard.
    """

    token: str
    program: VertexProgram
    num_vertices: int
    meta: PlaneMeta
    shard_groups: tuple[GroupDescriptor, ...]
    object_values: tuple[np.ndarray | None, ...]
    fault_plan: str | None

    def __call__(self) -> None:
        for plane in _CHILD_PLANES.values():
            plane.close()
        _CHILD_PLANES.clear()
        if self.fault_plan is not None:
            faults.activate(faults.FaultPlan.from_json(self.fault_plan))
        else:
            faults.deactivate()
        _CHILD_PLANES[self.token] = _ChildPlane(self)


class _ChildPlane:
    """One worker process's view of a plane: shards whose fixed-width
    arrays are views into the shared segments, VARCHAR values as local
    copies kept in lockstep by replaying the same kind-0 updates."""

    def __init__(self, boot: _PlaneBootstrap) -> None:
        self.meta = boot.meta
        self.program = boot.program
        self.num_vertices = boot.num_vertices
        self.groups: list[SharedArrayGroup] = []
        self.shards: list[VertexShard] = []
        for index, descriptor in enumerate(boot.shard_groups):
            group = SharedArrayGroup.attach(descriptor)
            self.groups.append(group)
            arrays = group.arrays
            raw_values = (
                boot.object_values[index]
                if boot.object_values[index] is not None
                else arrays["raw_values"]
            )
            self.shards.append(
                VertexShard(
                    index=index,
                    vertex_ids=arrays["vertex_ids"],
                    halted=arrays["halted"],
                    raw_values=raw_values,
                    value_valid=arrays["value_valid"],
                    edge_indptr=arrays["edge_indptr"],
                    edge_targets=arrays["edge_targets"],
                    edge_weights=arrays["edge_weights"],
                    msg_src=np.empty(0, dtype=np.int64),
                    msg_dst=np.empty(0, dtype=np.int64),
                    msg_raw=self.meta.empty_msg_raw(),
                    msg_valid=np.empty(0, dtype=bool),
                )
            )

    def close(self) -> None:
        self.shards = []
        for group in self.groups:
            group.close()
        self.groups = []

    def _load_inbox(self, shard: VertexShard, descriptor) -> None:
        if descriptor is None:
            shard.clear_messages(self.meta.empty_msg_raw())
            return
        tag, payload = descriptor
        if tag == "inline":
            shard.msg_src, shard.msg_dst, shard.msg_raw, shard.msg_valid = payload
            return
        group = SharedArrayGroup.attach(payload)
        try:
            arrays = group.arrays
            # Copy out immediately: the coordinator replaces the segment
            # next superstep, so the shard must not keep views into it.
            shard.msg_src = np.array(arrays["msg_src"])
            shard.msg_dst = np.array(arrays["msg_dst"])
            shard.msg_raw = np.array(arrays["msg_raw"])
            shard.msg_valid = np.array(arrays["msg_valid"])
        finally:
            group.close()

    def run_task(
        self,
        superstep: int,
        use_batch: bool,
        aggregated: dict[str, float],
        inbox,
        index: int,
    ) -> ShardTaskOutput:
        shard = self.shards[index]
        self._load_inbox(shard, inbox)
        worker = VertexWorker(
            self.program,
            superstep,
            self.num_vertices,
            aggregated=aggregated,
            use_batch=use_batch,
        )
        out = _run_shard_task(shard, index, worker, self.meta)
        if self.meta.value_is_varchar and out.updates.num_rows:
            # VARCHAR values live process-locally (object dtype cannot be
            # shared); replaying the shard's own committed updates keeps
            # this copy in lockstep with the coordinator's apply.
            _apply_updates_to_shard(shard, out.updates, self.meta)
        return out


@dataclass(frozen=True)
class _ProcessStep:
    """The per-superstep task descriptor — the only thing pickled per
    dispatch: superstep scalars, the aggregated dict, and per-shard inbox
    descriptors (segment references, or inline VARCHAR payloads)."""

    token: str
    superstep: int
    use_batch: bool
    aggregated: dict[str, float]
    inboxes: tuple

    def __call__(self, item, index: int) -> ShardTaskOutput:
        plane = _CHILD_PLANES.get(self.token)
        if plane is None:
            raise RuntimeError(
                f"worker process has no installed shard plane {self.token!r}; "
                "the executor bootstrap did not run"
            )
        return plane.run_task(
            self.superstep, self.use_batch, self.aggregated, self.inboxes[index], index
        )
