"""Shared-memory numpy plumbing for the process-parallel shard plane.

One :class:`SharedArrayGroup` packs a named set of numpy arrays into a
single ``multiprocessing.shared_memory`` segment: the coordinator
*creates* a group per shard (copying the resident arrays in once and
rebinding the shard to the shared views), worker processes *attach* by
descriptor and see the same physical pages — vertex ids, halt flags,
encoded values, CSR edges, and message buffers all cross the process
boundary without pickling a single element.

Only fixed-width dtypes can live in shared memory; ``object``-dtype
arrays (VARCHAR codec values/messages) stay process-local and ship by
pickle instead (see :mod:`repro.core.shards`).

Ownership contract: the creating process is the only one that ever
``unlink``\\ s a segment; attachers only ``close``.  Spawned worker
processes share the coordinator's ``resource_tracker`` (the tracker fd
travels in the spawn preparation data), so an attach registers the same
name in the same tracker the creator did — a set add, idempotent — and
the creator's ``unlink`` unregisters it exactly once.  (The bpo-39959
hazard — an attacher's *own* tracker unlinking segments it never owned
when that process exits — does not arise with a shared tracker.)
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArrayGroup", "GroupDescriptor", "new_segment_name"]

_NAME_LOCK = threading.Lock()
_NAME_COUNTER = 0


def new_segment_name(prefix: str) -> str:
    """A segment name unique across this process's lifetime (the pid
    keeps concurrent test processes on one machine apart)."""
    global _NAME_COUNTER
    with _NAME_LOCK:
        _NAME_COUNTER += 1
        return f"{prefix}_{os.getpid()}_{_NAME_COUNTER}"


def _align(offset: int, alignment: int = 16) -> int:
    return (offset + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class GroupDescriptor:
    """The picklable wire form of a :class:`SharedArrayGroup`: the
    segment name plus each array's ``(field, dtype, shape, offset)``."""

    name: str
    fields: tuple[tuple[str, str, tuple[int, ...], int], ...]

    def total_bytes(self) -> int:
        if not self.fields:
            return 1
        _, dtype, shape, offset = self.fields[-1]
        return max(1, offset + int(np.dtype(dtype).itemsize * int(np.prod(shape))))


class SharedArrayGroup:
    """A set of named numpy arrays packed into one shared segment.

    Create with :meth:`create` (coordinator side — copies data in,
    returns writable views) or :meth:`attach` (worker side — maps the
    same pages).  Views keep the group alive via ``.base`` chains, but
    explicit lifecycle is the contract: the creator calls :meth:`unlink`
    exactly once when the plane is closed, every attacher calls
    :meth:`close` when it drops the plane.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, descriptor: GroupDescriptor, owner: bool
    ) -> None:
        self.shm = shm
        self.descriptor = descriptor
        self.owner = owner
        self.arrays: dict[str, np.ndarray] = {}
        for field, dtype, shape, offset in descriptor.fields:
            self.arrays[field] = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, prefix: str, arrays: dict[str, np.ndarray]) -> "SharedArrayGroup":
        """Pack ``arrays`` (fixed-width dtypes only) into a fresh segment."""
        fields = []
        offset = 0
        for field, array in arrays.items():
            if array.dtype.hasobject:
                raise ValueError(
                    f"array {field!r} has object dtype; shared memory holds "
                    "fixed-width dtypes only"
                )
            offset = _align(offset)
            fields.append((field, array.dtype.str, tuple(array.shape), offset))
            offset += array.nbytes
        descriptor = GroupDescriptor(new_segment_name(prefix), tuple(fields))
        shm = shared_memory.SharedMemory(
            name=descriptor.name, create=True, size=max(1, offset)
        )
        group = cls(shm, descriptor, owner=True)
        for field, array in arrays.items():
            group.arrays[field][...] = array
        return group

    @classmethod
    def attach(cls, descriptor: GroupDescriptor) -> "SharedArrayGroup":
        """Map an existing segment created elsewhere (worker side)."""
        return cls(shared_memory.SharedMemory(name=descriptor.name), descriptor, owner=False)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (safe to call repeatedly)."""
        self.arrays.clear()
        try:
            self.shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        """Destroy the segment (creator only; idempotent)."""
        self.close()
        if not self.owner:
            return
        self.owner = False
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass
