"""Value codecs: how vertex/message values map to relational columns.

The paper stores "the vertex value" in a relational column.  Scalar-valued
programs (PageRank, SSSP, connected components) use FLOAT or INTEGER
columns directly; programs with structured state (collaborative filtering
keeps a latent-factor vector per vertex) serialize through a VARCHAR
column as JSON.  A codec declares the SQL type and the encode/decode pair,
so the Vertexica storage layer can create correctly-typed vertex/message
tables for any program.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable

from repro.engine.types import FLOAT, INTEGER, VARCHAR, DataType

__all__ = ["ValueCodec", "FLOAT_CODEC", "INTEGER_CODEC", "JSON_CODEC"]


@dataclass(frozen=True)
class ValueCodec:
    """Bidirectional mapping between Python values and one SQL column.

    Attributes:
        name: codec identifier (used in error messages and metrics).
        sql_type: the column type holding encoded values.
        encode: Python value -> storable value (None passes through as NULL).
        decode: storable value -> Python value (None passes through).
    """

    name: str
    sql_type: DataType
    encode: Callable[[Any], Any]
    decode: Callable[[Any], Any]

    def encode_or_none(self, value: Any) -> Any:
        """Encode, mapping ``None`` to SQL NULL."""
        if value is None:
            return None
        return self.encode(value)

    def decode_or_none(self, value: Any) -> Any:
        """Decode, mapping SQL NULL to ``None``."""
        if value is None:
            return None
        return self.decode(value)


FLOAT_CODEC = ValueCodec("float", FLOAT, float, float)
INTEGER_CODEC = ValueCodec("integer", INTEGER, int, int)
JSON_CODEC = ValueCodec("json", VARCHAR, json.dumps, json.loads)
