"""Value codecs: how vertex/message values map to relational columns.

The paper stores "the vertex value" in a relational column.  Scalar-valued
programs (PageRank, SSSP, connected components) use FLOAT or INTEGER
columns directly; programs with structured state historically serialized
through a VARCHAR column as JSON.  A codec declares the SQL storage layout
and the encode/decode pair, so the Vertexica storage layer can create
correctly-typed vertex/message tables for any program.

Two storage shapes exist:

* **scalar** codecs (``width == 0``) own one column named ``value`` of
  ``sql_type`` — the paper's layout, unchanged;
* **vector** codecs (``width == k > 0``, built with :func:`vector_codec`)
  own ``k`` typed FLOAT columns ``v0..v{k-1}``.  Decoded form is a dense
  float64 row per vertex/message — ``(n, k)`` arrays on the batch data
  plane, ``list[float]`` on the scalar path — with no serialization on
  either side.  NULL is whole-vector NULL (all k columns at once).

For the vectorized data plane, a codec may also carry *array* hooks
(``decode_array_fn`` / ``encode_array_fn``) that map whole numpy arrays at
once; the builtin FLOAT/INTEGER/vector codecs use dtype casts (effectively
free), while codecs without hooks fall back to a per-item loop over the
scalar pair — correct for any custom codec, just not vectorized.
"""

from __future__ import annotations

import functools
import json
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.engine.types import FLOAT, INTEGER, VARCHAR, DataType
from repro.errors import ProgramError

__all__ = [
    "ValueCodec",
    "FLOAT_CODEC",
    "INTEGER_CODEC",
    "JSON_CODEC",
    "vector_codec",
]

#: Signature of the optional vectorized hooks: (values, valid) -> values.
ArrayFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class ValueCodec:
    """Bidirectional mapping between Python values and one SQL column.

    Attributes:
        name: codec identifier (used in error messages and metrics).
        sql_type: the column type holding encoded values (the per-column
            type, for vector codecs).
        encode: Python value -> storable value (None passes through as NULL).
        decode: storable value -> Python value (None passes through).
        decode_array_fn: optional vectorized decode over a storage array
            (positions where ``valid`` is False hold filler and must be
            passed through untouched).
        encode_array_fn: optional vectorized encode to a storage array.
        width: 0 for scalar codecs (one ``value`` column); ``k > 0`` for
            vector codecs (``k`` columns ``v0..v{k-1}``, storage arrays
            are 2-D ``(n, k)``).
    """

    name: str
    sql_type: DataType
    encode: Callable[[Any], Any]
    decode: Callable[[Any], Any]
    decode_array_fn: ArrayFn | None = None
    encode_array_fn: ArrayFn | None = None
    width: int = 0

    @property
    def is_vector(self) -> bool:
        """True when values span multiple typed storage columns."""
        return self.width > 0

    def column_names(self) -> tuple[str, ...]:
        """The storage column names this codec owns in a value table."""
        if self.width > 0:
            return tuple(f"v{j}" for j in range(self.width))
        return ("value",)

    def encode_or_none(self, value: Any) -> Any:
        """Encode, mapping ``None`` to SQL NULL."""
        if value is None:
            return None
        return self.encode(value)

    def decode_or_none(self, value: Any) -> Any:
        """Decode, mapping SQL NULL to ``None``."""
        if value is None:
            return None
        return self.decode(value)

    # ------------------------------------------------------------------
    # Vectorized paths (the batch data plane)
    # ------------------------------------------------------------------
    def decode_array(self, values: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Decode a storage array into a dense decoded array.

        NULL positions keep their filler value (callers track validity
        out-of-band, exactly like :class:`~repro.engine.column.Column`).
        """
        if self.decode_array_fn is not None:
            return self.decode_array_fn(values, valid)
        out = np.empty(len(values), dtype=object)
        for i, (item, ok) in enumerate(zip(values, valid)):
            out[i] = self.decode(item) if ok else item
        return out

    def encode_array(self, values: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Encode a decoded array into a storage array (inverse of
        :meth:`decode_array`; NULL positions pass through)."""
        if self.encode_array_fn is not None:
            return self.encode_array_fn(values, valid)
        out = np.empty(len(values), dtype=object)
        for i, (item, ok) in enumerate(zip(values, valid)):
            out[i] = self.encode(item) if ok else item
        return out

    def __reduce__(self):
        """Pickle builtin and vector codecs by *name*, not by value.

        The encode/decode fields of the bundled codecs are closures
        (``vector_codec`` builds them per width), which plain pickling
        cannot carry into a spawned worker process.  Reconstructing from
        the registry keeps programs that hold codec instances picklable
        — the process-parallel shard plane ships the program to its
        workers exactly once, at pool start.  Custom codecs fall back to
        default pickling and must use picklable callables to cross a
        process boundary.
        """
        if self.width > 0 and self.name == f"vector{self.width}":
            return (vector_codec, (self.width,))
        if _BUILTIN_CODECS.get(self.name) is self:
            return (_builtin_codec, (self.name,))
        return super().__reduce__()

    def decode_list(self, values: np.ndarray, valid: np.ndarray) -> list[Any]:
        """Decode a storage array into Python values (``None`` for NULL).

        The scalar compute path uses this to decode a whole partition in
        one pass instead of calling :meth:`decode_or_none` per row.
        """
        decoded = self.decode_array(values, valid).tolist()
        if bool(valid.all()):
            return decoded
        return [item if ok else None for item, ok in zip(decoded, valid)]


def _cast_array(dtype: Any) -> ArrayFn:
    def cast(values: np.ndarray, valid: np.ndarray) -> np.ndarray:
        return values.astype(dtype, copy=False)

    return cast


FLOAT_CODEC = ValueCodec(
    "float",
    FLOAT,
    float,
    float,
    decode_array_fn=_cast_array(np.float64),
    encode_array_fn=_cast_array(np.float64),
)
INTEGER_CODEC = ValueCodec(
    "integer",
    INTEGER,
    int,
    int,
    decode_array_fn=_cast_array(np.int64),
    encode_array_fn=_cast_array(np.int64),
)
JSON_CODEC = ValueCodec("json", VARCHAR, json.dumps, json.loads)

#: Name -> instance for the scalar builtins (pickle-by-name support).
_BUILTIN_CODECS = {
    "float": FLOAT_CODEC,
    "integer": INTEGER_CODEC,
    "json": JSON_CODEC,
}


def _builtin_codec(name: str) -> ValueCodec:
    """Unpickle hook: resolve a builtin scalar codec by name."""
    return _BUILTIN_CODECS[name]


# ---------------------------------------------------------------------------
# Vector codecs: fixed-width float64 state as k typed FLOAT columns
# ---------------------------------------------------------------------------
@functools.lru_cache(maxsize=None)
def vector_codec(width: int) -> ValueCodec:
    """The width-``k`` float64 vector codec (cached per width).

    Storage form is ``k`` FLOAT columns ``v0..v{k-1}`` — no serialization.
    Encoded/storage representation is a float64 array of shape ``(k,)``
    per value (``(n, k)`` for a whole partition); decoded scalar-path form
    is a plain ``list[float]``, so programs written against the JSON codec
    (lists in, lists out) convert by swapping the codec declaration alone.

    Raises:
        ProgramError: ``width < 1``.
    """
    if width < 1:
        raise ProgramError(f"vector codec width must be >= 1, got {width}")

    def encode(value: Any) -> np.ndarray:
        arr = np.asarray(value, dtype=np.float64)
        if arr.shape != (width,):
            raise ProgramError(
                f"vector{width} codec got a value of shape {arr.shape}; "
                f"expected {width} floats"
            )
        return arr

    def decode(stored: Any) -> list[float]:
        return np.asarray(stored, dtype=np.float64).tolist()

    def cast2d(values: np.ndarray, valid: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim == 1:  # empty or degenerate inputs normalize to (n, k)
            arr = arr.reshape(len(arr) // width if width else 0, width)
        return arr

    return ValueCodec(
        f"vector{width}",
        FLOAT,
        encode,
        decode,
        decode_array_fn=cast2d,
        encode_array_fn=cast2d,
        width=width,
    )
