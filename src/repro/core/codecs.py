"""Value codecs: how vertex/message values map to relational columns.

The paper stores "the vertex value" in a relational column.  Scalar-valued
programs (PageRank, SSSP, connected components) use FLOAT or INTEGER
columns directly; programs with structured state (collaborative filtering
keeps a latent-factor vector per vertex) serialize through a VARCHAR
column as JSON.  A codec declares the SQL type and the encode/decode pair,
so the Vertexica storage layer can create correctly-typed vertex/message
tables for any program.

For the vectorized data plane, a codec may also carry *array* hooks
(``decode_array_fn`` / ``encode_array_fn``) that map whole numpy arrays at
once; the builtin FLOAT/INTEGER codecs use dtype casts (effectively free),
while codecs without hooks fall back to a per-item loop over the scalar
pair — correct for any custom codec, just not vectorized.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.engine.types import FLOAT, INTEGER, VARCHAR, DataType

__all__ = ["ValueCodec", "FLOAT_CODEC", "INTEGER_CODEC", "JSON_CODEC"]

#: Signature of the optional vectorized hooks: (values, valid) -> values.
ArrayFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class ValueCodec:
    """Bidirectional mapping between Python values and one SQL column.

    Attributes:
        name: codec identifier (used in error messages and metrics).
        sql_type: the column type holding encoded values.
        encode: Python value -> storable value (None passes through as NULL).
        decode: storable value -> Python value (None passes through).
        decode_array_fn: optional vectorized decode over a storage array
            (positions where ``valid`` is False hold filler and must be
            passed through untouched).
        encode_array_fn: optional vectorized encode to a storage array.
    """

    name: str
    sql_type: DataType
    encode: Callable[[Any], Any]
    decode: Callable[[Any], Any]
    decode_array_fn: ArrayFn | None = None
    encode_array_fn: ArrayFn | None = None

    def encode_or_none(self, value: Any) -> Any:
        """Encode, mapping ``None`` to SQL NULL."""
        if value is None:
            return None
        return self.encode(value)

    def decode_or_none(self, value: Any) -> Any:
        """Decode, mapping SQL NULL to ``None``."""
        if value is None:
            return None
        return self.decode(value)

    # ------------------------------------------------------------------
    # Vectorized paths (the batch data plane)
    # ------------------------------------------------------------------
    def decode_array(self, values: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Decode a storage array into a dense decoded array.

        NULL positions keep their filler value (callers track validity
        out-of-band, exactly like :class:`~repro.engine.column.Column`).
        """
        if self.decode_array_fn is not None:
            return self.decode_array_fn(values, valid)
        out = np.empty(len(values), dtype=object)
        for i, (item, ok) in enumerate(zip(values, valid)):
            out[i] = self.decode(item) if ok else item
        return out

    def encode_array(self, values: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Encode a decoded array into a storage array (inverse of
        :meth:`decode_array`; NULL positions pass through)."""
        if self.encode_array_fn is not None:
            return self.encode_array_fn(values, valid)
        out = np.empty(len(values), dtype=object)
        for i, (item, ok) in enumerate(zip(values, valid)):
            out[i] = self.encode(item) if ok else item
        return out

    def decode_list(self, values: np.ndarray, valid: np.ndarray) -> list[Any]:
        """Decode a storage array into Python values (``None`` for NULL).

        The scalar compute path uses this to decode a whole partition in
        one pass instead of calling :meth:`decode_or_none` per row.
        """
        decoded = self.decode_array(values, valid).tolist()
        if bool(valid.all()):
            return decoded
        return [item if ok else None for item, ok in zip(decoded, valid)]


def _cast_array(dtype: Any) -> ArrayFn:
    def cast(values: np.ndarray, valid: np.ndarray) -> np.ndarray:
        return values.astype(dtype, copy=False)

    return cast


FLOAT_CODEC = ValueCodec(
    "float",
    FLOAT,
    float,
    float,
    decode_array_fn=_cast_array(np.float64),
    encode_array_fn=_cast_array(np.float64),
)
INTEGER_CODEC = ValueCodec(
    "integer",
    INTEGER,
    int,
    int,
    decode_array_fn=_cast_array(np.int64),
    encode_array_fn=_cast_array(np.int64),
)
JSON_CODEC = ValueCodec("json", VARCHAR, json.dumps, json.loads)
