"""The vertex-centric API surface, Pregel-compatible.

The worker hands each vertex program a :class:`Vertex` exposing exactly the
paper's API: ``getVertexValue()``, ``getMessages()``, ``getOutEdges()``,
``modifyVertexValue()``, ``sendMessage()``, ``voteToHalt()`` — with
snake_case spellings as the primary names and the paper's camelCase
spellings as aliases, so examples can be written either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import ProgramError

__all__ = ["OutEdge", "Vertex"]


@dataclass(frozen=True)
class OutEdge:
    """One outgoing edge of the current vertex."""

    target: int
    weight: float = 1.0


class Vertex:
    """Per-vertex execution context for one superstep.

    Mutations (value changes, sent messages, the halt vote) are buffered on
    this object; the worker collects them after ``compute`` returns and
    never exposes half-applied state to other vertices — the synchronous
    superstep barrier the paper inherits from Pregel.
    """

    __slots__ = (
        "id",
        "superstep",
        "num_vertices",
        "_value",
        "_out_edges",
        "_messages",
        "_senders",
        "_halted",
        "_value_changed",
        "_outbox",
        "_vote_halt",
        "_aggregated",
        "_agg_outbox",
    )

    def __init__(
        self,
        vertex_id: int,
        value: Any,
        out_edges: Sequence[OutEdge],
        messages: Sequence[Any],
        superstep: int,
        num_vertices: int,
        halted: bool,
        aggregated: dict[str, float] | None = None,
        senders: Sequence[int] | None = None,
    ) -> None:
        self.id = vertex_id
        self.superstep = superstep
        self.num_vertices = num_vertices
        self._value = value
        self._out_edges = tuple(out_edges)
        self._messages = tuple(messages)
        self._senders = (
            tuple(senders)
            if senders is not None
            else tuple(None for _ in self._messages)
        )
        self._halted = halted
        self._value_changed = False
        self._outbox: list[tuple[int, Any]] = []
        self._vote_halt = False
        self._aggregated = aggregated or {}
        self._agg_outbox: list[tuple[str, float]] = []

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def value(self) -> Any:
        """Current vertex value (as decoded by the program's codec)."""
        return self._value

    def get_vertex_value(self) -> Any:
        """Paper API: current vertex value."""
        return self._value

    @property
    def messages(self) -> tuple[Any, ...]:
        """Messages delivered to this vertex this superstep."""
        return self._messages

    def get_messages(self) -> tuple[Any, ...]:
        """Paper API: this superstep's incoming messages."""
        return self._messages

    @property
    def message_senders(self) -> tuple[Any, ...]:
        """Sender vertex id per incoming message, aligned with
        :attr:`messages` — the message table's ``src`` column, so
        programs need not embed the sender in the payload.

        Every engine in this repository supplies real senders; a Vertex
        constructed directly without the ``senders`` argument (e.g. a
        hand-rolled unit-test harness) yields ``None`` placeholders, so
        sender-keyed lookups would miss — pass senders when the program
        under test reads them."""
        return self._senders

    @property
    def out_edges(self) -> tuple[OutEdge, ...]:
        """Outgoing edges of this vertex."""
        return self._out_edges

    def get_out_edges(self) -> tuple[OutEdge, ...]:
        """Paper API: outgoing edges."""
        return self._out_edges

    @property
    def out_degree(self) -> int:
        """Number of outgoing edges."""
        return len(self._out_edges)

    @property
    def was_halted(self) -> bool:
        """True when this vertex had voted to halt before this superstep
        (it is running again because a message arrived)."""
        return self._halted

    # ------------------------------------------------------------------
    # Writes (buffered)
    # ------------------------------------------------------------------
    def modify_vertex_value(self, value: Any) -> None:
        """Set the vertex value, visible from the next superstep on."""
        self._value = value
        self._value_changed = True

    def send_message(self, target: int, value: Any) -> None:
        """Queue a message for delivery at the next superstep.

        Raises:
            ProgramError: on a non-integer target id.
        """
        if not isinstance(target, int):
            raise ProgramError(
                f"sendMessage target must be an int vertex id, got {target!r}"
            )
        self._outbox.append((target, value))

    def send_message_to_all_neighbors(self, value: Any) -> None:
        """Queue the same message along every outgoing edge."""
        for edge in self._out_edges:
            self._outbox.append((edge.target, value))

    def vote_to_halt(self) -> None:
        """Deactivate this vertex until a message re-activates it."""
        self._vote_halt = True

    # ------------------------------------------------------------------
    # Global aggregators (Pregel-style)
    # ------------------------------------------------------------------
    def aggregate(self, name: str, value: float) -> None:
        """Contribute ``value`` to a global aggregator declared by the
        program; the reduced result is visible to every vertex at the
        *next* superstep via :meth:`aggregated`."""
        self._agg_outbox.append((name, float(value)))

    def aggregated(self, name: str, default: float | None = None) -> float | None:
        """The previous superstep's reduced value of an aggregator, or
        ``default`` when nothing was aggregated yet (e.g. superstep 0)."""
        return self._aggregated.get(name, default)

    # Paper-spelling aliases -------------------------------------------
    getVertexValue = get_vertex_value
    getMessages = get_messages
    getOutEdges = get_out_edges
    modifyVertexValue = modify_vertex_value
    sendMessage = send_message
    sendMessageToAllNeighbors = send_message_to_all_neighbors
    voteToHalt = vote_to_halt

    # ------------------------------------------------------------------
    # Worker-side collection
    # ------------------------------------------------------------------
    def collect_value_update(self) -> tuple[bool, Any]:
        """(changed, new_value) after compute ran."""
        return self._value_changed, self._value

    def collect_outbox(self) -> list[tuple[int, Any]]:
        """Messages queued this superstep."""
        return self._outbox

    def collect_halt_vote(self) -> bool:
        """Whether the vertex voted to halt this superstep."""
        return self._vote_halt

    def collect_aggregates(self) -> list[tuple[str, float]]:
        """Aggregator contributions made this superstep."""
        return self._agg_outbox
