"""Run-level checkpoint/resume — Pregel's fault-tolerance contract.

Giraph (the paper's baseline) checkpoints every N supersteps and recovers
a failed run from the last checkpoint; Vertexica inherits the contract
"for free" from the RDBMS.  This module is that subsystem for our
runtime: a :class:`CheckpointPolicy` decides *when* to snapshot, and
:class:`RunRecovery` durably captures everything a superstep depends on —

* the vertex table (values + halt votes) and the message table (the next
  superstep's inbox, combiner already applied) via the engine's
  checkpoint table format (:mod:`repro.engine.persistence`);
* the aggregator values visible to the next superstep;
* opaque program state (:meth:`VertexProgram.checkpoint_state` — e.g.
  RNG state for programs that draw during supersteps);
* a manifest validating the lot: completed-superstep count, graph facts,
  and a :func:`program_fingerprint` over the program's class, codecs,
  combiner, aggregators, and scalar parameters (resuming PageRank(d=0.9)
  from a PageRank(d=0.85) checkpoint must fail loudly, not drift).

Both data planes produce *identical* checkpoints (cross-plane parity is a
repo invariant), so a run checkpointed on one plane may resume on the
other.

Torn-write discipline: a checkpoint directory ``ckpt-<completed>`` is
fully written (tables, then manifest) **before** the ``LATEST`` pointer
file is flipped to it with an atomic rename; superseded directories are
pruned only after the flip.  A crash mid-write therefore leaves either
the old pointer (the fresh directory is unreferenced garbage, removed on
the next load) or the new one — never a half checkpoint that loads.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass
from typing import Any

from repro.core import faults
from repro.core.program import VertexProgram
from repro.core.storage import GraphHandle, GraphStorage
from repro.engine.batch import RecordBatch
from repro.engine.persistence import read_table_file, write_table_file
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import type_from_name
from repro.errors import EngineError, RecoveryError

__all__ = ["CheckpointPolicy", "RunRecovery", "RestoredRun", "program_fingerprint"]

_MANIFEST = "manifest.json"
_LATEST = "LATEST"
_FORMAT_VERSION = 1
#: checkpointed run tables: label -> GraphHandle attribute
_TABLES = (("vertex", "vertex_table"), ("message", "message_table"))


def program_fingerprint(program: VertexProgram) -> str:
    """A stable digest of everything about a program that shapes its
    superstep trajectory: class, codecs, combiner, aggregators, cap, and
    every scalar constructor-ish attribute (``iterations``, ``damping``,
    ``seed``, ...).  Mutable non-scalar state belongs in
    :meth:`VertexProgram.checkpoint_state` instead."""
    params = {
        key: value
        for key, value in sorted(vars(program).items())
        if isinstance(value, (bool, int, float, str, type(None)))
    }
    payload = {
        "class": type(program).__name__,
        "vertex_codec": program.vertex_codec.name,
        "message_codec": program.message_codec.name,
        "combiner": program.combiner,
        "aggregators": dict(sorted(program.aggregators.items())),
        "max_supersteps": program.max_supersteps,
        "params": params,
    }
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to snapshot: after every ``every`` completed supersteps
    (``None`` disables writes; loads still work for ``resume=True``)."""

    every: int | None = None

    @property
    def enabled(self) -> bool:
        return self.every is not None

    def due(self, completed: int) -> bool:
        """True when a checkpoint should be written with ``completed``
        supersteps done.  The baseline checkpoint (``completed=0``) is
        always written when the policy is enabled, so rollback has a
        floor even before the first boundary."""
        if self.every is None:
            return False
        return completed == 0 or completed % self.every == 0


@dataclass(frozen=True)
class RestoredRun:
    """A loaded checkpoint, ready to be applied to the run tables."""

    completed: int
    aggregated: dict[str, float]
    program_state: dict[str, Any]
    tables: dict[str, RecordBatch]  # label -> data


class RunRecovery:
    """Checkpoint writer/loader for one ``(graph, program)`` run."""

    def __init__(
        self,
        storage: GraphStorage,
        graph: GraphHandle,
        program: VertexProgram,
        directory: str,
        policy: CheckpointPolicy,
    ) -> None:
        self.storage = storage
        self.graph = graph
        self.program = program
        self.directory = directory
        self.policy = policy
        self.fingerprint = program_fingerprint(program)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def write(self, completed: int, aggregated: dict[str, float]) -> float:
        """Snapshot the run with ``completed`` supersteps done; returns
        seconds spent.  Tables must already reflect that state (the shard
        plane syncs resident arrays first)."""
        started = time.perf_counter()
        os.makedirs(self.directory, exist_ok=True)
        name = f"ckpt-{completed:06d}"
        ckpt_dir = os.path.join(self.directory, name)
        if os.path.isdir(ckpt_dir):  # stale leftover from a prior run
            shutil.rmtree(ckpt_dir)
        os.makedirs(ckpt_dir)
        db = self.storage.db
        tables: dict[str, Any] = {}
        for label, attr in _TABLES:
            table = db.table(getattr(self.graph, attr))
            write_table_file(table, os.path.join(ckpt_dir, f"{label}.npz"), compress=False)
            tables[label] = {
                "columns": [
                    {"name": c.name, "type": c.dtype.name, "nullable": c.nullable}
                    for c in table.schema
                ],
                "rows": table.num_rows,
            }
        faults.trip("checkpoint.write", superstep=completed)
        manifest = {
            "format": _FORMAT_VERSION,
            "completed": completed,
            "graph": {
                "name": self.graph.name,
                "num_vertices": self.graph.num_vertices,
                "num_edges": self.graph.num_edges,
            },
            "program": {"name": self.program.name, "fingerprint": self.fingerprint},
            "aggregated": dict(aggregated),
            "program_state": self.program.checkpoint_state(),
            "tables": tables,
        }
        with open(os.path.join(ckpt_dir, _MANIFEST), "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2)
        # Atomic pointer flip: the checkpoint "exists" only once LATEST
        # names it.  Pruning runs after the flip, so a crash anywhere in
        # here leaves a loadable state behind.
        pointer_tmp = os.path.join(self.directory, f"{_LATEST}.tmp")
        with open(pointer_tmp, "w", encoding="utf-8") as fh:
            fh.write(name)
        os.replace(pointer_tmp, os.path.join(self.directory, _LATEST))
        self._prune(keep=name)
        return time.perf_counter() - started

    # ------------------------------------------------------------------
    # Load path
    # ------------------------------------------------------------------
    def load(self) -> RestoredRun | None:
        """The latest durable checkpoint, or ``None`` when there is none
        (fresh directory, or only torn unreferenced writes — which are
        cleaned up here).

        Raises:
            RecoveryError: the pointed-to checkpoint is unreadable or was
                written by a different graph/program.
        """
        pointer = os.path.join(self.directory, _LATEST)
        if not os.path.exists(pointer):
            self._prune(keep=None)
            return None
        with open(pointer, encoding="utf-8") as fh:
            name = fh.read().strip()
        ckpt_dir = os.path.join(self.directory, name)
        manifest_path = os.path.join(ckpt_dir, _MANIFEST)
        try:
            with open(manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise RecoveryError(
                f"checkpoint {name!r} is unreadable ({exc}); "
                "delete the checkpoint directory to start fresh"
            ) from exc
        self._validate(manifest, name)
        tables: dict[str, RecordBatch] = {}
        for label, _ in _TABLES:
            meta = manifest["tables"][label]
            schema = Schema(
                ColumnDef(c["name"], type_from_name(c["type"]), nullable=c["nullable"])
                for c in meta["columns"]
            )
            try:
                tables[label] = read_table_file(
                    os.path.join(ckpt_dir, f"{label}.npz"), schema, meta["rows"]
                )
            except EngineError as exc:
                raise RecoveryError(f"checkpoint {name!r} is torn: {exc}") from exc
        self._prune(keep=name)
        return RestoredRun(
            completed=int(manifest["completed"]),
            aggregated={k: float(v) for k, v in manifest["aggregated"].items()},
            program_state=dict(manifest["program_state"]),
            tables=tables,
        )

    def _validate(self, manifest: dict[str, Any], name: str) -> None:
        if manifest.get("format") != _FORMAT_VERSION:
            raise RecoveryError(
                f"checkpoint {name!r} has unsupported format {manifest.get('format')!r}"
            )
        graph = manifest.get("graph", {})
        if (
            graph.get("name") != self.graph.name
            or graph.get("num_vertices") != self.graph.num_vertices
            or graph.get("num_edges") != self.graph.num_edges
        ):
            raise RecoveryError(
                f"checkpoint {name!r} was written for graph "
                f"{graph.get('name')!r} ({graph.get('num_vertices')} vertices, "
                f"{graph.get('num_edges')} edges); cannot resume "
                f"{self.graph.name!r} ({self.graph.num_vertices} vertices, "
                f"{self.graph.num_edges} edges) from it"
            )
        recorded = manifest.get("program", {})
        if recorded.get("fingerprint") != self.fingerprint:
            raise RecoveryError(
                f"checkpoint {name!r} was written by program "
                f"{recorded.get('name')!r} (fingerprint "
                f"{recorded.get('fingerprint')!r}); resuming with "
                f"{self.program.name!r} (fingerprint {self.fingerprint!r}) "
                "would not be bit-identical"
            )

    # ------------------------------------------------------------------
    def restore(self, restored: RestoredRun) -> None:
        """Roll the run tables back to ``restored`` (atomic per table via
        the engine's replace path) and rewind program state."""
        db = self.storage.db
        for label, attr in _TABLES:
            db.table(getattr(self.graph, attr)).replace_data(restored.tables[label])
        self.program.restore_state(dict(restored.program_state))

    def _prune(self, keep: str | None) -> None:
        """Drop every checkpoint directory except ``keep`` — superseded
        snapshots and torn unreferenced writes alike."""
        if not os.path.isdir(self.directory):
            return
        for entry in os.listdir(self.directory):
            if entry.startswith("ckpt-") and entry != keep:
                shutil.rmtree(os.path.join(self.directory, entry), ignore_errors=True)
