"""Relational storage for Vertexica graphs.

Exactly the paper's §2.2 "Physical Storage": a *vertex* table (id, value,
state), an *edge* table (src, dst, weight), and a *message* table (sender,
receiver, value) — plus one scratch table holding worker output between
the transform call and the SQL that applies it.

Tables for a graph named ``g``:

==============  =====================================================
``g_edge``      src INTEGER, dst INTEGER, weight FLOAT   (loaded once)
``g_vertex``    id INTEGER, <value columns>, halted BOOLEAN
``g_message``   src INTEGER, dst INTEGER, <value columns>
``g_out``       worker output staging (kind, vid, dst, f1, s1, halted
                [, p0..p{K-1} for vector payloads])
==============  =====================================================

The vertex/message/output tables are (re)created per run because their
value column layout depends on the program's codecs: a scalar codec owns
one ``value`` column of its SQL type (the paper's layout); a vector codec
(:func:`~repro.core.codecs.vector_codec`) owns ``k`` typed FLOAT columns
``v0..v{k-1}`` — dense multi-column state instead of JSON-in-VARCHAR.
Vector payloads travel through the staging table in ``K = max(widths)``
extra FLOAT columns ``p0..p{K-1}``.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.core import faults
from repro.core.codecs import ValueCodec
from repro.core.program import VertexProgram
from repro.engine.batch import RecordBatch
from repro.engine.column import Column
from repro.engine.database import Database
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import BOOLEAN, FLOAT, INTEGER, VARCHAR
from repro.errors import GraphLoadError

__all__ = [
    "GraphHandle",
    "GraphStorage",
    "WORKER_OUTPUT_COLUMNS",
    "canonical_edge_order",
    "payload_width",
    "worker_output_columns",
]


def canonical_edge_order(
    src: np.ndarray, dst: np.ndarray, weight: np.ndarray
) -> np.ndarray:
    """The permutation sorting edges by ``(src, dst, weight)``.

    This is *the* storage order of every edge table (see
    :meth:`GraphStorage.load_graph`); incremental view maintenance keeps
    its patched tables in the same order so full and incremental refresh
    produce bit-identical relations.

    When both endpoint columns fit in 31 bits (every realistic graph),
    ``(src, dst)`` packs into one int64 key and two stable argsorts beat
    a three-key ``np.lexsort`` by ~1.5x; otherwise fall back to lexsort.
    """
    if len(src) and src.max() < 2**31 and dst.max() < 2**31 and src.min() >= 0 and dst.min() >= 0:
        by_weight = np.argsort(weight, kind="stable")
        key = (src * np.int64(1 << 31) + dst)[by_weight]
        return by_weight[np.argsort(key, kind="stable")]
    return np.lexsort((weight, dst, src))

#: Worker output staging schema (kind 0 = vertex update, 1 = message).
WORKER_OUTPUT_COLUMNS = (
    ("kind", INTEGER, False),
    ("vid", INTEGER, False),
    ("dst", INTEGER, True),
    ("f1", FLOAT, True),
    ("s1", VARCHAR, True),
    ("halted", BOOLEAN, True),
)


def payload_width(program: VertexProgram) -> int:
    """Width of the staging table's vector payload block for a run: the
    widest vector codec the program declares (0 when both are scalar —
    the staging schema is then exactly the paper's)."""
    return max(program.vertex_codec.width, program.message_codec.width)


def worker_output_columns(width: int = 0) -> tuple[tuple[str, Any, bool], ...]:
    """The staging columns for a run whose vector payload block is
    ``width`` columns wide (``p0..p{width-1}``, appended after the scalar
    payload pair)."""
    extra = tuple((f"p{j}", FLOAT, True) for j in range(width))
    return WORKER_OUTPUT_COLUMNS + extra


def _staged_value_expr(codec: ValueCodec, alias: str | None) -> str:
    """SQL expression extracting a scalar codec's value from the staging
    columns.

    The staging table keeps all non-string scalar payloads in the FLOAT
    ``f1`` column, so INTEGER codecs need a cast on the way out.  Vector
    codecs have no single extraction expression — use
    :func:`_staged_value_exprs`.
    """
    prefix = f"{alias}." if alias else ""
    if codec.sql_type is VARCHAR:
        return f"{prefix}s1"
    if codec.sql_type is INTEGER:
        return f"CAST({prefix}f1 AS INTEGER)"
    return f"{prefix}f1"


def _staged_value_exprs(codec: ValueCodec, alias: str | None) -> list[str]:
    """SQL expressions extracting a codec's value column(s) from staging:
    one per storage column (``p{j}`` for vector codecs, the scalar
    ``f1``/``s1`` expression otherwise)."""
    prefix = f"{alias}." if alias else ""
    if codec.is_vector:
        return [f"{prefix}p{j}" for j in range(codec.width)]
    return [_staged_value_expr(codec, alias)]


def _value_column_ddl(codec: ValueCodec) -> str:
    """The value-column clause of a vertex/message CREATE TABLE."""
    if codec.is_vector:
        return ", ".join(f"{name} FLOAT" for name in codec.column_names())
    return f"value {codec.sql_type.name}"


def _value_columns_from_storage(
    codec: ValueCodec, values: np.ndarray, valid: np.ndarray
) -> list[Column]:
    """Table columns from a storage-encoded value array: one column per
    storage column (a 2-D ``(n, k)`` array splits into its ``k`` FLOAT
    columns, every one sharing the whole-vector validity mask)."""
    if codec.is_vector:
        return [
            Column.from_numpy(
                FLOAT, np.ascontiguousarray(values[:, j]), valid.copy()
            )
            for j in range(codec.width)
        ]
    return [Column.from_numpy(codec.sql_type, values, valid)]


class GraphHandle:
    """A loaded graph: names of its tables plus cached size facts."""

    def __init__(self, db: Database, name: str, num_vertices: int, num_edges: int) -> None:
        self.db = db
        self.name = name
        self.num_vertices = num_vertices
        self.num_edges = num_edges

    # Table names -------------------------------------------------------
    @property
    def edge_table(self) -> str:
        """Name of the edge table."""
        return f"{self.name}_edge"

    @property
    def node_table(self) -> str:
        """Name of the node-id table (the bare vertex set)."""
        return f"{self.name}_node"

    @property
    def vertex_table(self) -> str:
        """Name of the per-run vertex state table."""
        return f"{self.name}_vertex"

    @property
    def message_table(self) -> str:
        """Name of the per-run message table."""
        return f"{self.name}_message"

    @property
    def output_table(self) -> str:
        """Name of the worker-output staging table."""
        return f"{self.name}_out"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GraphHandle({self.name!r}, |V|={self.num_vertices}, |E|={self.num_edges})"


class GraphStorage:
    """Creates, loads, and mutates the relational graph tables."""

    def __init__(self, db: Database) -> None:
        self.db = db

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load_graph(
        self,
        name: str,
        src: Sequence[int] | np.ndarray,
        dst: Sequence[int] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
        num_vertices: int | None = None,
        node_ids: Sequence[int] | np.ndarray | None = None,
        presorted: bool = False,
    ) -> GraphHandle:
        """Bulk-load an edge list into ``{name}_edge`` / ``{name}_node``.

        Vertex ids must be integers; the node table is the union of
        endpoint ids with ``0..num_vertices-1`` when ``num_vertices`` is
        given (isolated vertices are kept that way) and with ``node_ids``
        when given (explicit vertex sets, e.g. from a graph view's node
        specs — members with no edges stay isolated vertices).

        Edges are stored in *canonical order* — sorted by
        ``(src, dst, weight)`` — so that any two loads of the same edge
        multiset produce bit-identical tables regardless of input order.
        Incremental graph-view maintenance relies on this: a delta-patched
        edge table and a from-scratch re-extraction land on the same rows
        in the same positions, which keeps downstream float reductions
        (message sums per vertex) bit-reproducible too.  Callers that
        already hold canonically ordered arrays pass ``presorted=True`` to
        skip the re-sort (the graph-view extractor sorts once and shares
        the order with its maintenance state).

        Raises:
            GraphLoadError: empty name, ragged arrays, or negative ids.
        """
        if not name or not name.isidentifier():
            raise GraphLoadError(f"graph name must be an identifier, got {name!r}")
        src_arr = np.asarray(src, dtype=np.int64)
        dst_arr = np.asarray(dst, dtype=np.int64)
        if src_arr.shape != dst_arr.shape:
            raise GraphLoadError("src and dst arrays differ in length")
        if len(src_arr) and (src_arr.min() < 0 or dst_arr.min() < 0):
            raise GraphLoadError("vertex ids must be non-negative")
        if weights is None:
            weight_arr = np.ones(len(src_arr), dtype=np.float64)
        else:
            weight_arr = np.asarray(weights, dtype=np.float64)
            if weight_arr.shape != src_arr.shape:
                raise GraphLoadError("weights array length differs from edges")
        if not presorted:
            order = canonical_edge_order(src_arr, dst_arr, weight_arr)
            src_arr, dst_arr, weight_arr = (
                src_arr[order],
                dst_arr[order],
                weight_arr[order],
            )

        handle = GraphHandle(self.db, name, 0, len(src_arr))
        db = self.db
        # One critical section for the whole DROP/CREATE/INSERT sequence:
        # a concurrent snapshot pin must never land between the drop and
        # the reload and see the graph's tables half-gone.
        with db.lock:
            db.execute(f"DROP TABLE IF EXISTS {handle.edge_table}")
            db.execute(f"DROP TABLE IF EXISTS {handle.node_table}")
            db.execute(
                f"CREATE TABLE {handle.edge_table} "
                "(src INTEGER NOT NULL, dst INTEGER NOT NULL, weight FLOAT NOT NULL)"
            )
            edge_schema = db.table(handle.edge_table).schema
            db.insert_batch(
                handle.edge_table,
                RecordBatch(
                    edge_schema,
                    [
                        Column.from_numpy(INTEGER, src_arr),
                        Column.from_numpy(INTEGER, dst_arr),
                        Column.from_numpy(FLOAT, weight_arr),
                    ],
                ),
            )
            ids = np.union1d(src_arr, dst_arr) if len(src_arr) else np.empty(0, np.int64)
            if num_vertices is not None:
                ids = np.union1d(ids, np.arange(num_vertices, dtype=np.int64))
            if node_ids is not None:
                explicit = np.asarray(node_ids, dtype=np.int64)
                if len(explicit) and explicit.min() < 0:
                    raise GraphLoadError("vertex ids must be non-negative")
                ids = np.union1d(ids, explicit)
            db.execute(f"CREATE TABLE {handle.node_table} (id INTEGER NOT NULL)")
            db.insert_batch(
                handle.node_table,
                RecordBatch(
                    db.table(handle.node_table).schema,
                    [Column.from_numpy(INTEGER, ids)],
                ),
            )
            handle.num_vertices = len(ids)
        return handle

    def replace_graph(
        self,
        name: str,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray,
        node_ids: np.ndarray,
    ) -> GraphHandle:
        """Swap new contents into an *existing* graph's edge/node tables.

        This is the incremental-maintenance fast path: no DROP/CREATE, no
        SQL — the caller hands fully-prepared arrays (edges already in
        canonical order, node ids already sorted-unique) and each table is
        replaced wholesale via :meth:`~repro.engine.table.Table.replace_data`,
        the O(1)-beyond-batch-building pointer swap from the paper's
        Update-vs-Replace optimization.

        Raises:
            GraphLoadError: when the graph's tables do not exist yet.
        """
        edge_table = f"{name}_edge"
        node_table = f"{name}_node"
        # Both pointer swaps under the engine lock: a concurrent snapshot
        # pin must see old-edges/old-nodes or new-edges/new-nodes, never
        # a torn mix of the two.
        with self.db.lock:
            if not (self.db.has_table(edge_table) and self.db.has_table(node_table)):
                raise GraphLoadError(f"graph {name!r} is not loaded")
            edge = self.db.table(edge_table)
            edge.replace_data(
                RecordBatch(
                    edge.schema,
                    [
                        Column.from_numpy(INTEGER, src),
                        Column.from_numpy(INTEGER, dst),
                        Column.from_numpy(FLOAT, weights),
                    ],
                )
            )
            node = self.db.table(node_table)
            node.replace_data(
                RecordBatch(node.schema, [Column.from_numpy(INTEGER, node_ids)])
            )
        return GraphHandle(self.db, name, len(node_ids), len(src))

    def handle(self, name: str) -> GraphHandle:
        """Re-attach to a previously loaded graph by name."""
        edge_table = f"{name}_edge"
        node_table = f"{name}_node"
        if not (self.db.has_table(edge_table) and self.db.has_table(node_table)):
            raise GraphLoadError(f"graph {name!r} is not loaded")
        return GraphHandle(
            self.db,
            name,
            self.db.table(node_table).num_rows,
            self.db.table(edge_table).num_rows,
        )

    # ------------------------------------------------------------------
    # Per-run working tables
    # ------------------------------------------------------------------
    def setup_run(self, graph: GraphHandle, program: VertexProgram) -> None:
        """(Re)create the vertex/message/output tables for a program run
        and populate initial vertex values via
        :meth:`VertexProgram.initial_value`."""
        db = self.db
        db.execute(f"DROP TABLE IF EXISTS {graph.vertex_table}")
        db.execute(f"DROP TABLE IF EXISTS {graph.message_table}")
        db.execute(f"DROP TABLE IF EXISTS {graph.output_table}")
        db.execute(
            f"CREATE TABLE {graph.vertex_table} "
            f"(id INTEGER NOT NULL, {_value_column_ddl(program.vertex_codec)}, "
            "halted BOOLEAN NOT NULL)"
        )
        db.execute(
            f"CREATE TABLE {graph.message_table} "
            f"(src INTEGER, dst INTEGER NOT NULL, "
            f"{_value_column_ddl(program.message_codec)})"
        )
        staging_payload = "".join(
            f", p{j} FLOAT" for j in range(payload_width(program))
        )
        db.execute(
            f"CREATE TABLE {graph.output_table} ("
            "kind INTEGER NOT NULL, vid INTEGER NOT NULL, dst INTEGER, "
            f"f1 FLOAT, s1 VARCHAR, halted BOOLEAN{staging_payload})"
        )
        degrees = self.out_degrees(graph)
        id_batch = db.query_batch(f"SELECT id FROM {graph.node_table} ORDER BY id")
        ids = np.asarray(id_batch.column("id").values, dtype=np.int64)
        codec = program.vertex_codec
        n = graph.num_vertices
        # initial_value is a per-vertex program hook (runs once per load,
        # not per superstep); staging skips per-item coercion via the
        # Column.from_numpy fast path.
        values = [
            codec.encode_or_none(
                program.initial_value(vertex_id, degrees.get(vertex_id, 0), n)
            )
            for vertex_id in ids.tolist()
        ]
        if codec.is_vector:
            dense = np.zeros((len(ids), codec.width), dtype=np.float64)
            valid = np.zeros(len(ids), dtype=bool)
            for i, item in enumerate(values):
                if item is not None:
                    dense[i] = item
                    valid[i] = True
            value_columns = _value_columns_from_storage(codec, dense, valid)
        else:
            value_columns = [Column.from_values(codec.sql_type, values)]
        schema = db.table(graph.vertex_table).schema
        batch = RecordBatch(
            schema,
            [
                Column.from_numpy(INTEGER, ids),
                *value_columns,
                Column.from_numpy(BOOLEAN, np.zeros(len(ids), dtype=bool)),
            ],
        )
        db.insert_batch(graph.vertex_table, batch)

    def out_degrees(self, graph: GraphHandle) -> dict[int, int]:
        """Out-degree per vertex (absent = 0), computed in SQL."""
        rows = self.db.execute(
            f"SELECT src, COUNT(*) AS deg FROM {graph.edge_table} GROUP BY src"
        ).rows()
        return {src: deg for src, deg in rows}

    # ------------------------------------------------------------------
    # Worker input queries (the §2.3 Table Unions optimization + its foil)
    # ------------------------------------------------------------------
    def union_input_sql(
        self, graph: GraphHandle, program: VertexProgram, include_edges: bool = True
    ) -> str:
        """UNION ALL of the three tables renamed to a common narrow schema
        ``(vid, kind, i1, f1, s1[, p0..p{K-1}])`` — kind 0/1/2 =
        vertex/edge/message.

        Scalar codecs project exactly the paper's five columns.  A vector
        codec appends its storage columns as FLOAT payload columns
        ``p0..p{K-1}`` (``K`` = the widest vector codec): vertex rows fill
        the vertex codec's width, message rows the message codec's, and
        every other position is NULL.

        ``include_edges=False`` omits the edge relation: once the worker
        has cached the decoded per-partition edge arrays (superstep 0),
        re-projecting the immutable edge table every superstep is pure
        overhead.
        """
        v_codec = program.vertex_codec
        m_codec = program.message_codec
        if v_codec.is_vector:
            v_f1, v_s1 = "NULL", "NULL"
        elif v_codec.sql_type is VARCHAR:
            v_f1, v_s1 = "NULL", "v.value"
        else:
            v_f1, v_s1 = "v.value", "NULL"
        if m_codec.is_vector:
            m_f1, m_s1 = "NULL", "NULL"
        elif m_codec.sql_type is VARCHAR:
            m_f1, m_s1 = "NULL", "m.value"
        else:
            m_f1, m_s1 = "m.value", "NULL"

        width = payload_width(program)

        def payload(codec: ValueCodec, alias: str, first: bool) -> str:
            parts = []
            for j in range(width):
                expr = (
                    f"CAST({alias}.v{j} AS FLOAT)"
                    if codec.is_vector and j < codec.width
                    else "CAST(NULL AS FLOAT)"  # bare NULL would type as VARCHAR
                )
                parts.append(f", {expr} AS p{j}" if first else f", {expr}")
            return "".join(parts)

        edge_nulls = "".join(", CAST(NULL AS FLOAT)" for _ in range(width))
        edge_part = (
            f"UNION ALL "
            f"SELECT e.src, 1, e.dst, e.weight, NULL{edge_nulls} "
            f"FROM {graph.edge_table} e "
            if include_edges
            else ""
        )
        return (
            f"SELECT v.id AS vid, 0 AS kind, "
            f"CASE WHEN v.halted THEN 1 ELSE 0 END AS i1, "
            f"CAST({v_f1} AS FLOAT) AS f1, CAST({v_s1} AS VARCHAR) AS s1"
            f"{payload(v_codec, 'v', first=True)} "
            f"FROM {graph.vertex_table} v "
            f"{edge_part}"
            f"UNION ALL "
            f"SELECT m.dst, 2, m.src, CAST({m_f1} AS FLOAT), CAST({m_s1} AS VARCHAR)"
            f"{payload(m_codec, 'm', first=False)} "
            f"FROM {graph.message_table} m"
        )

    def join_input_sql(self, graph: GraphHandle) -> str:
        """The naive three-way join the paper warns against: one row per
        (vertex x out-edge x incoming-message) combination."""
        return (
            "SELECT v.id AS vid, CASE WHEN v.halted THEN 1 ELSE 0 END AS halted, "
            "v.value AS vvalue, e.dst AS edst, e.weight AS eweight, "
            "m.src AS msrc, m.value AS mvalue "
            f"FROM {graph.vertex_table} v "
            f"LEFT JOIN {graph.edge_table} e ON v.id = e.src "
            f"LEFT JOIN {graph.message_table} m ON v.id = m.dst"
        )

    # ------------------------------------------------------------------
    # Applying worker output
    # ------------------------------------------------------------------
    def stage_worker_output(self, graph: GraphHandle, batch: RecordBatch) -> None:
        """Load the worker's output batch into the staging table."""
        table = self.db.table(graph.output_table)
        table.truncate()
        table.insert_batch(batch.with_schema(table.schema))

    def count_staged(self, graph: GraphHandle, kind: int) -> int:
        """Rows of one kind currently staged (direct column scan — this
        runs twice per superstep, so it skips the SQL round trip)."""
        data = self.db.table(graph.output_table).data()
        return int(np.count_nonzero(data.column("kind").values == kind))

    def apply_messages(
        self, graph: GraphHandle, program: VertexProgram, use_combiner: bool, replace: bool
    ) -> int:
        """Replace the message table with staged kind-1 rows, applying the
        program's combiner in SQL (a GROUP BY) when enabled.

        Returns the number of messages now pending.
        """
        db = self.db
        codec = program.message_codec
        if use_combiner and program.combiner is not None:
            # Vector codecs combine element-wise: one aggregate per
            # payload column, all under the same GROUP BY.  Whole-vector
            # validity means a NULL message is NULL in every column, so
            # the per-column NULL-skip of SQL aggregates cannot mix lanes
            # from different messages.
            agg_list = ", ".join(
                f"{program.combiner}({expr}) AS {name}"
                for expr, name in zip(
                    _staged_value_exprs(codec, alias=None), codec.column_names()
                )
            )
            select = (
                f"SELECT MIN(vid) AS src, dst, {agg_list} "
                f"FROM {graph.output_table} WHERE kind = 1 GROUP BY dst"
            )
        else:
            value_list = ", ".join(
                f"{expr} AS {name}"
                for expr, name in zip(
                    _staged_value_exprs(codec, alias=None), codec.column_names()
                )
            )
            select = (
                f"SELECT vid AS src, dst, {value_list} "
                f"FROM {graph.output_table} WHERE kind = 1"
            )
        fresh = db.query_batch(select)
        message_table = db.table(graph.message_table)
        if replace:
            message_table.replace_data(fresh)
        else:
            # The slow tuple-DML path: DELETE then INSERT through SQL.
            db.execute(f"DELETE FROM {graph.message_table}")
            message_table.insert_batch(fresh.with_schema(message_table.schema))
        return message_table.num_rows

    def apply_vertex_updates(
        self,
        graph: GraphHandle,
        program: VertexProgram,
        replace: bool,
        superstep: int | None = None,
    ) -> int:
        """Apply staged kind-0 rows to the vertex table.

        Replace path (paper's fast path): rebuild the whole table with one
        LEFT JOIN against the staged updates and swap it in.  Update path:
        one UPDATE statement per staged tuple — genuine tuple-at-a-time
        DML, which is exactly what the optimization avoids.

        Returns the number of vertex rows updated.  ``superstep`` only
        feeds the ``storage.apply`` fault-injection site.
        """
        faults.trip("storage.apply", superstep=superstep)
        db = self.db
        codec = program.vertex_codec
        if codec.is_vector:
            staged_cols = [f"p{j}" for j in range(codec.width)]
        else:
            staged_cols = ["s1" if codec.sql_type is VARCHAR else "f1"]
        value_names = codec.column_names()
        updates = self.count_staged(graph, 0)
        if updates == 0:
            return 0
        if replace:
            value_cases = ", ".join(
                f"CASE WHEN w.vid IS NULL THEN v.{name} ELSE {expr} END AS {name}"
                for name, expr in zip(
                    value_names, _staged_value_exprs(codec, alias="w")
                )
            )
            fresh = db.query_batch(
                f"SELECT v.id AS id, {value_cases}, "
                f"CASE WHEN w.vid IS NULL THEN v.halted ELSE w.halted END AS halted "
                f"FROM {graph.vertex_table} v "
                f"LEFT JOIN (SELECT vid, {', '.join(staged_cols)}, halted "
                f"           FROM {graph.output_table} WHERE kind = 0) w "
                f"ON v.id = w.vid"
            )
            db.table(graph.vertex_table).replace_data(fresh)
            return updates
        staged = db.execute(
            f"SELECT vid, {', '.join(staged_cols)}, halted "
            f"FROM {graph.output_table} WHERE kind = 0"
        ).rows()
        integral = codec.sql_type is INTEGER and not codec.is_vector
        set_clause = ", ".join(f"{name} = ?" for name in value_names)
        for row in staged:
            vid, values, halted = row[0], list(row[1:-1]), row[-1]
            if integral and values[0] is not None:
                values[0] = int(values[0])
            db.execute(
                f"UPDATE {graph.vertex_table} SET {set_clause}, halted = ? "
                "WHERE id = ?",
                params=(*values, halted, vid),
            )
        return updates

    # ------------------------------------------------------------------
    # Shard-plane sync (mirror resident shard state into the tables)
    # ------------------------------------------------------------------
    def sync_vertex_state(
        self,
        graph: GraphHandle,
        program: VertexProgram,
        ids: np.ndarray,
        values: np.ndarray,
        values_valid: np.ndarray,
        halted: np.ndarray,
    ) -> None:
        """Replace the vertex table with shard-resident state.

        ``values`` must already be in storage representation (the shard
        plane keeps vertex values encoded, exactly like the table
        columns — a 2-D ``(n, k)`` array for vector codecs).  Rows are
        written in ascending id order — the same order ``setup_run``
        loads and ``read_values`` reads.
        """
        table = self.db.table(graph.vertex_table)
        codec = program.vertex_codec
        table.replace_data(
            RecordBatch(
                table.schema,
                [
                    Column.from_numpy(INTEGER, ids),
                    *_value_columns_from_storage(codec, values, values_valid),
                    Column.from_numpy(BOOLEAN, halted),
                ],
            )
        )

    def sync_message_state(
        self,
        graph: GraphHandle,
        program: VertexProgram,
        src: np.ndarray,
        dst: np.ndarray,
        values: np.ndarray,
        values_valid: np.ndarray,
    ) -> None:
        """Replace the message table with the shard plane's pending
        messages (storage-encoded values, sorted by destination)."""
        table = self.db.table(graph.message_table)
        codec = program.message_codec
        table.replace_data(
            RecordBatch(
                table.schema,
                [
                    Column.from_numpy(INTEGER, src),
                    Column.from_numpy(INTEGER, dst),
                    *_value_columns_from_storage(codec, values, values_valid),
                ],
            )
        )

    def reduce_aggregators(
        self, graph: GraphHandle, program: VertexProgram
    ) -> dict[str, float]:
        """Reduce the staged kind-2 aggregator partials in SQL.

        Returns a value per aggregator that received contributions this
        superstep (Pregel semantics: aggregators reset each superstep).
        """
        out: dict[str, float] = {}
        for name, op in program.aggregators.items():
            value = self.db.execute(
                f"SELECT {op}(f1) FROM {graph.output_table} "
                f"WHERE kind = 2 AND s1 = ?",
                params=(name,),
            ).scalar()
            if value is not None:
                out[name] = float(value)
        return out

    # ------------------------------------------------------------------
    # Run-state queries
    # ------------------------------------------------------------------
    def pending_messages(self, graph: GraphHandle) -> int:
        """Messages waiting for the next superstep."""
        return self.db.table(graph.message_table).num_rows

    def active_vertices(self, graph: GraphHandle) -> int:
        """Vertices that have not voted to halt (direct column scan, like
        :meth:`pending_messages` — one per superstep of the hot loop)."""
        data = self.db.table(graph.vertex_table).data()
        halted = data.column("halted")
        return int(np.count_nonzero(~halted.values))

    def read_values(self, graph: GraphHandle, program: VertexProgram) -> dict[int, Any]:
        """Final vertex values, decoded through the program's codec (one
        vectorized column pass, not a per-row decode loop)."""
        codec = program.vertex_codec
        cols = ", ".join(codec.column_names())
        batch = self.db.query_batch(
            f"SELECT id, {cols} FROM {graph.vertex_table} ORDER BY id"
        )
        ids = batch.column("id").values.tolist()
        if codec.is_vector:
            columns = [batch.column(name) for name in codec.column_names()]
            values = (
                np.column_stack([np.asarray(c.values, np.float64) for c in columns])
                if ids
                else np.empty((0, codec.width), dtype=np.float64)
            )
            valid = columns[0].valid
        else:
            value_col = batch.column("value")
            values, valid = value_col.values, value_col.valid
        decoded = codec.decode_list(values, valid)
        return dict(zip(ids, decoded))
