"""Deterministic fault injection and retry policy for the runtime.

Giraph-style fault tolerance is only trustworthy if it can be *tested*
deterministically, so the runtime threads named injection sites through
its superstep machinery and this module decides — from a seeded, fully
explicit :class:`FaultPlan` — whether a given site trips.  Production
runs pay one ``None`` check per site.

Sites (see :data:`SITES`):

* ``shard.compute``  — inside one shard task, before compute runs;
* ``shard.route``    — at the superstep barrier, before message routing;
* ``storage.apply``  — SQL plane, before staged updates are applied;
* ``storage.sync``   — shard plane, before resident state is mirrored
  into the relational tables;
* ``checkpoint.write`` — mid-checkpoint, after the table files are on
  disk but before the manifest/pointer flip (produces a genuinely torn
  checkpoint).

Fault kinds:

* ``"transient"`` — raises :class:`InjectedFault` with ``transient=True``
  (the retry layer's classifier honors the flag);
* ``"deterministic"`` — same exception, ``transient=False``: retrying is
  pointless and the run must fail fast;
* ``"kill"`` — raises :class:`InjectedKill`, a ``BaseException`` that no
  runtime handler catches, simulating the process dying at that exact
  point (the kill-and-resume fuzz suite's tool).

A plan is activated for the current process either explicitly
(:func:`injected` / :func:`activate`) or via the ``REPRO_FAULT_PLAN``
environment variable holding :meth:`FaultPlan.to_json` output.

The module also owns the runtime's *retry policy*: :func:`is_transient`
classifies exceptions (injected faults, OS/network errors) and
:func:`retry_call` retries transient failures with capped deterministic
exponential backoff — shared by shard tasks, graph-view extraction, and
dataset downloads.
"""

from __future__ import annotations

import errno
import json
import os
import threading
import time
import urllib.error
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.errors import VertexicaError

__all__ = [
    "SITES",
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "InjectedKill",
    "activate",
    "active_plan_json",
    "deactivate",
    "injected",
    "trip",
    "is_transient",
    "retry_call",
    "ENV_VAR",
]

#: Named injection sites the runtime trips (module docstring has the map).
SITES = (
    "shard.compute",
    "shard.route",
    "storage.apply",
    "storage.sync",
    "checkpoint.write",
)

KINDS = ("transient", "deterministic", "kill")

#: Environment variable carrying a JSON fault plan (see FaultPlan.to_json).
ENV_VAR = "REPRO_FAULT_PLAN"


class InjectedFault(RuntimeError):
    """A planned fault raised at an injection site.

    Attributes:
        site, superstep, shard: where it tripped.
        transient: whether the retry classifier should treat it as
            retriable.
    """

    def __init__(
        self,
        site: str,
        superstep: int | None,
        shard: int | None,
        transient: bool,
    ) -> None:
        kind = "transient" if transient else "deterministic"
        super().__init__(
            f"injected {kind} fault at {site!r} (superstep={superstep}, shard={shard})"
        )
        self.site = site
        self.superstep = superstep
        self.shard = shard
        self.transient = transient

    def __reduce__(self):
        # The default exception reduce replays ``cls(*args)`` with the
        # formatted message, which does not match this constructor; a
        # fault raised inside a worker process must survive the pickle
        # round-trip back to the coordinator intact.
        return (InjectedFault, (self.site, self.superstep, self.shard, self.transient))


class InjectedKill(BaseException):
    """A planned process death.

    Deliberately *not* an :class:`Exception`: every runtime fault handler
    catches ``Exception``, so a kill tears straight through compute,
    rollback, and checkpointing — exactly like SIGKILL — leaving only
    what was already durable.
    """

    def __init__(self, site: str, superstep: int | None, shard: int | None) -> None:
        super().__init__(
            f"injected kill at {site!r} (superstep={superstep}, shard={shard})"
        )
        self.site = site
        self.superstep = superstep
        self.shard = shard

    def __reduce__(self):
        # Same pickling contract as InjectedFault: a kill raised inside a
        # worker process re-raises as the same BaseException type in the
        # coordinator, tearing through every Exception handler there too.
        return (InjectedKill, (self.site, self.superstep, self.shard))


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``superstep``/``shard`` of ``None`` match any value (including sites
    that trip without one); ``times`` bounds how often the spec fires.
    """

    site: str
    kind: str = "transient"
    superstep: int | None = None
    shard: int | None = None
    times: int = 1

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise VertexicaError(f"unknown fault site {self.site!r}; expected one of {SITES}")
        if self.kind not in KINDS:
            raise VertexicaError(f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if self.times < 1:
            raise VertexicaError("fault times must be >= 1")

    def matches(self, site: str, superstep: int | None, shard: int | None) -> bool:
        if self.site != site:
            return False
        if self.superstep is not None and superstep != self.superstep:
            return False
        if self.shard is not None and shard != self.shard:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "superstep": self.superstep,
            "shard": self.shard,
            "times": self.times,
        }


class FaultPlan:
    """An ordered set of :class:`FaultSpec` with per-spec firing budgets.

    Thread-safe: shard tasks trip sites concurrently.  ``fired`` records
    every fault actually raised as ``(site, superstep, shard, kind)`` so
    tests can assert the plan did what it said.
    """

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self.specs = tuple(specs)
        self._remaining = [spec.times for spec in self.specs]
        self._lock = threading.Lock()
        self.fired: list[tuple[str, int | None, int | None, str]] = []

    # ------------------------------------------------------------------
    def trip(self, site: str, superstep: int | None = None, shard: int | None = None) -> None:
        """Raise the first matching planned fault (if any is left)."""
        with self._lock:
            kind = None
            for i, spec in enumerate(self.specs):
                if self._remaining[i] > 0 and spec.matches(site, superstep, shard):
                    self._remaining[i] -= 1
                    kind = spec.kind
                    self.fired.append((site, superstep, shard, kind))
                    break
            if kind is None:
                return
        if kind == "kill":
            raise InjectedKill(site, superstep, shard)
        raise InjectedFault(site, superstep, shard, transient=(kind == "transient"))

    @property
    def exhausted(self) -> bool:
        """True once every spec has fired its full budget."""
        with self._lock:
            return all(r == 0 for r in self._remaining)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        sites: Sequence[str] = SITES,
        kinds: Sequence[str] = ("kill",),
        max_superstep: int = 6,
        n_faults: int = 1,
    ) -> "FaultPlan":
        """A reproducible random plan: ``n_faults`` specs drawn from
        ``sites`` × ``kinds`` × supersteps ``0..max_superstep``."""
        rng = np.random.default_rng(seed)
        specs = [
            FaultSpec(
                site=sites[int(rng.integers(len(sites)))],
                kind=kinds[int(rng.integers(len(kinds)))],
                superstep=int(rng.integers(max_superstep + 1)),
            )
            for _ in range(n_faults)
        ]
        return cls(specs)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse :meth:`to_json` output (also the ``REPRO_FAULT_PLAN``
        format): a JSON list of spec objects, or ``{"seed": N, ...}``
        forwarding keyword options to :meth:`from_seed`.

        Raises:
            VertexicaError: malformed JSON or unknown fields.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise VertexicaError(f"malformed fault plan JSON: {exc}") from exc
        if isinstance(payload, dict):
            if "seed" not in payload:
                raise VertexicaError("fault plan object form requires a 'seed' key")
            kwargs = dict(payload)
            seed = kwargs.pop("seed")
            for key in ("sites", "kinds"):
                if key in kwargs:
                    kwargs[key] = tuple(kwargs[key])
            try:
                return cls.from_seed(int(seed), **kwargs)
            except TypeError as exc:
                raise VertexicaError(f"bad fault plan options: {exc}") from exc
        if not isinstance(payload, list):
            raise VertexicaError("fault plan JSON must be a list or a seed object")
        specs = []
        for entry in payload:
            try:
                specs.append(FaultSpec(**entry))
            except TypeError as exc:
                raise VertexicaError(f"bad fault spec {entry!r}: {exc}") from exc
        return cls(specs)

    def to_json(self) -> str:
        return json.dumps([spec.to_dict() for spec in self.specs])


# ----------------------------------------------------------------------
# Process-wide activation (explicit plan wins over the environment)
# ----------------------------------------------------------------------
_ACTIVE: FaultPlan | None = None
_ENV_CACHE: tuple[str, FaultPlan] | None = None


def activate(plan: FaultPlan) -> None:
    """Arm ``plan`` for this process (until :func:`deactivate`)."""
    global _ACTIVE
    _ACTIVE = plan


def deactivate() -> None:
    """Disarm any explicit plan (the env plan, if set, applies again)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope a plan to a ``with`` block (always disarms on exit)."""
    activate(plan)
    try:
        yield plan
    finally:
        deactivate()


def _plan_from_env() -> FaultPlan | None:
    """The ``REPRO_FAULT_PLAN`` plan, parsed once per distinct value so
    firing budgets persist across trips within the process."""
    global _ENV_CACHE
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    if _ENV_CACHE is None or _ENV_CACHE[0] != raw:
        _ENV_CACHE = (raw, FaultPlan.from_json(raw))
    return _ENV_CACHE[1]


def active_plan_json() -> str | None:
    """The armed plan (explicit or environment) as portable JSON, or
    ``None`` when no plan is armed.

    This is how the process-parallel shard plane ships fault plans into
    its worker processes: the bootstrap captures the JSON at pool start
    and re-activates it child-side, so ``shard.compute`` trips inside
    the process that actually runs the shard.  Spec budgets are restated
    in full (each child gets its own counters); plans targeting a
    specific superstep/shard behave identically either way.
    """
    plan = _ACTIVE
    if plan is None:
        plan = _plan_from_env()
    return None if plan is None else plan.to_json()


def trip(site: str, superstep: int | None = None, shard: int | None = None) -> None:
    """The runtime's injection hook — a no-op unless a plan is armed."""
    plan = _ACTIVE
    if plan is None:
        plan = _plan_from_env()
        if plan is None:
            return
    plan.trip(site, superstep, shard)


# ----------------------------------------------------------------------
# Retry policy (shared classifier + capped deterministic backoff)
# ----------------------------------------------------------------------

#: HTTP statuses worth retrying (rate limits, upstream hiccups).
TRANSIENT_HTTP_STATUSES = frozenset({408, 425, 429, 500, 502, 503, 504})

#: OS errnos that signal a momentary condition, not a broken input.
TRANSIENT_ERRNOS = frozenset(
    {
        errno.EAGAIN,
        errno.EINTR,
        errno.EBUSY,
        errno.ETIMEDOUT,
        errno.ECONNRESET,
        errno.ECONNABORTED,
        errno.ENETRESET,
        errno.ENETUNREACH,
    }
)


def is_transient(exc: BaseException) -> bool:
    """Classify an exception as retriable (transient) or deterministic.

    An explicit boolean ``transient`` attribute wins (how
    :class:`InjectedFault` and custom errors opt in/out); otherwise
    network/OS error families are matched structurally.  Anything
    unrecognized — program bugs, type errors, engine errors — is
    deterministic: retrying it would just repeat the failure.
    """
    flag = getattr(exc, "transient", None)
    if flag is not None:
        return bool(flag)
    if isinstance(exc, urllib.error.HTTPError):
        return exc.code in TRANSIENT_HTTP_STATUSES
    if isinstance(exc, urllib.error.URLError):
        return True  # DNS/connection-level failure
    if isinstance(exc, (ConnectionError, TimeoutError, InterruptedError)):
        return True
    if isinstance(exc, OSError):
        return exc.errno in TRANSIENT_ERRNOS
    return False


def retry_call(
    fn: Callable[[], Any],
    *,
    retries: int = 2,
    backoff: float = 0.01,
    backoff_cap: float = 1.0,
    classify: Callable[[BaseException], bool] = is_transient,
    on_retry: Callable[[BaseException, int, float], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Call ``fn``, retrying transient failures up to ``retries`` times.

    Backoff is capped deterministic exponential — ``backoff * 2**attempt``
    bounded by ``backoff_cap``, no jitter — so reruns are reproducible.
    Deterministic failures (per ``classify``) and exhausted budgets
    re-raise the original exception unchanged.  ``on_retry(exc, attempt,
    delay)`` is invoked before each sleep (attempt counts from 1).
    """
    attempt = 0
    while True:
        try:
            return fn()
        except Exception as exc:
            if attempt >= retries or not classify(exc):
                raise
            delay = min(backoff * (2.0**attempt), backoff_cap)
            if on_retry is not None:
                on_retry(exc, attempt + 1, delay)
            if delay > 0:
                sleep(delay)
            attempt += 1
