"""The user-facing Vertexica facade.

Bundles a :class:`~repro.engine.database.Database`, the graph storage
layer, and the coordinator stored procedure behind the three calls an
analyst needs::

    vx = Vertexica()
    graph = vx.load_graph("twitter", src=..., dst=...)
    result = vx.run(graph, PageRankProgram(iterations=10))
    result.values          # {vertex_id: rank}
    result.stats.summary() # timings per superstep

The database stays fully accessible (``vx.sql(...)``) so graph runs can be
freely mixed with relational pre-/post-processing — the paper's §3.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.config import VertexicaConfig
from repro.core.coordinator import register_coordinator
from repro.core.metrics import RunStats
from repro.core.program import VertexProgram
from repro.core.storage import GraphHandle, GraphStorage
from repro.engine.database import Database, Result

__all__ = ["Vertexica", "VertexicaResult"]


@dataclass
class VertexicaResult:
    """Output of one vertex-program run."""

    values: dict[int, Any]
    stats: RunStats

    def top(self, k: int, reverse: bool = True) -> list[tuple[int, Any]]:
        """The ``k`` vertices with the largest (or smallest) values,
        ties broken by ascending vertex id for determinism.

        Works for any orderable value type (negating the value would
        raise ``TypeError`` for e.g. label-propagation string labels), so
        the value sort relies on stable two-pass sorting instead.
        """
        items = [(vid, value) for vid, value in self.values.items() if value is not None]
        items.sort(key=lambda pair: pair[0])
        items.sort(key=lambda pair: pair[1], reverse=reverse)
        return items[:k]


class Vertexica:
    """Vertex-centric graph analytics on top of the relational engine."""

    def __init__(self, db: Database | None = None, config: VertexicaConfig | None = None) -> None:
        self.db = db if db is not None else Database()
        self.config = (config or VertexicaConfig()).validated()
        self.storage = GraphStorage(self.db)
        register_coordinator(self.db)

    # ------------------------------------------------------------------
    # Graph loading
    # ------------------------------------------------------------------
    def load_graph(
        self,
        name: str,
        src: Sequence[int] | np.ndarray,
        dst: Sequence[int] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
        num_vertices: int | None = None,
        symmetrize: bool = False,
    ) -> GraphHandle:
        """Load an edge list into relational tables.

        Args:
            name: graph name (prefix of its tables).
            src, dst: edge endpoint arrays.
            weights: optional edge weights (default 1.0).
            num_vertices: ensure ids ``0..num_vertices-1`` all exist even
                if isolated.
            symmetrize: also insert every reverse edge — required by
                algorithms that treat the graph as undirected (connected
                components, triangle counting on out-edges).
        """
        src_arr = np.asarray(src, dtype=np.int64)
        dst_arr = np.asarray(dst, dtype=np.int64)
        if weights is None:
            weight_arr = np.ones(len(src_arr), dtype=np.float64)
        else:
            weight_arr = np.asarray(weights, dtype=np.float64)
        if symmetrize:
            src_arr, dst_arr, weight_arr = _symmetrized(src_arr, dst_arr, weight_arr)
        return self.storage.load_graph(
            name, src_arr, dst_arr, weight_arr, num_vertices=num_vertices
        )

    def graph(self, name: str) -> GraphHandle:
        """Re-attach to a loaded graph by name."""
        return self.storage.handle(name)

    # ------------------------------------------------------------------
    # Running programs
    # ------------------------------------------------------------------
    def run(
        self,
        graph: GraphHandle | str,
        program: VertexProgram,
        **overrides: Any,
    ) -> VertexicaResult:
        """Run a vertex program via the coordinator stored procedure.

        Keyword overrides are applied on top of this instance's config,
        e.g. ``vx.run(g, prog, n_partitions=16, input_strategy="join")``.
        """
        handle = self.graph(graph) if isinstance(graph, str) else graph
        config = self.config.with_overrides(**overrides) if overrides else self.config
        stats: RunStats = self.db.call("vertexica_run", handle, program, config)
        values = self.storage.read_values(handle, program)
        return VertexicaResult(values=values, stats=stats)

    # ------------------------------------------------------------------
    # Relational access (§3.4: pre-/post-processing in the same system)
    # ------------------------------------------------------------------
    def sql(self, statement: str, params: Sequence[Any] | None = None) -> Result:
        """Run arbitrary SQL against the shared database."""
        return self.db.execute(statement, params)


def _symmetrized(
    src: np.ndarray, dst: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Edge list plus its reverse, with exact duplicates removed."""
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    all_w = np.concatenate([weights, weights])
    # Dedup on (src, dst); keep the first weight.
    width = max(int(all_dst.max(initial=0)) + 1, 1)
    key = all_src * width + all_dst
    _, first = np.unique(key, return_index=True)
    first.sort()
    return all_src[first], all_dst[first], all_w[first]
