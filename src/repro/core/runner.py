"""The user-facing Vertexica facade.

Bundles a :class:`~repro.engine.database.Database`, the graph storage
layer, and the coordinator stored procedure behind the three calls an
analyst needs::

    vx = Vertexica()
    graph = vx.load_graph("twitter", src=..., dst=...)
    result = vx.run(graph, PageRankProgram(iterations=10))
    result.values          # {vertex_id: rank}
    result.stats.summary() # timings per superstep

The database stays fully accessible (``vx.sql(...)``) so graph runs can be
freely mixed with relational pre-/post-processing — the paper's §3.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core import faults
from repro.core.config import VertexicaConfig
from repro.core.coordinator import register_coordinator
from repro.core.metrics import RunStats
from repro.core.program import VertexProgram
from repro.core.storage import GraphHandle, GraphStorage
from repro.engine.database import Database, Result
from repro.engine.persistence import read_checkpoint_metadata
from repro.engine.sql.ast import (
    ConnectClause,
    CreateGraphViewStatement,
    DropGraphViewStatement,
    EdgeClause,
    RefreshGraphViewStatement,
)
from repro.errors import GraphViewError
from repro.graphview.catalog import MANIFEST_KEY, handle_manifest, view_from_dict
from repro.graphview.compiler import render_expression
from repro.graphview.lowering import ExtractionOptions, options_for_config
from repro.graphview.maintenance import involved_tables
from repro.graphview.spec import CoEdgeSpec, EdgeSpec, EdgeSource, GraphView, NodeSpec
from repro.graphview.view import DEFAULT_DELTA_THRESHOLD, GraphViewHandle

__all__ = ["Vertexica", "VertexicaResult"]


@dataclass
class VertexicaResult:
    """Output of one vertex-program run."""

    values: dict[int, Any]
    stats: RunStats

    def top(self, k: int, reverse: bool = True) -> list[tuple[int, Any]]:
        """The ``k`` vertices with the largest (or smallest) values,
        ties broken by ascending vertex id for determinism.

        Works for any orderable value type (negating the value would
        raise ``TypeError`` for e.g. label-propagation string labels), so
        the value sort relies on stable two-pass sorting instead.
        """
        items = [(vid, value) for vid, value in self.values.items() if value is not None]
        items.sort(key=lambda pair: pair[0])
        items.sort(key=lambda pair: pair[1], reverse=reverse)
        return items[:k]


class Vertexica:
    """Vertex-centric graph analytics on top of the relational engine."""

    def __init__(self, db: Database | None = None, config: VertexicaConfig | None = None) -> None:
        self.db = db if db is not None else Database()
        self.config = (config or VertexicaConfig()).validated()
        self.storage = GraphStorage(self.db)
        self._graph_views: dict[str, GraphViewHandle] = {}
        register_coordinator(self.db)
        # SQL surface for graph views: the engine parses CREATE/DROP GRAPH
        # VIEW, this layer executes them.
        self.db.register_statement_handler(
            CreateGraphViewStatement, self._execute_create_graph_view
        )
        self.db.register_statement_handler(
            DropGraphViewStatement, self._execute_drop_graph_view
        )
        self.db.register_statement_handler(
            RefreshGraphViewStatement, self._execute_refresh_graph_view
        )

    # ------------------------------------------------------------------
    # Graph loading
    # ------------------------------------------------------------------
    def load_graph(
        self,
        name: str,
        src: Sequence[int] | np.ndarray,
        dst: Sequence[int] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
        num_vertices: int | None = None,
        symmetrize: bool = False,
    ) -> GraphHandle:
        """Load an edge list into relational tables.

        Args:
            name: graph name (prefix of its tables).
            src, dst: edge endpoint arrays.
            weights: optional edge weights (default 1.0).
            num_vertices: ensure ids ``0..num_vertices-1`` all exist even
                if isolated.
            symmetrize: also insert every reverse edge — required by
                algorithms that treat the graph as undirected (connected
                components, triangle counting on out-edges).
        """
        src_arr = np.asarray(src, dtype=np.int64)
        dst_arr = np.asarray(dst, dtype=np.int64)
        if weights is None:
            weight_arr = np.ones(len(src_arr), dtype=np.float64)
        else:
            weight_arr = np.asarray(weights, dtype=np.float64)
        if symmetrize:
            src_arr, dst_arr, weight_arr = _symmetrized(src_arr, dst_arr, weight_arr)
        return self.storage.load_graph(
            name, src_arr, dst_arr, weight_arr, num_vertices=num_vertices
        )

    def graph(self, name: str) -> GraphHandle:
        """Re-attach to a loaded graph by name."""
        return self.storage.handle(name)

    # ------------------------------------------------------------------
    # Graph views (declarative extraction from relational tables)
    # ------------------------------------------------------------------
    def create_graph_view(
        self,
        name: str,
        view: GraphView | None = None,
        *,
        vertices: NodeSpec | Sequence[NodeSpec] = (),
        edges: EdgeSource | Sequence[EdgeSource] = (),
        materialized: bool = True,
        replace: bool = False,
        delta_threshold: float = DEFAULT_DELTA_THRESHOLD,
        extraction: ExtractionOptions | None = None,
    ) -> GraphViewHandle:
        """Declare (and, when materialized, extract) a graph view.

        Pass either a pre-built :class:`~repro.graphview.GraphView` or the
        ``vertices`` / ``edges`` specs directly::

            vx.create_graph_view(
                "social",
                vertices=NodeSpec("users", key="id"),
                edges=[EdgeSpec("follows", src="follower_id", dst="followee_id"),
                       CoEdgeSpec("likes", member="user_id", via="post_id")],
            )

        Args:
            name: view name; materialized tables are ``{name}_edge`` /
                ``{name}_node`` (planner-visible, queryable via SQL).
            view: a pre-built declaration (mutually exclusive with
                ``vertices``/``edges``).
            vertices, edges: specs used to build the declaration inline.
            materialized: extract now and persist (call ``refresh()``
                after base-table DML); ``False`` re-extracts at every run.
            replace: allow redefining an existing view name.
            delta_threshold: largest base-table delta (as a fraction of
                its rows) the incremental refresh path will patch before
                falling back to a full re-extraction.
            extraction: how full extractions execute (executor, worker
                count, co-occurrence lowering mode); ``None`` inherits
                the run plane's ``executor`` / ``n_workers`` config.

        Raises:
            GraphViewError: invalid declaration, duplicate name, or a
                failing extraction query.
        """
        if view is None:
            view = GraphView(vertices=vertices, edges=edges, name=name)
        elif vertices or edges:
            raise GraphViewError("pass either a GraphView or vertices/edges, not both")
        displaced = self._graph_views.get(name)
        if displaced is not None:
            if not replace:
                raise GraphViewError(f"graph view {name!r} already exists")
            # Drop the old extraction so a materialized -> virtual redefine
            # cannot leave stale {name}_edge/{name}_node tables behind.
            displaced.drop()
        if extraction is None:
            extraction = options_for_config(self.config)
        handle = GraphViewHandle(
            self.db,
            self.storage,
            name,
            view,
            materialized=materialized,
            delta_threshold=delta_threshold,
            options=extraction,
        )
        if materialized:
            handle.refresh()
        self._graph_views[name] = handle
        if displaced is not None:
            # The redefinition may read different base tables; stop
            # capturing on any the displaced view alone was watching.
            self._release_unused_capture(displaced.view)
        return handle

    def graph_view(self, name: str) -> GraphViewHandle:
        """Look up a declared graph view by name.

        Raises:
            GraphViewError: unknown view name.
        """
        try:
            return self._graph_views[name]
        except KeyError:
            raise GraphViewError(f"graph view {name!r} is not defined") from None

    def drop_graph_view(self, name: str, if_exists: bool = False) -> None:
        """Remove a graph view and its extracted tables.

        Raises:
            GraphViewError: unknown view name (unless ``if_exists``).
        """
        handle = self._graph_views.pop(name, None)
        if handle is None:
            if if_exists:
                return
            raise GraphViewError(f"graph view {name!r} is not defined")
        handle.drop()
        self._release_unused_capture(handle.view)

    def _release_unused_capture(self, dropped_view: GraphView) -> None:
        """Disarm change capture on base tables no remaining materialized
        view derives from — a dropped view must not leave its tables
        paying capture copies (and retaining delta rows) forever."""
        still_needed: set[str] = set()
        for other in self._graph_views.values():
            if other.materialized:
                still_needed.update(involved_tables(other.view))
        for table in involved_tables(dropped_view):
            if table not in still_needed:
                self.db.release_capture(table)

    # -- SQL statement handlers ----------------------------------------
    def _execute_create_graph_view(
        self, db: Database, stmt: CreateGraphViewStatement
    ) -> Result:
        if stmt.if_not_exists and stmt.name in self._graph_views:
            return Result(row_count=0)
        view = GraphView(
            vertices=[
                NodeSpec(
                    table=clause.table,
                    key=clause.key,
                    where=_maybe_sql(clause.where),
                )
                for clause in stmt.nodes
            ],
            edges=[_edge_spec_from_clause(clause) for clause in stmt.edges],
            name=stmt.name,
        )
        handle = self.create_graph_view(
            stmt.name, view, materialized=stmt.materialized
        )
        extracted = handle.last_extraction
        return Result(row_count=extracted.num_edges if extracted else 0)

    def _execute_drop_graph_view(
        self, db: Database, stmt: DropGraphViewStatement
    ) -> Result:
        self.drop_graph_view(stmt.name, if_exists=stmt.if_exists)
        return Result(row_count=0)

    def _execute_refresh_graph_view(
        self, db: Database, stmt: RefreshGraphViewStatement
    ) -> Result:
        handle = self.graph_view(stmt.name)
        incremental = {None: None, "full": False, "incremental": True}[stmt.mode]
        refreshed = handle.refresh(incremental=incremental)
        return Result(row_count=refreshed.num_edges)

    # ------------------------------------------------------------------
    # Durability: the view catalog rides the engine checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self, directory: str) -> None:
        """Persist the database *and* the graph-view catalog.

        Tables (including materialized ``{name}_edge`` / ``{name}_node``
        extractions) go through the engine's checkpoint; view declarations,
        freshness modes, and last-refreshed base-table versions ride in the
        manifest metadata (see :mod:`repro.graphview.catalog`).
        """
        manifest = [handle_manifest(h) for _, h in sorted(self._graph_views.items())]
        self.db.checkpoint(directory, metadata={MANIFEST_KEY: manifest})

    @classmethod
    def restore(
        cls, directory: str, config: VertexicaConfig | None = None
    ) -> "Vertexica":
        """Rebuild a Vertexica — database plus graph-view registry — from
        a :meth:`checkpoint` directory.

        Materialized views re-attach to their persisted extraction tables
        without re-extracting; virtual views come back as declarations.
        ``refresh()`` works immediately; the first one takes the full path
        (change capture does not survive a restart) and re-seeds the
        incremental state.
        """
        vx = cls(db=Database.restore(directory), config=config)
        for entry in read_checkpoint_metadata(directory).get(MANIFEST_KEY, []):
            handle = GraphViewHandle(
                vx.db,
                vx.storage,
                entry["name"],
                view_from_dict(entry["view"]),
                materialized=entry.get("materialized", True),
                delta_threshold=entry.get("delta_threshold", DEFAULT_DELTA_THRESHOLD),
            )
            if handle.materialized:
                handle.attach_existing(entry.get("base_table_versions"))
            vx._graph_views[handle.name] = handle
        return vx

    # ------------------------------------------------------------------
    # Running programs
    # ------------------------------------------------------------------
    def run(
        self,
        graph: GraphHandle | GraphViewHandle | GraphView | str,
        program: VertexProgram,
        **overrides: Any,
    ) -> VertexicaResult:
        """Run a vertex program via the coordinator stored procedure.

        Accepts a loaded :class:`GraphHandle`, a graph or view name, a
        :class:`~repro.graphview.GraphViewHandle` (virtual views re-extract
        from their base tables right here), or a bare
        :class:`~repro.graphview.GraphView` declaration (extracted
        on the fly under its ``name``, default ``"adhoc_view"``).

        Keyword overrides are applied on top of this instance's config,
        e.g. ``vx.run(g, prog, n_partitions=16, input_strategy="join")``.
        ``executor="processes"`` (with ``data_plane="shards"`` and
        ``n_workers=N``) runs shard tasks in spawned worker processes over
        shared-memory vertex state — bit-identical to serial execution.
        Fault tolerance rides the same kwargs: ``vx.run(g, prog,
        checkpoint_every=4, checkpoint_dir=d)`` snapshots durable run
        state every 4 supersteps, and ``vx.run(g, prog, resume=True,
        checkpoint_dir=d)`` continues a killed run from its last
        checkpoint, bit-identical to an uninterrupted run (see
        :class:`~repro.core.config.VertexicaConfig`).
        """
        config = self.config.with_overrides(**overrides) if overrides else self.config
        handle = self._resolve_graph(graph, config)
        stats: RunStats = self.db.call("vertexica_run", handle, program, config)
        values = self.storage.read_values(handle, program)
        return VertexicaResult(values=values, stats=stats)

    def _resolve_graph(
        self,
        graph: GraphHandle | GraphViewHandle | GraphView | str,
        config: VertexicaConfig | None = None,
    ) -> GraphHandle:
        """Turn any accepted graph reference into a loaded handle.

        View extraction is a real query over base tables — the run's
        other I/O seam besides shard tasks — so transient faults there
        are retried with the same bounded-backoff policy."""
        config = config or self.config

        def resolving(handle: GraphViewHandle) -> GraphHandle:
            return faults.retry_call(
                handle.resolve,
                retries=config.task_retries,
                backoff=config.retry_backoff,
            )

        if isinstance(graph, GraphViewHandle):
            return resolving(graph)
        if isinstance(graph, GraphView):
            name = graph.name or "adhoc_view"
            return resolving(
                GraphViewHandle(self.db, self.storage, name, graph, materialized=False)
            )
        if isinstance(graph, str):
            if graph in self._graph_views:
                return resolving(self._graph_views[graph])
            return self.graph(graph)
        return graph

    # ------------------------------------------------------------------
    # Relational access (§3.4: pre-/post-processing in the same system)
    # ------------------------------------------------------------------
    def sql(self, statement: str, params: Sequence[Any] | None = None) -> Result:
        """Run arbitrary SQL against the shared database."""
        return self.db.execute(statement, params)

    # ------------------------------------------------------------------
    # Serving (concurrent read tier over this instance)
    # ------------------------------------------------------------------
    def serve(self, **options: Any) -> "Any":
        """Open a concurrent serving tier over this instance.

        Returns a :class:`~repro.serving.VertexicaService`: an asyncio
        front door with admission control, snapshot-isolated reads, and
        a version-keyed result cache — this facade stays the writer::

            async with vx.serve(max_concurrency=8) as service:
                async with service.session() as s:
                    result = await s.run("g", PageRankProgram())

        Keyword ``options`` pass through to
        :class:`~repro.serving.VertexicaService` (``max_concurrency``,
        ``max_queue``, ``cache_bytes``, ``session_inflight``).
        """
        from repro.serving.service import VertexicaService  # lazy: avoid cycle

        return VertexicaService(self, **options)


def _maybe_sql(expr: Any) -> str | None:
    """Render an optional parsed expression back to SQL text."""
    return None if expr is None else render_expression(expr)


def _edge_spec_from_clause(clause: "EdgeClause | ConnectClause") -> EdgeSource:
    """Convert one parsed EDGES clause into its DSL spec."""
    if isinstance(clause, ConnectClause):
        return CoEdgeSpec(
            table=clause.table,
            member=clause.member,
            via=clause.via,
            weight=_maybe_sql(clause.weight),
            where=_maybe_sql(clause.where),
        )
    return EdgeSpec(
        table=clause.table,
        src=clause.src,
        dst=clause.dst,
        weight=_maybe_sql(clause.weight),
        where=_maybe_sql(clause.where),
        directed=clause.directed,
    )


def _symmetrized(
    src: np.ndarray, dst: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Edge list plus its reverse, with exact duplicates removed."""
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    all_w = np.concatenate([weights, weights])
    # Dedup on (src, dst); keep the first weight.
    width = max(int(all_dst.max(initial=0)) + 1, 1)
    key = all_src * width + all_dst
    _, first = np.unique(key, return_index=True)
    first.sort()
    return all_src[first], all_dst[first], all_w[first]
