"""Vertex program base classes and combiner declarations.

A :class:`VertexProgram` is the user-supplied "vertex compute function"
from the paper.  Subclasses implement :meth:`compute`; the same program
object runs unchanged on Vertexica *and* on the Giraph-like baseline,
which is what makes the Figure 2 comparison apples-to-apples.

:class:`BatchVertexProgram` is the opt-in vectorized variant: programs
that can express one superstep as whole-array operations implement
:meth:`~BatchVertexProgram.compute_batch` against a :class:`VertexBatch`
(dense numpy views over every active vertex in a partition) and the
worker skips per-vertex Python entirely.  ``compute`` must still be
implemented — it is the semantic reference, the fallback under
``compute_strategy="scalar"``, and what the Giraph baseline runs.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.api import Vertex
from repro.core.codecs import FLOAT_CODEC, ValueCodec
from repro.errors import ProgramError

__all__ = [
    "VertexProgram",
    "BatchVertexProgram",
    "VertexBatch",
    "supports_batch",
    "Combiner",
    "COMBINERS",
]

#: SQL-pushable combiner names; ``None`` disables combining.
COMBINERS = ("SUM", "MIN", "MAX")

Combiner = str


class VertexProgram:
    """Base class for message-passing vertex programs.

    Class attributes (override per program):
        vertex_codec: codec for the vertex value column.
        message_codec: codec for the message value column.
        combiner: ``"SUM"``, ``"MIN"``, ``"MAX"``, or ``None``.  Combiners
            are associative/commutative reductions over messages to the
            same destination; Vertexica pushes them into a SQL GROUP BY
            between supersteps, the Giraph baseline applies them at the
            sending worker — both mirror the real systems.
        aggregators: Pregel-style global aggregators: ``{name: op}`` with
            op in SUM/MIN/MAX.  Vertices contribute via
            ``vertex.aggregate(name, value)``; the reduced value is global
            state available to every vertex the next superstep via
            ``vertex.aggregated(name)``.  In Vertexica, partials flow
            through the worker-output staging table and are reduced by a
            SQL GROUP BY — global state through the relational engine.
        max_supersteps: hard cap on supersteps (``None`` = run to
            quiescence: every vertex halted and no messages in flight).
    """

    vertex_codec: ValueCodec = FLOAT_CODEC
    message_codec: ValueCodec = FLOAT_CODEC
    combiner: Combiner | None = None
    aggregators: dict[str, str] = {}
    max_supersteps: int | None = None

    # ------------------------------------------------------------------
    def initial_value(self, vertex_id: int, out_degree: int, num_vertices: int) -> Any:
        """Value a vertex starts with before superstep 0.

        Default: ``None`` (NULL in the vertex table).
        """
        return None

    def compute(self, vertex: Vertex) -> None:
        """The vertex compute function, run once per superstep for every
        active vertex.  Must be implemented by subclasses."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict[str, Any]:
        """JSON-serializable run state beyond the vertex/message tables,
        persisted in the run-checkpoint manifest (see
        :mod:`repro.core.recovery`).

        Constructor parameters are already covered by the checkpoint's
        program fingerprint; override this only for state that *mutates
        during a run* — e.g. an RNG consumed across supersteps — and
        rewind it in :meth:`restore_state`.  Default: nothing.
        """
        return {}

    def restore_state(self, state: dict[str, Any]) -> None:
        """Rewind :meth:`checkpoint_state` output when a run resumes or
        rolls back to a checkpoint.  Default: nothing."""

    # ------------------------------------------------------------------
    def combine(self, values: Sequence[Any]) -> Any:
        """Reduce messages headed to one destination per ``combiner``.

        Scalar message codecs reduce with plain Python ``sum``/``min``/
        ``max`` (the arithmetic the scalar compute path uses).  Vector
        message codecs reduce *element-wise* with the same float64
        ``reduceat`` call the data planes' combiners run, so a baseline
        that combines through this method stays bit-compatible with them.

        Raises:
            ProgramError: when called with no combiner declared.
        """
        if self.combiner not in COMBINERS:
            raise ProgramError(
                f"program {type(self).__name__} declares no combiner"
            )
        if self.message_codec.is_vector:
            block = np.asarray(list(values), dtype=np.float64)
            ufunc = {"SUM": np.add, "MIN": np.minimum, "MAX": np.maximum}[
                self.combiner
            ]
            return ufunc.reduceat(block, [0], axis=0)[0].tolist()
        if self.combiner == "SUM":
            return sum(values)
        if self.combiner == "MIN":
            return min(values)
        return max(values)

    def validate(self) -> None:
        """Sanity-check declarations before a run.

        Raises:
            ProgramError: on an unknown combiner name or a combiner with a
                non-numeric message codec (SQL can only push down numeric
                reductions; vector codecs qualify — they store ``k`` FLOAT
                columns, reduced element-wise).
        """
        if self.combiner is not None:
            if self.combiner not in COMBINERS:
                raise ProgramError(
                    f"unknown combiner {self.combiner!r}; expected one of {COMBINERS}"
                )
            if not self.message_codec.sql_type.is_numeric:
                width = self.message_codec.width
                shape = (
                    f"width-{width} vector codec" if width else "scalar codec"
                )
                raise ProgramError(
                    f"combiner {self.combiner!r} requires a numeric message "
                    f"codec, but {self.message_codec.name!r} is a {shape} "
                    f"over {self.message_codec.sql_type.name} columns; "
                    "use a numeric scalar codec or vector_codec(k), or set "
                    "combiner = None"
                )
        for name, op in self.aggregators.items():
            if op not in COMBINERS:
                raise ProgramError(
                    f"aggregator {name!r} has unknown op {op!r}; "
                    f"expected one of {COMBINERS}"
                )
        if self.max_supersteps is not None and self.max_supersteps < 1:
            raise ProgramError("max_supersteps must be >= 1")

    @staticmethod
    def reduce_aggregate(op: str, values: Sequence[float]) -> float:
        """Reduce aggregator partials with the declared op."""
        if op == "SUM":
            return float(sum(values))
        if op == "MIN":
            return float(min(values))
        return float(max(values))

    @property
    def name(self) -> str:
        """Human-readable program name for logs and metrics."""
        return type(self).__name__


class VertexBatch:
    """Dense view of one partition's *active* vertices for batch compute.

    All input arrays are aligned: position ``i`` everywhere refers to the
    same vertex.  Out-edges and incoming messages are CSR-style — vertex
    ``i`` owns ``edge_targets[edge_indptr[i]:edge_indptr[i+1]]`` and
    ``message_values[msg_indptr[i]:msg_indptr[i+1]]`` (with
    ``message_senders`` aligned to the same extents — the message table's
    ``src`` column).  Vector codecs make ``values`` / ``message_values``
    dense 2-D ``(n, k)`` float64 arrays; the built-in segment reductions
    (:meth:`sum_messages` & co) handle both shapes — 2-D message blocks
    reduce element-wise per column with the same float64 ``reduceat``
    arithmetic the data planes' combiners use, so combined and uncombined
    runs of an element-wise-reducible program stay bit-identical.  The
    standalone :func:`repro.core.worker.segment_sum` family exposes the
    same kernels over arbitrary (values, indptr) pairs.

    Mutations are buffered exactly like on :class:`~repro.core.api.Vertex`:
    the worker collects them after :meth:`BatchVertexProgram.compute_batch`
    returns, preserving the synchronous superstep barrier.  One semantic
    caveat versus the scalar path: messages are staged one *send call* at
    a time (all vertices' messages from the first call, then the second,
    ...), so a destination receiving several messages from the same sender
    may observe them in a different relative order than under the scalar
    path.  Programs whose message handling is order-sensitive should not
    implement the batch path.
    """

    __slots__ = (
        "ids",
        "was_halted",
        "superstep",
        "num_vertices",
        "edge_indptr",
        "edge_targets",
        "edge_weights",
        "msg_indptr",
        "message_values",
        "message_valid",
        "message_senders",
        "values_valid",
        "_values",
        "_aggregated",
        "_out_degrees",
        "_msg_counts",
        "_halt",
        "_msg_blocks",
        "_agg_blocks",
    )

    def __init__(
        self,
        ids: np.ndarray,
        values: np.ndarray,
        values_valid: np.ndarray,
        was_halted: np.ndarray,
        edge_indptr: np.ndarray,
        edge_targets: np.ndarray,
        edge_weights: np.ndarray,
        msg_indptr: np.ndarray,
        message_values: np.ndarray,
        message_valid: np.ndarray,
        superstep: int,
        num_vertices: int,
        aggregated: dict[str, float] | None = None,
        message_senders: np.ndarray | None = None,
    ) -> None:
        self.ids = ids
        self._values = values
        self.values_valid = values_valid
        self.was_halted = was_halted
        self.edge_indptr = edge_indptr
        self.edge_targets = edge_targets
        self.edge_weights = edge_weights
        self.msg_indptr = msg_indptr
        self.message_values = message_values
        self.message_valid = message_valid
        self.message_senders = (
            message_senders
            if message_senders is not None
            else np.empty(0, dtype=np.int64)
        )
        self.superstep = superstep
        self.num_vertices = num_vertices
        self._aggregated = aggregated or {}
        self._out_degrees: np.ndarray | None = None
        self._msg_counts: np.ndarray | None = None
        self._halt = np.zeros(len(ids), dtype=bool)
        self._msg_blocks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._agg_blocks: list[tuple[str, np.ndarray]] = []

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of active vertices in this batch."""
        return len(self.ids)

    @property
    def values(self) -> np.ndarray:
        """Current vertex values (reflects :meth:`set_values`)."""
        return self._values

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degree per vertex (``np.diff`` of the edge extents)."""
        if self._out_degrees is None:
            self._out_degrees = np.diff(self.edge_indptr)
        return self._out_degrees

    @property
    def message_counts(self) -> np.ndarray:
        """Incoming-message count per vertex."""
        if self._msg_counts is None:
            self._msg_counts = np.diff(self.msg_indptr)
        return self._msg_counts

    def aggregated(self, name: str, default: float | None = None) -> float | None:
        """The previous superstep's reduced value of a global aggregator."""
        return self._aggregated.get(name, default)

    # ------------------------------------------------------------------
    # Segment reductions over incoming messages
    # ------------------------------------------------------------------
    def sum_messages(self) -> np.ndarray:
        """Per-vertex sum of incoming messages (0.0 where none).

        Scalar messages accumulate strictly in delivery order
        (``np.bincount``), so the result is bit-identical to the scalar
        path's ``sum(messages)``.  Vector (2-D) messages reduce with
        ``np.add.reduceat`` over float64 — the exact arithmetic of the
        data planes' SUM combiner, so combined and uncombined runs agree
        bitwise.  NULL messages are excluded (a scalar ``sum`` over
        ``None`` would raise; programs needing NULL semantics must
        inspect ``message_valid`` themselves).
        """
        values = self.message_values
        if values.ndim == 2:
            weights = values.astype(np.float64, copy=False)
            if not bool(self.message_valid.all()):
                weights = np.where(self.message_valid[:, None], weights, 0.0)
            out = np.zeros((self.size, values.shape[1]), dtype=np.float64)
            nonempty = np.flatnonzero(self.message_counts)
            if len(nonempty):
                out[nonempty] = np.add.reduceat(
                    weights, self.msg_indptr[:-1][nonempty], axis=0
                )
            return out
        counts = self.message_counts
        if len(values) == 0:
            return np.zeros(self.size, dtype=np.float64)
        segments = np.repeat(np.arange(self.size), counts)
        weights = values.astype(np.float64, copy=False)
        if not bool(self.message_valid.all()):
            weights = np.where(self.message_valid, weights, 0.0)
        return np.bincount(segments, weights=weights, minlength=self.size)

    def min_messages(self, default: Any = None) -> np.ndarray:
        """Per-vertex (element-wise for vectors) minimum of incoming
        messages (``default`` where none; NULL messages are excluded)."""
        return self._segment_reduce(np.minimum, default, _dtype_max)

    def max_messages(self, default: Any = None) -> np.ndarray:
        """Per-vertex (element-wise for vectors) maximum of incoming
        messages (``default`` where none; NULL messages are excluded)."""
        return self._segment_reduce(np.maximum, default, _dtype_min)

    def _segment_reduce(self, ufunc: np.ufunc, default: Any, fallback: Any) -> np.ndarray:
        values = self.message_values
        if default is None:
            default = fallback(values.dtype)
        two_d = values.ndim == 2
        if not bool(self.message_valid.all()):
            # NULL storage fillers must not win the reduction: replace
            # them with the reduction's identity (the default fill).
            mask = self.message_valid[:, None] if two_d else self.message_valid
            values = np.where(mask, values, default)
        shape = (self.size, values.shape[1]) if two_d else self.size
        out = np.full(shape, default, dtype=values.dtype)
        nonempty = np.flatnonzero(self.message_counts)
        if len(nonempty):
            # The message array is compact, so the start of each nonempty
            # segment doubles as the stop of the previous one — exactly the
            # index vector ``reduceat`` wants.
            out[nonempty] = ufunc.reduceat(
                values, self.msg_indptr[:-1][nonempty], axis=0
            )
        return out

    # ------------------------------------------------------------------
    # Writes (buffered)
    # ------------------------------------------------------------------
    def set_values(self, values: np.ndarray | Sequence[Any], mask: np.ndarray | None = None) -> None:
        """Set vertex values (full-length array; ``mask`` limits which
        positions change), visible from the next superstep on."""
        arr = np.asarray(values)
        if mask is None:
            self._values = arr
            self.values_valid = np.ones(self.size, dtype=bool)
        else:
            updated = self._values.copy()
            updated[mask] = arr[mask]
            self._values = updated
            self.values_valid = self.values_valid | mask

    def vote_to_halt(self, mask: np.ndarray | None = None) -> None:
        """Vote to halt every vertex (or the masked subset)."""
        if mask is None:
            self._halt[:] = True
        else:
            self._halt |= mask

    def send_to_all_neighbors(
        self, per_vertex: np.ndarray | Sequence[Any], mask: np.ndarray | None = None
    ) -> None:
        """Queue ``per_vertex[i]`` along every out-edge of vertex ``i``
        (``mask`` selects which vertices send)."""
        degrees = self.out_degrees
        values = np.asarray(per_vertex)
        if mask is None:
            payload = np.repeat(values, degrees, axis=0)
            targets = self.edge_targets
            senders = np.repeat(self.ids, degrees)
        else:
            counts = np.where(mask, degrees, 0)
            payload = np.repeat(values, counts, axis=0)
            edge_mask = np.repeat(mask, degrees)
            targets = self.edge_targets[edge_mask]
            senders = np.repeat(self.ids, counts)
        if len(targets):
            self._msg_blocks.append((senders, targets, payload))

    def send_along_edges(
        self, per_edge: np.ndarray | Sequence[Any], mask: np.ndarray | None = None
    ) -> None:
        """Queue one message per out-edge with edge-aligned payloads
        (``mask`` is per-vertex and selects whose edges send)."""
        values = np.asarray(per_edge)
        if mask is None:
            targets = self.edge_targets
            senders = np.repeat(self.ids, self.out_degrees)
        else:
            edge_mask = np.repeat(mask, self.out_degrees)
            values = values[edge_mask]
            targets = self.edge_targets[edge_mask]
            senders = np.repeat(self.ids, np.where(mask, self.out_degrees, 0))
        if len(targets):
            self._msg_blocks.append((senders, targets, values))

    def send(
        self,
        senders: np.ndarray | Sequence[int],
        targets: np.ndarray | Sequence[int],
        values: np.ndarray | Sequence[Any],
    ) -> None:
        """Queue arbitrary messages (parallel sender/target/value arrays)."""
        senders = np.asarray(senders, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        values = np.asarray(values)
        if not (len(senders) == len(targets) == len(values)):
            raise ProgramError("send() requires equally long sender/target/value arrays")
        if len(targets):
            self._msg_blocks.append((senders, targets, values))

    def aggregate(
        self, name: str, values: np.ndarray | Sequence[float], mask: np.ndarray | None = None
    ) -> None:
        """Contribute per-vertex values to a global aggregator."""
        arr = np.asarray(values, dtype=np.float64)
        if mask is not None:
            arr = arr[mask]
        if len(arr):
            self._agg_blocks.append((name, arr))

    # ------------------------------------------------------------------
    # Worker-side collection
    # ------------------------------------------------------------------
    def collect_values(self) -> tuple[np.ndarray, np.ndarray]:
        """(values, valid) to stage — carry-through when never set."""
        return self._values, self.values_valid

    def collect_halt_votes(self) -> np.ndarray:
        """Per-vertex halt votes."""
        return self._halt

    def collect_message_blocks(self) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Staged (senders, targets, values) blocks in send order."""
        return self._msg_blocks

    def collect_aggregates(self) -> list[tuple[str, np.ndarray]]:
        """Aggregator contributions as (name, values) blocks."""
        return self._agg_blocks


def _dtype_max(dtype: np.dtype) -> Any:
    if np.issubdtype(dtype, np.floating):
        return np.inf
    return np.iinfo(dtype).max


def _dtype_min(dtype: np.dtype) -> Any:
    if np.issubdtype(dtype, np.floating):
        return -np.inf
    return np.iinfo(dtype).min


class BatchVertexProgram(VertexProgram):
    """A vertex program that can run one superstep as array operations.

    Subclasses implement *both* :meth:`VertexProgram.compute` (the scalar
    reference, also used by the Giraph baseline and the
    ``compute_strategy="scalar"`` ablation) and :meth:`compute_batch`.
    The two must be semantically identical; the parity test suite holds
    every bundled program to bit-identical results.
    """

    def compute_batch(self, batch: VertexBatch) -> None:
        """Vectorized superstep over every active vertex in ``batch``.
        Must be implemented by subclasses."""
        raise NotImplementedError


def supports_batch(program: VertexProgram) -> bool:
    """True when ``program`` opts into the vectorized compute path."""
    return isinstance(program, BatchVertexProgram)
