"""Vertex program base class and combiner declarations.

A :class:`VertexProgram` is the user-supplied "vertex compute function"
from the paper.  Subclasses implement :meth:`compute`; the same program
object runs unchanged on Vertexica *and* on the Giraph-like baseline,
which is what makes the Figure 2 comparison apples-to-apples.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.api import Vertex
from repro.core.codecs import FLOAT_CODEC, ValueCodec
from repro.errors import ProgramError

__all__ = ["VertexProgram", "Combiner", "COMBINERS"]

#: SQL-pushable combiner names; ``None`` disables combining.
COMBINERS = ("SUM", "MIN", "MAX")

Combiner = str


class VertexProgram:
    """Base class for message-passing vertex programs.

    Class attributes (override per program):
        vertex_codec: codec for the vertex value column.
        message_codec: codec for the message value column.
        combiner: ``"SUM"``, ``"MIN"``, ``"MAX"``, or ``None``.  Combiners
            are associative/commutative reductions over messages to the
            same destination; Vertexica pushes them into a SQL GROUP BY
            between supersteps, the Giraph baseline applies them at the
            sending worker — both mirror the real systems.
        aggregators: Pregel-style global aggregators: ``{name: op}`` with
            op in SUM/MIN/MAX.  Vertices contribute via
            ``vertex.aggregate(name, value)``; the reduced value is global
            state available to every vertex the next superstep via
            ``vertex.aggregated(name)``.  In Vertexica, partials flow
            through the worker-output staging table and are reduced by a
            SQL GROUP BY — global state through the relational engine.
        max_supersteps: hard cap on supersteps (``None`` = run to
            quiescence: every vertex halted and no messages in flight).
    """

    vertex_codec: ValueCodec = FLOAT_CODEC
    message_codec: ValueCodec = FLOAT_CODEC
    combiner: Combiner | None = None
    aggregators: dict[str, str] = {}
    max_supersteps: int | None = None

    # ------------------------------------------------------------------
    def initial_value(self, vertex_id: int, out_degree: int, num_vertices: int) -> Any:
        """Value a vertex starts with before superstep 0.

        Default: ``None`` (NULL in the vertex table).
        """
        return None

    def compute(self, vertex: Vertex) -> None:
        """The vertex compute function, run once per superstep for every
        active vertex.  Must be implemented by subclasses."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def combine(self, values: Sequence[Any]) -> Any:
        """Reduce messages headed to one destination per ``combiner``.

        Raises:
            ProgramError: when called with no combiner declared.
        """
        if self.combiner == "SUM":
            return sum(values)
        if self.combiner == "MIN":
            return min(values)
        if self.combiner == "MAX":
            return max(values)
        raise ProgramError(f"program {type(self).__name__} declares no combiner")

    def validate(self) -> None:
        """Sanity-check declarations before a run.

        Raises:
            ProgramError: on an unknown combiner name or a combiner with a
                non-numeric message codec (SQL can only push down numeric
                reductions).
        """
        if self.combiner is not None:
            if self.combiner not in COMBINERS:
                raise ProgramError(
                    f"unknown combiner {self.combiner!r}; expected one of {COMBINERS}"
                )
            if not self.message_codec.sql_type.is_numeric:
                raise ProgramError(
                    "combiners require a numeric message codec "
                    f"(got {self.message_codec.name})"
                )
        for name, op in self.aggregators.items():
            if op not in COMBINERS:
                raise ProgramError(
                    f"aggregator {name!r} has unknown op {op!r}; "
                    f"expected one of {COMBINERS}"
                )
        if self.max_supersteps is not None and self.max_supersteps < 1:
            raise ProgramError("max_supersteps must be >= 1")

    @staticmethod
    def reduce_aggregate(op: str, values: Sequence[float]) -> float:
        """Reduce aggregator partials with the declared op."""
        if op == "SUM":
            return float(sum(values))
        if op == "MIN":
            return float(min(values))
        return float(max(values))

    @property
    def name(self) -> str:
        """Human-readable program name for logs and metrics."""
        return type(self).__name__
