"""The coordinator: the stored procedure driving supersteps.

Per Figure 1 / §2.2 of the paper, the coordinator (a) builds the worker
input relation (union or join strategy), (b) fans it out to parallel
workers as a partitioned transform UDF, (c) applies the staged vertex
updates and messages (choosing the update or replace path), and (d) loops
"as long as there is any message for the next superstep" — extended, as in
Pregel, to also stop only when every vertex has voted to halt.

Two data planes implement that loop (``config.data_plane``):

* ``"sql"`` — the paper's architecture verbatim: every superstep runs the
  union/join input SQL, hash-partitions and sorts it inside
  ``TransformOp``, stages worker output into a table, and applies it with
  SQL (:meth:`Coordinator._run_sql`).
* ``"shards"`` — the graph is partitioned **once** at run setup into
  resident vid-hash shards; supersteps run shard-local compute and route
  messages between shards in-plane, touching the SQL tables only per the
  ``superstep_sync`` policy (:meth:`Coordinator._run_shards`, state in
  :mod:`repro.core.shards`).  Bit-identical to the SQL plane.

Either way, ``n_workers > 1`` executes partition/shard tasks on one
thread pool held for the whole run.

Fault tolerance (PR 6) wraps the superstep loops of both planes in the
Giraph contract: with ``checkpoint_every=N`` the run snapshots its
durable state every N completed supersteps (:mod:`repro.core.recovery`),
transient faults roll the tables back to the last checkpoint and replay
(bounded by ``task_retries``), deterministic faults fail fast *after*
the rollback leaves the tables consistent, and ``resume=True`` continues
a killed run from its last checkpoint — bit-identical to an
uninterrupted run on either plane.
"""

from __future__ import annotations

import time
from contextlib import nullcontext

from repro.core import faults
from repro.core.config import VertexicaConfig
from repro.core.metrics import RunStats, SuperstepStats
from repro.core.program import VertexProgram, supports_batch
from repro.core.recovery import CheckpointPolicy, RunRecovery
from repro.core.shards import ShardedDataPlane
from repro.core.storage import GraphHandle, GraphStorage
from repro.core.worker import EdgeCache, VertexWorker
from repro.engine.database import Database
from repro.engine.parallel import (
    PartitionExecutor,
    ProcessExecutor,
    make_thread_executor,
    serial_executor,
)
from repro.errors import ProgramError, VertexicaError

__all__ = ["Coordinator", "register_coordinator", "SUPERSTEP_SAFETY_LIMIT"]

#: Hard cap when neither the program nor the config bounds supersteps;
#: prevents a buggy never-halting program from spinning forever.
SUPERSTEP_SAFETY_LIMIT = 10_000


class Coordinator:
    """Drives one vertex-program run over one graph."""

    def __init__(self, db: Database, config: VertexicaConfig) -> None:
        self.db = db
        self.config = config.validated()
        self.storage = GraphStorage(db)

    # ------------------------------------------------------------------
    def run(self, graph: GraphHandle, program: VertexProgram) -> RunStats:
        """Execute the program to quiescence (or the superstep cap).

        Returns:
            Per-superstep and total metrics.

        Raises:
            VertexicaError: if the safety superstep limit is hit.
        """
        program.validate()
        config = self.config
        if config.data_plane != "shards" and config.input_strategy == "join":
            # Fail before setup_run: the three-way join projects a single
            # ``value`` column per table, which vector codecs don't have —
            # without this check the mismatch surfaces deep inside decode.
            for role, codec in (
                ("vertex", program.vertex_codec),
                ("message", program.message_codec),
            ):
                if codec.is_vector:
                    raise ProgramError(
                        f"the join input format cannot carry vector codec "
                        f"payloads ({role} codec {codec.name!r}, width "
                        f"{codec.width}); use input_strategy='union' "
                        "(or data_plane='shards')"
                    )
        stats = RunStats(program=program.name, graph=graph.name)
        started = time.perf_counter()

        recovery = None
        if config.checkpoint_dir is not None:
            recovery = RunRecovery(
                self.storage,
                graph,
                program,
                config.checkpoint_dir,
                CheckpointPolicy(every=config.checkpoint_every),
            )
        # Resume decides *before* setup_run wipes the working tables:
        # load() only touches the checkpoint directory.
        restored = recovery.load() if (recovery is not None and config.resume) else None

        self.storage.setup_run(graph, program)
        start_superstep = 0
        aggregated: dict[str, float] = {}
        if restored is not None:
            recovery.restore(restored)
            aggregated = dict(restored.aggregated)
            start_superstep = restored.completed
            stats.recovered_supersteps += restored.completed
        elif recovery is not None and recovery.policy.enabled:
            # Baseline snapshot (0 completed supersteps): rollback and
            # resume have a floor even if the run dies in superstep 0.
            stats.checkpoint_seconds += recovery.write(0, aggregated)

        limit = config.max_supersteps or program.max_supersteps
        hard_cap = limit if limit is not None else SUPERSTEP_SAFETY_LIMIT
        use_batch = self._resolve_compute_path(program)
        # One pool for the whole run (closed on exit); a fresh pool per
        # superstep would put thread (or process) spawns on the hot loop.
        with self._make_executor() as executor:
            if config.data_plane == "shards":
                self._run_shards(
                    graph, program, stats, executor, limit, hard_cap, use_batch,
                    recovery, start_superstep, aggregated,
                )
            else:
                self._run_sql(
                    graph, program, stats, executor, limit, hard_cap, use_batch,
                    recovery, start_superstep, aggregated,
                )
        stats.total_seconds = time.perf_counter() - started
        return stats

    def _make_executor(self):
        """The run's partition/shard task executor as a context manager.

        ``"auto"`` keeps the historical behavior: serial for one worker,
        a thread pool otherwise.  ``"processes"`` builds a
        :class:`ProcessExecutor` — persistent spawn-context worker
        processes that the shard plane binds its shared-memory state to
        (see :meth:`ShardedDataPlane.bind_executor`); with one worker it
        never spawns and degrades to serial execution.
        """
        config = self.config
        choice = config.executor
        if choice == "auto":
            choice = "serial" if config.n_workers == 1 else "threads"
        if choice == "processes":
            return ProcessExecutor(config.n_workers)
        if choice == "threads" and config.n_workers > 1:
            return make_thread_executor(config.n_workers)
        return nullcontext(serial_executor)

    # ------------------------------------------------------------------
    # The SQL-staged plane (the paper's architecture verbatim)
    # ------------------------------------------------------------------
    def _run_sql(
        self,
        graph: GraphHandle,
        program: VertexProgram,
        stats: RunStats,
        executor: PartitionExecutor,
        limit: int | None,
        hard_cap: int,
        use_batch: bool,
        recovery: RunRecovery | None,
        start_superstep: int,
        aggregated: dict[str, float],
    ) -> None:
        config = self.config
        storage = self.storage
        transform_name = f"{graph.name}_worker"
        # The edge relation never changes during a run: under the union
        # strategy the workers decode it once (superstep 0) and every
        # later superstep reads the cached CSR arrays instead of
        # re-projecting the edge table through SQL.  It survives rollback
        # too — edges are immutable and the vertex set is stable.
        edge_cache = (
            EdgeCache()
            if config.cache_edges and config.input_strategy == "union"
            else None
        )

        superstep = start_superstep
        rollbacks_left = config.task_retries
        while True:
            messages_in = storage.pending_messages(graph)
            active = storage.active_vertices(graph)
            if superstep > 0 and messages_in == 0 and active == 0:
                break
            if limit is not None and superstep >= limit:
                break
            self._check_safety_cap(superstep, hard_cap, program)
            step_started = time.perf_counter()

            try:
                worker = VertexWorker(
                    program,
                    superstep,
                    graph.num_vertices,
                    input_format=config.input_strategy,
                    aggregated=aggregated,
                    use_batch=use_batch,
                    edge_cache=edge_cache,
                )
                self.db.register_transform(transform_name, worker, worker.schema)
                if config.input_strategy == "union":
                    input_sql = storage.union_input_sql(
                        graph,
                        program,
                        include_edges=edge_cache is None or not edge_cache.primed,
                    )
                    order_by = ("vid", "kind")
                else:
                    input_sql = storage.join_input_sql(graph)
                    order_by = ("vid", "edst", "msrc")
                output = self.db.run_transform(
                    transform_name,
                    input_sql,
                    partition_by=("vid",),
                    order_by=order_by,
                    n_partitions=config.n_partitions,
                    executor=executor,
                )
                storage.stage_worker_output(graph, output)
                if edge_cache is not None:
                    # All non-empty partitions have now decoded their
                    # edges; later supersteps skip the edge relation.
                    edge_cache.primed = True

                vertex_updates = storage.count_staged(graph, 0)
                replace, path = self._choose_path(vertex_updates, graph.num_vertices)
                storage.apply_vertex_updates(graph, program, replace, superstep=superstep)
                messages_staged = storage.count_staged(graph, 1)
                messages_out = storage.apply_messages(
                    graph, program, config.use_combiner, replace=replace
                )
                aggregated = storage.reduce_aggregators(graph, program)
            except Exception as exc:
                superstep, aggregated = self._rollback_or_raise(
                    exc, recovery, program, stats, rollbacks_left
                )
                rollbacks_left -= 1
                continue

            seconds = time.perf_counter() - step_started
            checkpoint_seconds = self._maybe_checkpoint(
                recovery, superstep + 1, aggregated, stats
            )
            if config.track_metrics:
                stats.supersteps.append(
                    SuperstepStats(
                        superstep=superstep,
                        active_vertices=worker.vertices_ran,
                        messages_in=messages_in,
                        messages_out=messages_out,
                        vertex_updates=vertex_updates,
                        update_path=path if vertex_updates else "none",
                        seconds=seconds,
                        aggregated=tuple(sorted(aggregated.items())),
                        rows_in=worker.rows_in,
                        rows_out=output.num_rows,
                        compute_path="batch" if use_batch else "scalar",
                        checkpoint_seconds=checkpoint_seconds,
                        messages_precombine=messages_staged,
                    )
                )
            superstep += 1

    # ------------------------------------------------------------------
    # The shard-resident plane (partition once, route in-plane)
    # ------------------------------------------------------------------
    def _run_shards(
        self,
        graph: GraphHandle,
        program: VertexProgram,
        stats: RunStats,
        executor: PartitionExecutor,
        limit: int | None,
        hard_cap: int,
        use_batch: bool,
        recovery: RunRecovery | None,
        start_superstep: int,
        aggregated: dict[str, float],
    ) -> None:
        config = self.config

        def build_plane() -> ShardedDataPlane:
            # Adopts pending messages from the message table, so a plane
            # built over restored checkpoint state resumes mid-run with
            # the exact inboxes (and delivery order) of the original.
            return ShardedDataPlane(
                self.storage,
                graph,
                program,
                config.n_partitions,
                config.use_combiner,
                task_retries=config.task_retries,
                retry_backoff=config.retry_backoff,
            )

        plane = build_plane()
        # Under executor="processes" this moves the resident shard
        # arrays into shared memory and installs the plane bootstrap in
        # the worker pool (no-op for serial/thread executors).
        plane.bind_executor(executor)
        sync_every = config.superstep_sync == "every"

        superstep = start_superstep
        rollbacks_left = config.task_retries
        # From here on the plane may hold shared-memory segments; the
        # finally guarantees they are unlinked even on a failed run (the
        # `plane` local is rebound on rollback rebuilds, and `finally`
        # closes whichever plane is current).
        try:
            while True:
                messages_in = plane.pending_messages
                active = plane.active_vertices
                if superstep > 0 and messages_in == 0 and active == 0:
                    break
                if limit is not None and superstep >= limit:
                    break
                self._check_safety_cap(superstep, hard_cap, program)
                step_started = time.perf_counter()

                try:
                    worker = VertexWorker(
                        program,
                        superstep,
                        graph.num_vertices,
                        aggregated=aggregated,
                        use_batch=use_batch,
                    )
                    step = plane.run_superstep(worker, executor)
                    aggregated = dict(plane.aggregated)
                    sync_seconds = plane.sync_tables(superstep) if sync_every else 0.0
                except Exception as exc:
                    # A fault that escaped the in-task retry loop may have
                    # left resident shard state half-stepped; the rollback
                    # restores the tables, then the plane is rebuilt from
                    # them (resident state is pure cache).
                    superstep, aggregated = self._rollback_or_raise(
                        exc, recovery, program, stats, rollbacks_left
                    )
                    rollbacks_left -= 1
                    plane.close()
                    plane = build_plane()
                    plane.bind_executor(executor)
                    continue
                stats.retries += step.retries

                seconds = time.perf_counter() - step_started
                checkpoint_seconds = 0.0
                if recovery is not None and recovery.policy.due(superstep + 1):
                    if not sync_every:
                        # The halt policy's promise to the checkpoint layer:
                        # resident arrays hit the tables at boundaries only.
                        checkpoint_seconds += plane.sync_tables(superstep)
                    checkpoint_seconds += recovery.write(superstep + 1, aggregated)
                    stats.checkpoint_seconds += checkpoint_seconds

                if config.track_metrics:
                    stats.supersteps.append(
                        SuperstepStats(
                            superstep=superstep,
                            active_vertices=step.vertices_ran,
                            messages_in=messages_in,
                            messages_out=step.messages_out,
                            vertex_updates=step.vertex_updates,
                            update_path="memory" if step.vertex_updates else "none",
                            seconds=seconds,
                            aggregated=tuple(sorted(aggregated.items())),
                            rows_in=step.rows_in,
                            rows_out=step.rows_out,
                            compute_path="batch" if use_batch else "scalar",
                            shard_seconds=step.shard_seconds,
                            sync_seconds=sync_seconds,
                            checkpoint_seconds=checkpoint_seconds,
                            messages_precombine=step.messages_precombine,
                        )
                    )
                superstep += 1

            if not sync_every:
                # The halt policy's single materialization: final vertex
                # values (and any messages still pending under a superstep
                # cap) become visible to SQL exactly once.
                plane.sync_tables(superstep)
        finally:
            plane.close()

    # ------------------------------------------------------------------
    # Fault handling (shared by both planes)
    # ------------------------------------------------------------------
    def _rollback_or_raise(
        self,
        exc: Exception,
        recovery: RunRecovery | None,
        program: VertexProgram,
        stats: RunStats,
        rollbacks_left: int,
    ) -> tuple[int, dict[str, float]]:
        """Handle a fault that escaped a superstep.

        Without checkpointing there is nothing to roll back to: re-raise
        (the PR-1 crash-consistency contract — tables stay analyzable).
        With it, restore the last checkpoint either way; then transient
        faults with budget left replay from there, while deterministic
        faults (and exhausted budgets) fail fast — after the rollback, so
        the tables are left in the checkpoint's consistent state.
        """
        if recovery is None or not recovery.policy.enabled:
            raise exc
        restored = recovery.load()
        if restored is None:
            raise exc
        recovery.restore(restored)
        # Replayed supersteps get re-recorded; drop their first take.
        stats.supersteps[:] = [
            s for s in stats.supersteps if s.superstep < restored.completed
        ]
        if rollbacks_left <= 0 or not faults.is_transient(exc):
            raise exc
        stats.retries += 1
        stats.recovered_supersteps += restored.completed
        return restored.completed, dict(restored.aggregated)

    def _maybe_checkpoint(
        self,
        recovery: RunRecovery | None,
        completed: int,
        aggregated: dict[str, float],
        stats: RunStats,
    ) -> float:
        """Write a checkpoint if one is due at ``completed``; returns the
        seconds spent (also accumulated into ``stats``)."""
        if recovery is None or not recovery.policy.due(completed):
            return 0.0
        seconds = recovery.write(completed, aggregated)
        stats.checkpoint_seconds += seconds
        return seconds

    @staticmethod
    def _check_safety_cap(superstep: int, hard_cap: int, program: VertexProgram) -> None:
        if superstep >= hard_cap:
            raise VertexicaError(
                f"superstep safety limit ({hard_cap}) exceeded by "
                f"{program.name}; declare max_supersteps"
            )

    # ------------------------------------------------------------------
    def _resolve_compute_path(self, program: VertexProgram) -> bool:
        """Pick the vectorized batch path when the program supports it
        (``compute_strategy="auto"``); honor explicit overrides.

        Raises:
            VertexicaError: when ``"batch"`` is forced for a program
                without :meth:`compute_batch`.
        """
        strategy = self.config.compute_strategy
        if strategy == "scalar":
            return False
        if strategy == "batch":
            if not supports_batch(program):
                raise VertexicaError(
                    f"compute_strategy='batch' but {program.name} does not "
                    "implement compute_batch"
                )
            return True
        return supports_batch(program)

    # ------------------------------------------------------------------
    def _choose_path(self, updates: int, table_size: int) -> tuple[bool, str]:
        """The paper's Update-vs-Replace rule: replace the table unless the
        updated-tuple count is below the threshold."""
        strategy = self.config.update_strategy
        if strategy == "replace":
            return True, "replace"
        if strategy == "update":
            return False, "update"
        threshold = self.config.replace_threshold * max(table_size, 1)
        if updates <= threshold:
            return False, "update"
        return True, "replace"


def register_coordinator(db: Database) -> None:
    """Install the coordinator as the stored procedure ``vertexica_run``,
    matching the paper's architecture ("We implement the coordinator as a
    stored procedure").  Call it via::

        db.call("vertexica_run", graph_handle, program, config)
    """

    def procedure(
        db_: Database, graph: GraphHandle, program: VertexProgram, config: VertexicaConfig
    ) -> RunStats:
        return Coordinator(db_, config).run(graph, program)

    db.register_procedure("vertexica_run", procedure)
