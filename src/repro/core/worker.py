"""The worker: a transform UDF that runs vertex programs over partitions.

Mirrors §2.2/§2.3 of the paper: the engine hash-partitions the worker
input on vertex id, sorts each partition, and calls the worker once per
partition ("Vertex Batching").  The worker walks its partition, rebuilds
per-vertex context (value, out-edges, incoming messages) from the unified
tuple stream, invokes the user's compute function serially per vertex, and
emits vertex updates and outgoing messages in the staging schema.

Two input formats are supported, matching the Table Unions ablation:

* ``union``  — narrow rows ``(vid, kind, i1, f1, s1)`` from a UNION ALL of
  the three tables (kind 0/1/2 = vertex/edge/message);
* ``join``   — wide rows from the naive three-way join, one per
  (vertex x out-edge x incoming-message) combination, which the worker
  must de-duplicate.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from repro.core.api import OutEdge, Vertex
from repro.core.program import VertexProgram
from repro.core.storage import WORKER_OUTPUT_COLUMNS
from repro.engine.batch import RecordBatch
from repro.engine.column import Column
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import VARCHAR
from repro.errors import ProgramError

__all__ = ["VertexWorker", "worker_output_schema"]


def worker_output_schema() -> Schema:
    """The staging schema worker calls must produce."""
    return Schema(
        ColumnDef(name, dtype, nullable=nullable)
        for name, dtype, nullable in WORKER_OUTPUT_COLUMNS
    )


class _Outputs:
    """Columnar accumulators for one worker invocation."""

    __slots__ = ("kind", "vid", "dst", "f1", "s1", "halted", "agg_partials")

    def __init__(self) -> None:
        self.kind: list[int] = []
        self.vid: list[int] = []
        self.dst: list[int | None] = []
        self.f1: list[float | None] = []
        self.s1: list[str | None] = []
        self.halted: list[bool | None] = []
        self.agg_partials: list[tuple[str, float]] = []

    def add_vertex_update(self, vid: int, f1: float | None, s1: str | None, halted: bool) -> None:
        self.kind.append(0)
        self.vid.append(vid)
        self.dst.append(None)
        self.f1.append(f1)
        self.s1.append(s1)
        self.halted.append(halted)

    def add_message(self, sender: int, dst: int, f1: float | None, s1: str | None) -> None:
        self.kind.append(1)
        self.vid.append(sender)
        self.dst.append(dst)
        self.f1.append(f1)
        self.s1.append(s1)
        self.halted.append(None)

    def add_aggregate(self, name: str, value: float) -> None:
        """One pre-reduced aggregator partial for this partition (kind 2)."""
        self.kind.append(2)
        self.vid.append(0)
        self.dst.append(None)
        self.f1.append(value)
        self.s1.append(name)
        self.halted.append(None)

    def to_batch(self, schema: Schema) -> RecordBatch:
        return RecordBatch(
            schema,
            [
                Column.from_values(schema[0].dtype, self.kind),
                Column.from_values(schema[1].dtype, self.vid),
                Column.from_values(schema[2].dtype, self.dst),
                Column.from_values(schema[3].dtype, self.f1),
                Column.from_values(schema[4].dtype, self.s1),
                Column.from_values(schema[5].dtype, self.halted),
            ],
        )


class VertexWorker:
    """One superstep's worker UDF over a program.

    Thread-safe across partitions: per-partition state is local; shared
    counters are guarded by a lock (cheap — updated once per partition).
    """

    def __init__(
        self,
        program: VertexProgram,
        superstep: int,
        num_vertices: int,
        input_format: str = "union",
        aggregated: dict[str, float] | None = None,
    ) -> None:
        if input_format not in ("union", "join"):
            raise ProgramError(f"unknown worker input format {input_format!r}")
        self.program = program
        self.superstep = superstep
        self.num_vertices = num_vertices
        self.input_format = input_format
        self.aggregated = aggregated or {}
        self.schema = worker_output_schema()
        self._lock = threading.Lock()
        #: vertices whose compute function ran this superstep
        self.vertices_ran = 0
        #: messages addressed to ids with no vertex row (dropped)
        self.messages_dropped = 0

    # ------------------------------------------------------------------
    def __call__(self, partition: RecordBatch, partition_index: int) -> RecordBatch:
        """Process one sorted partition; returns staged output rows."""
        if self.input_format == "union":
            out, ran, dropped = self._process_union(partition)
        else:
            out, ran, dropped = self._process_join(partition)
        self._reduce_partition_aggregates(out)
        with self._lock:
            self.vertices_ran += ran
            self.messages_dropped += dropped
        return out.to_batch(self.schema)

    def _reduce_partition_aggregates(self, out: _Outputs) -> None:
        """Pre-reduce this partition's aggregator contributions to one
        kind-2 row per aggregator (the SQL GROUP BY finishes the job)."""
        if not out.agg_partials:
            return
        grouped: dict[str, list[float]] = {}
        for name, value in out.agg_partials:
            op = self.program.aggregators.get(name)
            if op is None:
                raise ProgramError(
                    f"vertex aggregated to undeclared aggregator {name!r}; "
                    f"declare it in {type(self.program).__name__}.aggregators"
                )
            grouped.setdefault(name, []).append(value)
        for name, values in grouped.items():
            op = self.program.aggregators[name]
            out.add_aggregate(name, self.program.reduce_aggregate(op, values))

    # ------------------------------------------------------------------
    # Union format
    # ------------------------------------------------------------------
    def _process_union(self, batch: RecordBatch) -> tuple[_Outputs, int, int]:
        vid = batch.column("vid").values
        kind = batch.column("kind").values
        i1 = batch.column("i1")
        f1 = batch.column("f1")
        s1 = batch.column("s1")
        out = _Outputs()
        ran = 0
        dropped = 0
        boundaries = _group_boundaries(vid)
        v_codec = self.program.vertex_codec
        m_codec = self.program.message_codec
        varchar_values = v_codec.sql_type is VARCHAR
        varchar_messages = m_codec.sql_type is VARCHAR
        for start, stop in boundaries:
            vertex_id = int(vid[start])
            value: Any = None
            halted = False
            has_vertex_row = False
            edges: list[OutEdge] = []
            messages: list[Any] = []
            for row in range(start, stop):
                k = kind[row]
                if k == 0:
                    has_vertex_row = True
                    halted = i1.values[row] == 1
                    if varchar_values:
                        raw = s1.values[row] if s1.valid[row] else None
                    else:
                        raw = f1.values[row] if f1.valid[row] else None
                    value = v_codec.decode_or_none(raw)
                elif k == 1:
                    edges.append(OutEdge(int(i1.values[row]), float(f1.values[row])))
                else:
                    if varchar_messages:
                        raw = s1.values[row] if s1.valid[row] else None
                    else:
                        raw = f1.values[row] if f1.valid[row] else None
                    messages.append(m_codec.decode_or_none(raw))
            if not has_vertex_row:
                dropped += len(messages)
                continue
            ran += self._run_vertex(out, vertex_id, value, halted, edges, messages)
        return out, ran, dropped

    # ------------------------------------------------------------------
    # Join format
    # ------------------------------------------------------------------
    def _process_join(self, batch: RecordBatch) -> tuple[_Outputs, int, int]:
        vid = batch.column("vid").values
        halted_col = batch.column("halted").values
        vvalue = batch.column("vvalue")
        edst = batch.column("edst")
        eweight = batch.column("eweight")
        msrc = batch.column("msrc")
        mvalue = batch.column("mvalue")
        out = _Outputs()
        ran = 0
        v_codec = self.program.vertex_codec
        m_codec = self.program.message_codec
        for start, stop in _group_boundaries(vid):
            vertex_id = int(vid[start])
            halted = halted_col[start] == 1
            value = v_codec.decode_or_none(
                vvalue.values[start] if vvalue.valid[start] else None
            )
            edges: list[OutEdge] = []
            messages: list[Any] = []
            has_edges = bool(edst.valid[start])
            if not has_edges:
                # No out-edges: every row is a pure message combination.
                for row in range(start, stop):
                    if msrc.valid[row]:
                        messages.append(
                            m_codec.decode_or_none(
                                mvalue.values[row] if mvalue.valid[row] else None
                            )
                        )
            else:
                # Rows are sorted by (edst, msrc): distinct edst values give
                # the edge list; the first edge's block carries each message
                # exactly once.
                first_edst = edst.values[start]
                previous_edst: int | None = None
                for row in range(start, stop):
                    current = int(edst.values[row])
                    if current != previous_edst:
                        edges.append(OutEdge(current, float(eweight.values[row])))
                        previous_edst = current
                    if current == first_edst and msrc.valid[row]:
                        messages.append(
                            m_codec.decode_or_none(
                                mvalue.values[row] if mvalue.valid[row] else None
                            )
                        )
            ran += self._run_vertex(out, vertex_id, value, halted, edges, messages)
        return out, ran, 0

    # ------------------------------------------------------------------
    # Shared per-vertex execution
    # ------------------------------------------------------------------
    def _run_vertex(
        self,
        out: _Outputs,
        vertex_id: int,
        value: Any,
        halted: bool,
        edges: list[OutEdge],
        messages: list[Any],
    ) -> int:
        """Run compute if the vertex is active; stage its effects.

        Returns 1 when the vertex ran, 0 when it was skipped.
        """
        should_run = self.superstep == 0 or messages or not halted
        if not should_run:
            return 0
        vertex = Vertex(
            vertex_id,
            value,
            edges,
            messages,
            self.superstep,
            self.num_vertices,
            halted,
            aggregated=self.aggregated,
        )
        self.program.compute(vertex)
        changed, new_value = vertex.collect_value_update()
        vote = vertex.collect_halt_vote()
        # A vertex that ran always records its (possibly re-set) halt state;
        # value is carried through unchanged when compute did not touch it.
        encoded = self.program.vertex_codec.encode_or_none(new_value)
        f1, s1 = self._payload(encoded, self.program.vertex_codec)
        out.add_vertex_update(vertex_id, f1, s1, vote)
        m_codec = self.program.message_codec
        for target, message in vertex.collect_outbox():
            mf1, ms1 = self._payload(m_codec.encode_or_none(message), m_codec)
            out.add_message(vertex_id, target, mf1, ms1)
        out.agg_partials.extend(vertex.collect_aggregates())
        return 1

    @staticmethod
    def _payload(encoded: Any, codec: Any) -> tuple[float | None, str | None]:
        if encoded is None:
            return None, None
        if codec.sql_type is VARCHAR:
            return None, encoded
        return float(encoded), None


def _group_boundaries(vid: np.ndarray) -> list[tuple[int, int]]:
    """(start, stop) index pairs of equal-vid runs in a sorted array."""
    n = len(vid)
    if n == 0:
        return []
    changes = np.flatnonzero(np.diff(vid)) + 1
    starts = np.concatenate(([0], changes))
    stops = np.concatenate((changes, [n]))
    return list(zip(starts.tolist(), stops.tolist()))
