"""The worker: a transform UDF that runs vertex programs over partitions.

Mirrors §2.2/§2.3 of the paper: the engine hash-partitions the worker
input on vertex id, sorts each partition, and calls the worker once per
partition ("Vertex Batching").  The worker rebuilds per-vertex context
(value, out-edges, incoming messages) from the unified tuple stream,
invokes the program, and emits vertex updates and outgoing messages in
the staging schema.

The data plane is vectorized end-to-end in three layers:

1. **Batch decode** — each partition is split by ``kind`` with numpy
   masks into vertex/edge/message sub-arrays once, and group extents are
   derived with a single ``searchsorted`` pass into CSR-style
   ``indptr`` arrays.  No per-row Python dispatch.
2. **Batch compute** — programs implementing
   :class:`~repro.core.program.BatchVertexProgram` receive one
   :class:`~repro.core.program.VertexBatch` of dense numpy views per
   partition and run whole-array kernels; other programs fall back to
   the per-vertex scalar path, which now assembles each
   :class:`~repro.core.api.Vertex` from pre-decoded array slices.
3. **Batch staging** — outputs accumulate as numpy array blocks (the
   batch path never touches Python scalars) and are assembled into
   columns directly, skipping per-item ``coerce_python_value``.

Measured on the Figure-2 harness this makes PageRank/SSSP supersteps
roughly an order of magnitude faster than the seed's row-at-a-time
worker (see ``benchmarks/run_bench.py`` / BENCH_PR1.json).

Two input formats are supported, matching the Table Unions ablation:

* ``union``  — narrow rows ``(vid, kind, i1, f1, s1)`` from a UNION ALL of
  the three tables (kind 0/1/2 = vertex/edge/message);
* ``join``   — wide rows from the naive three-way join, one per
  (vertex x out-edge x incoming-message) combination, which the worker
  must de-duplicate.

Both formats decode into the same :class:`_DecodedPartition`, so the
batch and scalar compute paths run on either.  The shard-resident data
plane (:mod:`repro.core.shards`) skips layer 1 entirely: it builds
:class:`_DecodedPartition` views over resident arrays and enters at
:meth:`VertexWorker.compute_decoded`, consuming outputs as
:class:`StagedRows` instead of a staging table.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.api import OutEdge, Vertex
from repro.core.codecs import ValueCodec
from repro.core.program import VertexBatch, VertexProgram, supports_batch
from repro.core.storage import payload_width, worker_output_columns
from repro.engine.batch import RecordBatch
from repro.engine.column import Column
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import BOOLEAN, FLOAT, INTEGER, VARCHAR
from repro.errors import ProgramError

__all__ = [
    "EdgeCache",
    "StagedRows",
    "VertexWorker",
    "worker_output_schema",
    "segment_sum",
    "segment_min",
    "segment_max",
    "segment_mean",
]


def worker_output_schema(width: int = 0) -> Schema:
    """The staging schema worker calls must produce (``width`` extra
    FLOAT payload columns when a codec is vector-valued)."""
    return Schema(
        ColumnDef(name, dtype, nullable=nullable)
        for name, dtype, nullable in worker_output_columns(width)
    )


# ---------------------------------------------------------------------------
# Segment-reduction kernels (sorted-segment reduceat machinery)
# ---------------------------------------------------------------------------
def _segment_prepare(values: Any, segments: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate a (values, indptr) pair for the ``segment_*`` kernels.

    ``segments`` is a CSR-style index pointer of length ``n_segments + 1``:
    segment ``i`` owns rows ``values[segments[i]:segments[i+1]]``.  The
    segments must tile ``values`` exactly (``segments[0] == 0`` and
    ``segments[-1] == len(values)``) — the compact layout ``reduceat``
    needs, and the one :class:`~repro.core.program.VertexBatch` exposes
    via ``msg_indptr``.
    """
    values = np.asarray(values, dtype=np.float64)
    indptr = np.asarray(segments, dtype=np.int64)
    if indptr.ndim != 1 or len(indptr) == 0:
        raise ProgramError("segments must be a 1-D indptr array of length >= 1")
    if indptr[0] != 0 or indptr[-1] != len(values):
        raise ProgramError(
            "segments must tile values exactly: expected segments[0] == 0 and "
            f"segments[-1] == len(values) ({len(values)}), got "
            f"[{indptr[0]}, {indptr[-1]}]"
        )
    if np.any(np.diff(indptr) < 0):
        raise ProgramError("segments must be non-decreasing")
    return values, indptr


def _segment_reduce_kernel(
    ufunc: np.ufunc, values: Any, segments: Any, identity: float
) -> np.ndarray:
    values, indptr = _segment_prepare(values, segments)
    n_segments = len(indptr) - 1
    shape = (n_segments,) + values.shape[1:]
    out = np.full(shape, identity, dtype=np.float64)
    nonempty = np.flatnonzero(np.diff(indptr))
    if len(nonempty):
        # Compact segments: each nonempty start doubles as the previous
        # stop, exactly the index vector ``reduceat`` wants.
        out[nonempty] = ufunc.reduceat(values, indptr[:-1][nonempty], axis=0)
    return out


def segment_sum(values: Any, segments: Any) -> np.ndarray:
    """Per-segment sum over a 1-D or 2-D ``(rows, k)`` float array.

    Runs the same float64 ``np.add.reduceat`` the data planes' SUM
    combiner uses, so a batch kernel reducing messages with this helper
    is bit-identical with and without combining.  Empty segments yield
    0.0; NaN rows propagate.
    """
    return _segment_reduce_kernel(np.add, values, segments, 0.0)


def segment_min(values: Any, segments: Any) -> np.ndarray:
    """Per-segment (element-wise for 2-D) minimum; empty segments yield
    ``+inf``, NaN rows propagate.  Matches the MIN combiner bitwise."""
    return _segment_reduce_kernel(np.minimum, values, segments, np.inf)


def segment_max(values: Any, segments: Any) -> np.ndarray:
    """Per-segment (element-wise for 2-D) maximum; empty segments yield
    ``-inf``, NaN rows propagate.  Matches the MAX combiner bitwise."""
    return _segment_reduce_kernel(np.maximum, values, segments, -np.inf)


def segment_mean(values: Any, segments: Any) -> np.ndarray:
    """Per-segment mean (``segment_sum`` divided by the member count —
    the SQL ``AVG`` arithmetic).  Empty segments yield NaN."""
    sums = _segment_reduce_kernel(np.add, values, segments, 0.0)
    counts = np.diff(np.asarray(segments, dtype=np.int64)).astype(np.float64)
    if sums.ndim == 2:
        counts = counts[:, None]
    empty = counts == 0.0
    out = sums / np.where(empty, 1.0, counts)
    return np.where(empty, np.nan, out)


# ---------------------------------------------------------------------------
# Decoded partitions (layer 1: batch decode)
# ---------------------------------------------------------------------------
@dataclass
class _DecodedPartition:
    """One partition split into aligned vertex/edge/message arrays.

    ``vertex_ids`` is sorted and covers exactly the vertices that have a
    vertex row; edges and messages are compacted CSR-style against it.
    Values are still *encoded* (storage representation) — decoding is the
    compute paths' job, so each path decodes only what it needs.
    """

    vertex_ids: np.ndarray  # int64 [nv]
    halted: np.ndarray  # bool  [nv]
    raw_values: np.ndarray  # storage values aligned to vertex_ids ((nv, k) for vector codecs)
    value_valid: np.ndarray  # bool  [nv]
    edge_indptr: np.ndarray  # int64 [nv + 1]
    edge_targets: np.ndarray  # int64 [ne]
    edge_weights: np.ndarray  # float64 [ne]
    msg_indptr: np.ndarray  # int64 [nv + 1]
    msg_src: np.ndarray  # int64 senders [nm] (the message table's src column)
    msg_raw: np.ndarray  # storage values [nm] ((nm, k) for vector codecs)
    msg_valid: np.ndarray  # bool [nm]
    dropped: int  # messages addressed to ids with no vertex row

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_ids)

    def active_mask(self, superstep: int) -> np.ndarray:
        """Vertices that run this superstep: everyone at superstep 0,
        afterwards any vertex with messages or not yet halted."""
        if superstep == 0:
            return np.ones(self.num_vertices, dtype=bool)
        has_messages = np.diff(self.msg_indptr) > 0
        return has_messages | ~self.halted


class EdgeCache:
    """Per-partition decoded CSR edge arrays, shared across supersteps.

    The edge relation is immutable for the duration of a run and the
    partitioning function (vid hash) and vertex set are stable, so the
    (vertex_ids, edge_indptr, edge_targets, edge_weights) tuple decoded at
    superstep 0 is valid for every later superstep.  Once ``primed``, the
    coordinator drops the edge relation from the union input SQL entirely
    and the worker reads edges from here instead.
    """

    __slots__ = ("partitions", "primed", "_lock")

    def __init__(self) -> None:
        #: partition index -> (vertex_ids, edge_indptr, edge_targets, edge_weights)
        self.partitions: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}
        self.primed = False
        self._lock = threading.Lock()

    def store(
        self,
        partition_index: int,
        vertex_ids: np.ndarray,
        edge_indptr: np.ndarray,
        edge_targets: np.ndarray,
        edge_weights: np.ndarray,
    ) -> None:
        """Record one partition's decoded edges (superstep 0)."""
        with self._lock:
            self.partitions[partition_index] = (
                vertex_ids, edge_indptr, edge_targets, edge_weights
            )

    def lookup(
        self, partition_index: int, vertex_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """This partition's cached ``(indptr, targets, weights)``.

        Raises:
            ProgramError: when the partition was never cached or its
                vertex set changed — both would mean the superstep-0
                alignment no longer holds, which violates the run
                invariants this cache relies on.
        """
        entry = self.partitions.get(partition_index)
        if entry is None:
            if len(vertex_ids) == 0:
                # This bucket held no rows at all at superstep 0 (it has no
                # vertex rows, so it only runs now because a message to a
                # nonexistent id hashed here) — it has no edges either.
                empty = np.empty(0, dtype=np.int64)
                return np.zeros(1, dtype=np.int64), empty, np.empty(0, np.float64)
            raise ProgramError(
                f"edge cache has no entry for partition {partition_index}; "
                "was superstep 0 run with a different partitioning?"
            )
        cached_ids, indptr, targets, weights = entry
        if not np.array_equal(cached_ids, vertex_ids):
            raise ProgramError(
                f"edge cache vertex set changed for partition {partition_index}; "
                "the vertex table must be immutable during a run"
            )
        return indptr, targets, weights


def _csr_align(
    owners: np.ndarray, vertex_ids: np.ndarray, payloads: tuple[np.ndarray, ...]
) -> tuple[np.ndarray, tuple[np.ndarray, ...], int]:
    """Compact rows owned by sorted ``owners`` into CSR extents aligned to
    ``vertex_ids``; rows owned by unknown ids are dropped (counted)."""
    nv = len(vertex_ids)
    starts = np.searchsorted(owners, vertex_ids, side="left")
    stops = np.searchsorted(owners, vertex_ids, side="right")
    counts = stops - starts
    indptr = np.zeros(nv + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    dropped = len(owners) - int(indptr[-1])
    if dropped == 0:
        # Every row is owned: the segments already tile the arrays in order.
        return indptr, payloads, 0
    gather = np.repeat(starts - indptr[:-1], counts) + np.arange(indptr[-1])
    return indptr, tuple(p[gather] for p in payloads), dropped


def _csr_select(
    indptr: np.ndarray, mask: np.ndarray, payloads: tuple[np.ndarray, ...]
) -> tuple[np.ndarray, tuple[np.ndarray, ...]]:
    """Restrict CSR segments to the vertices selected by ``mask``."""
    if bool(mask.all()):
        return indptr, payloads
    starts = indptr[:-1][mask]
    counts = indptr[1:][mask] - starts
    new_indptr = np.zeros(int(mask.sum()) + 1, dtype=np.int64)
    np.cumsum(counts, out=new_indptr[1:])
    gather = np.repeat(starts - new_indptr[:-1], counts) + np.arange(new_indptr[-1])
    return new_indptr, tuple(p[gather] for p in payloads)


# ---------------------------------------------------------------------------
# Columnar output staging (layer 3: batch staging)
# ---------------------------------------------------------------------------
@dataclass
class StagedRows:
    """One partition's staged output as plain aligned arrays.

    The in-memory twin of the ``{graph}_out`` staging table: rows keep
    the exact order the compute paths emitted them in (kind-0 vertex
    update, that vertex's kind-1 messages, ... under the scalar path;
    whole-block order under the batch path), which is what makes the
    shard plane's message routing reproduce the SQL plane's delivery
    order bit-for-bit.
    """

    kind: np.ndarray  # int64: 0 vertex update, 1 message, 2 aggregate
    vid: np.ndarray  # int64: owner (kind 0/2) or sender (kind 1)
    dst: np.ndarray  # int64: message destination (kind 1 only)
    f1: np.ndarray  # float64 payload (numeric scalar codecs, aggregates)
    f1_valid: np.ndarray
    s1: np.ndarray  # object payload (VARCHAR codecs, aggregator names)
    s1_valid: np.ndarray
    halted: np.ndarray  # bool halt votes (kind 0 only)
    pay: np.ndarray | None = None  # float64 (n, K) vector payload block
    pay_valid: np.ndarray | None = None  # bool (n,) whole-vector validity

    @classmethod
    def empty(cls, pay_width: int = 0) -> "StagedRows":
        i64 = np.empty(0, dtype=np.int64)
        flags = np.empty(0, dtype=bool)
        return cls(
            i64, i64, i64,
            np.empty(0, dtype=np.float64), flags,
            np.empty(0, dtype=object), flags,
            flags,
            np.empty((0, pay_width), dtype=np.float64) if pay_width else None,
            flags if pay_width else None,
        )

    @property
    def num_rows(self) -> int:
        return len(self.kind)


class _Outputs:
    """Columnar accumulators for one worker invocation.

    Rows arrive either as whole numpy blocks (the batch compute path) or
    as per-row appends (the scalar path); :meth:`to_batch` assembles the
    final columns from array chunks without per-item type coercion.

    ``pay_width`` > 0 adds a dense float64 vector payload block ``(n,
    pay_width)`` per row chunk (the staging table's ``p0..p{K-1}``
    columns): kind-0 rows carry ``vertex_width`` leading columns, kind-1
    rows ``message_width``, and everything beyond a row's width is NULL
    filler nothing reads.
    """

    __slots__ = (
        "_blocks", "kind", "vid", "dst", "f1", "s1", "halted", "pay",
        "agg_partials", "pay_width", "vertex_width", "message_width",
    )

    def __init__(
        self, pay_width: int = 0, vertex_width: int = 0, message_width: int = 0
    ) -> None:
        #: finished array chunks: (kind, vid, (dst, dst_valid), ...)
        self._blocks: list[tuple] = []
        self.kind: list[int] = []
        self.vid: list[int] = []
        self.dst: list[int | None] = []
        self.f1: list[float | None] = []
        self.s1: list[str | None] = []
        self.halted: list[bool | None] = []
        self.pay: list[np.ndarray | None] = []
        self.agg_partials: list[tuple[str, float]] = []
        self.pay_width = pay_width
        self.vertex_width = vertex_width
        self.message_width = message_width

    # Scalar-path appends ----------------------------------------------
    def add_vertex_update(
        self,
        vid: int,
        f1: float | None,
        s1: str | None,
        halted: bool,
        pay: np.ndarray | None = None,
    ) -> None:
        self.kind.append(0)
        self.vid.append(vid)
        self.dst.append(None)
        self.f1.append(f1)
        self.s1.append(s1)
        self.halted.append(halted)
        if self.pay_width:
            self.pay.append(pay)

    def add_message(
        self,
        sender: int,
        dst: int,
        f1: float | None,
        s1: str | None,
        pay: np.ndarray | None = None,
    ) -> None:
        self.kind.append(1)
        self.vid.append(sender)
        self.dst.append(dst)
        self.f1.append(f1)
        self.s1.append(s1)
        self.halted.append(None)
        if self.pay_width:
            self.pay.append(pay)

    def add_aggregate(self, name: str, value: float) -> None:
        """One pre-reduced aggregator partial for this partition (kind 2)."""
        self.kind.append(2)
        self.vid.append(0)
        self.dst.append(None)
        self.f1.append(value)
        self.s1.append(name)
        self.halted.append(None)
        if self.pay_width:
            self.pay.append(None)

    # Batch-path blocks ------------------------------------------------
    def add_vertex_block(
        self,
        vids: np.ndarray,
        f1: np.ndarray | None,
        f1_valid: np.ndarray | None,
        s1: np.ndarray | None,
        s1_valid: np.ndarray | None,
        halted: np.ndarray,
        pay: np.ndarray | None = None,
        pay_valid: np.ndarray | None = None,
    ) -> None:
        """A block of kind-0 rows from arrays (no per-item work)."""
        n = len(vids)
        if n == 0:
            return
        self._flush_scalar_rows()
        self._blocks.append(
            (
                np.zeros(n, dtype=np.int64),
                np.asarray(vids, dtype=np.int64),
                (np.zeros(n, dtype=np.int64), np.zeros(n, dtype=bool)),
                _payload_pair(n, f1, f1_valid, np.float64, 0.0),
                _payload_pair(n, s1, s1_valid, object, None),
                (np.asarray(halted, dtype=bool), np.ones(n, dtype=bool)),
                *self._pay_chunk(n, pay, pay_valid, self.vertex_width),
            )
        )

    def add_message_block(
        self,
        senders: np.ndarray,
        targets: np.ndarray,
        f1: np.ndarray | None,
        f1_valid: np.ndarray | None,
        s1: np.ndarray | None,
        s1_valid: np.ndarray | None,
        pay: np.ndarray | None = None,
        pay_valid: np.ndarray | None = None,
    ) -> None:
        """A block of kind-1 rows from arrays (no per-item work)."""
        n = len(senders)
        if n == 0:
            return
        self._flush_scalar_rows()
        self._blocks.append(
            (
                np.ones(n, dtype=np.int64),
                np.asarray(senders, dtype=np.int64),
                (np.asarray(targets, dtype=np.int64), np.ones(n, dtype=bool)),
                _payload_pair(n, f1, f1_valid, np.float64, 0.0),
                _payload_pair(n, s1, s1_valid, object, None),
                (np.zeros(n, dtype=bool), np.zeros(n, dtype=bool)),
                *self._pay_chunk(n, pay, pay_valid, self.message_width),
            )
        )

    def _pay_chunk(
        self,
        n: int,
        pay: np.ndarray | None,
        pay_valid: np.ndarray | None,
        width: int,
    ) -> tuple[tuple[np.ndarray, np.ndarray], ...]:
        """The vector payload element of one block: an ``(n, pay_width)``
        float64 chunk (zero-filled past ``width``) plus its per-row
        validity.  Empty tuple when the run has no vector payloads."""
        if not self.pay_width:
            return ()
        out = np.zeros((n, self.pay_width), dtype=np.float64)
        if pay is None or width == 0:
            return ((out, np.zeros(n, dtype=bool)),)
        out[:, :width] = np.asarray(pay, dtype=np.float64).reshape(n, width)
        valid = (
            np.ones(n, dtype=bool)
            if pay_valid is None
            else np.asarray(pay_valid, dtype=bool)
        )
        return ((out, valid),)

    # Assembly ---------------------------------------------------------
    def _flush_scalar_rows(self) -> None:
        """Convert buffered per-row appends into one array block.

        Values appended by the scalar path are already exact storage types
        (int vids, float payloads, str s1), so arrays are built with plain
        ``np.fromiter`` — no ``coerce_python_value`` per item.
        """
        n = len(self.kind)
        if n == 0:
            return
        block = [
            np.fromiter(self.kind, dtype=np.int64, count=n),
            np.fromiter(self.vid, dtype=np.int64, count=n),
            _nullable_array(self.dst, np.int64, 0),
            _nullable_array(self.f1, np.float64, 0.0),
            _nullable_array(self.s1, object, None),
            _nullable_array(self.halted, bool, False),
        ]
        if self.pay_width:
            pay = np.zeros((n, self.pay_width), dtype=np.float64)
            valid = np.zeros(n, dtype=bool)
            for i, item in enumerate(self.pay):
                if item is not None:
                    pay[i, : len(item)] = item
                    valid[i] = True
            block.append((pay, valid))
            self.pay = []
        self._blocks.append(tuple(block))
        self.kind, self.vid, self.dst = [], [], []
        self.f1, self.s1, self.halted = [], [], []

    def to_staged(self) -> StagedRows:
        """Assemble the accumulated rows as plain arrays (the shard
        plane's path — no :class:`~repro.engine.column.Column` wrapping,
        no SQL staging table)."""
        self._flush_scalar_rows()
        blocks = self._blocks
        if not blocks:
            return StagedRows.empty(self.pay_width)

        def plain(position: int) -> np.ndarray:
            parts = [block[position] for block in blocks]
            return parts[0] if len(parts) == 1 else np.concatenate(parts)

        def pair(position: int) -> tuple[np.ndarray, np.ndarray]:
            values = [block[position][0] for block in blocks]
            valid = [block[position][1] for block in blocks]
            if len(values) == 1:
                return values[0], valid[0]
            return np.concatenate(values), np.concatenate(valid)

        dst, _ = pair(2)
        f1, f1_valid = pair(3)
        s1, s1_valid = pair(4)
        halted, _ = pair(5)
        pay, pay_valid = pair(6) if self.pay_width else (None, None)
        if s1.dtype != object:  # all-empty concat can collapse the dtype
            s1 = s1.astype(object)
        return StagedRows(
            plain(0), plain(1),
            np.asarray(dst, dtype=np.int64),
            np.asarray(f1, dtype=np.float64), f1_valid,
            s1, s1_valid,
            np.asarray(halted, dtype=bool),
            pay, pay_valid,
        )

    def to_batch(self, schema: Schema) -> RecordBatch:
        self._flush_scalar_rows()
        blocks = self._blocks
        if not blocks:
            return RecordBatch.empty(schema)
        columns = []
        kind = None
        pay = pay_valid = None
        for position, coldef in enumerate(schema):
            if position >= 6:  # p0..p{K-1}: split the 2-D payload chunk
                if pay is None:
                    pay_parts = [block[6] for block in blocks]
                    pay = np.concatenate([p[0] for p in pay_parts])
                    pay_valid = np.concatenate([p[1] for p in pay_parts])
                    # A column is NULL past its row's codec width (kind-0
                    # rows carry vertex_width columns, kind-1 message_width,
                    # aggregates none).
                    row_width = np.where(
                        kind == 0,
                        self.vertex_width,
                        np.where(kind == 1, self.message_width, 0),
                    )
                j = position - 6
                columns.append(
                    Column.from_numpy(
                        coldef.dtype,
                        np.ascontiguousarray(pay[:, j]),
                        pay_valid & (j < row_width),
                    )
                )
                continue
            parts = [block[position] for block in blocks]
            if position < 2:  # kind / vid: never NULL
                values = parts[0] if len(parts) == 1 else np.concatenate(parts)
                if position == 0:
                    kind = values
                columns.append(Column.from_numpy(coldef.dtype, values))
                continue
            if len(parts) == 1:
                values, valid = parts[0]
            else:
                values = np.concatenate([p[0] for p in parts])
                valid = np.concatenate([p[1] for p in parts])
            columns.append(Column.from_numpy(coldef.dtype, values, valid))
        return RecordBatch(schema, columns)


def _payload_pair(
    n: int,
    values: np.ndarray | None,
    valid: np.ndarray | None,
    dtype: Any,
    filler: Any,
) -> tuple[np.ndarray, np.ndarray]:
    """(values, valid) chunk for one staged payload column."""
    if values is None:
        if dtype is object:
            empty = np.empty(n, dtype=object)
            empty[:] = filler
        else:
            empty = np.full(n, filler, dtype=dtype)
        return empty, np.zeros(n, dtype=bool)
    if dtype is object:
        out = np.empty(n, dtype=object)
        out[:] = values
        values = out
    else:
        values = np.asarray(values, dtype=dtype)
    if valid is None:
        valid = np.ones(n, dtype=bool)
    return values, valid


def _nullable_array(items: list, dtype: Any, filler: Any) -> tuple[np.ndarray, np.ndarray]:
    """Array + validity mask from a Python list containing ``None``."""
    n = len(items)
    valid = np.fromiter((item is not None for item in items), dtype=bool, count=n)
    if dtype is object:
        values = np.empty(n, dtype=object)
        values[:] = items
        return values, valid
    values = np.fromiter(
        (filler if item is None else item for item in items), dtype=dtype, count=n
    )
    return values, valid


# ---------------------------------------------------------------------------
# The worker
# ---------------------------------------------------------------------------
class VertexWorker:
    """One superstep's worker UDF over a program.

    Thread-safe across partitions: per-partition state is local; shared
    counters are guarded by a lock (cheap — updated once per partition).

    Args:
        use_batch: run :meth:`BatchVertexProgram.compute_batch` instead of
            per-vertex ``compute``.  ``None`` (default) auto-detects from
            the program; the coordinator passes the configured strategy.
    """

    def __init__(
        self,
        program: VertexProgram,
        superstep: int,
        num_vertices: int,
        input_format: str = "union",
        aggregated: dict[str, float] | None = None,
        use_batch: bool | None = None,
        edge_cache: EdgeCache | None = None,
    ) -> None:
        if input_format not in ("union", "join"):
            raise ProgramError(f"unknown worker input format {input_format!r}")
        if use_batch is None:
            use_batch = supports_batch(program)
        if use_batch and not supports_batch(program):
            raise ProgramError(
                f"{type(program).__name__} does not implement compute_batch; "
                "use the scalar path"
            )
        self.program = program
        self.superstep = superstep
        self.num_vertices = num_vertices
        self.input_format = input_format
        self.use_batch = use_batch
        self.edge_cache = edge_cache
        self.aggregated = aggregated or {}
        self.payload_width = payload_width(program)
        if self.payload_width and input_format == "join":
            raise ProgramError(
                "the join input format cannot carry vector codec payloads; "
                "use input_strategy='union' (or data_plane='shards')"
            )
        self.schema = worker_output_schema(self.payload_width)
        self._lock = threading.Lock()
        #: vertices whose compute function ran this superstep
        self.vertices_ran = 0
        #: messages addressed to ids with no vertex row (dropped)
        self.messages_dropped = 0
        #: input rows seen across all partitions (throughput metrics)
        self.rows_in = 0

    # ------------------------------------------------------------------
    def __call__(self, partition: RecordBatch, partition_index: int) -> RecordBatch:
        """Process one sorted partition; returns staged output rows."""
        if self.input_format == "union":
            part = self._decode_union(partition, partition_index)
        else:
            part = self._decode_join(partition)
        out, _ = self.compute_decoded(part)
        with self._lock:
            self.rows_in += partition.num_rows
        return out.to_batch(self.schema)

    def compute_decoded(
        self, part: _DecodedPartition, record: bool = True
    ) -> tuple[_Outputs, int]:
        """Layer 2 alone: run the program over an already-decoded
        partition and return the staged outputs plus the number of
        vertices that ran.

        The SQL-staged path reaches here through :meth:`__call__` (layer
        1 decodes the partition from relational rows); the shard plane
        builds :class:`_DecodedPartition` views straight from resident
        arrays and calls this directly.  Thread-safe across partitions.

        ``record=False`` skips the shared run counters so a caller that
        may *retry* the partition (the shard plane's transient-fault
        retry loop) can account exactly once via
        :meth:`record_partition_counts` after it commits to a result.
        """
        out = _Outputs(
            self.payload_width,
            self.program.vertex_codec.width,
            self.program.message_codec.width,
        )
        active = part.active_mask(self.superstep)
        if self.use_batch:
            ran = self._run_batch(out, part, active)
        else:
            ran = self._run_scalar(out, part, active)
        self._reduce_partition_aggregates(out)
        if record:
            self.record_partition_counts(ran, part.dropped)
        return out, ran

    def record_partition_counts(self, ran: int, dropped: int) -> None:
        """Fold one partition's outcome into the shared run counters."""
        with self._lock:
            self.vertices_ran += ran
            self.messages_dropped += dropped

    def _reduce_partition_aggregates(self, out: _Outputs) -> None:
        """Pre-reduce this partition's aggregator contributions to one
        kind-2 row per aggregator (the SQL GROUP BY finishes the job)."""
        if not out.agg_partials:
            return
        grouped: dict[str, list[float]] = {}
        for name, value in out.agg_partials:
            op = self.program.aggregators.get(name)
            if op is None:
                raise ProgramError(
                    f"vertex aggregated to undeclared aggregator {name!r}; "
                    f"declare it in {type(self.program).__name__}.aggregators"
                )
            grouped.setdefault(name, []).append(value)
        for name, values in grouped.items():
            op = self.program.aggregators[name]
            out.add_aggregate(name, self.program.reduce_aggregate(op, values))

    # ------------------------------------------------------------------
    # Union format decode
    # ------------------------------------------------------------------
    def _decode_union(self, batch: RecordBatch, partition_index: int) -> _DecodedPartition:
        vid = np.asarray(batch.column("vid").values, dtype=np.int64)
        kind = batch.column("kind").values
        i1 = batch.column("i1").values
        f1 = batch.column("f1")
        s1 = batch.column("s1")
        v_codec = self.program.vertex_codec
        m_codec = self.program.message_codec
        pay_cols = (
            [batch.column(f"p{j}") for j in range(self.payload_width)]
            if self.payload_width
            else []
        )

        def gather_payload(width: int, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            """Stack ``width`` staging payload columns into an ``(n, k)``
            storage block (whole-vector validity from the first column)."""
            values = np.column_stack(
                [np.asarray(c.values[rows], dtype=np.float64) for c in pay_cols[:width]]
            ) if len(rows) else np.empty((0, width), dtype=np.float64)
            return values, pay_cols[0].valid[rows]

        v_idx = np.flatnonzero(kind == 0)
        vertex_ids = vid[v_idx]
        halted = i1[v_idx] == 1
        if v_codec.is_vector:
            raw_values, value_valid = gather_payload(v_codec.width, v_idx)
        else:
            value_col = s1 if v_codec.sql_type is VARCHAR else f1
            raw_values = value_col.values[v_idx]
            value_valid = value_col.valid[v_idx]

        cache = self.edge_cache
        if cache is not None and cache.primed:
            # Edge rows were omitted from the input SQL; reuse the arrays
            # decoded at superstep 0.
            edge_indptr, edge_targets, edge_weights = cache.lookup(
                partition_index, vertex_ids
            )
        else:
            e_idx = np.flatnonzero(kind == 1)
            edge_indptr, (edge_targets, edge_weights), _ = _csr_align(
                vid[e_idx],
                vertex_ids,
                (
                    i1[e_idx].astype(np.int64, copy=False),
                    np.asarray(f1.values[e_idx], dtype=np.float64),
                ),
            )
            if cache is not None:
                cache.store(
                    partition_index, vertex_ids, edge_indptr, edge_targets, edge_weights
                )

        m_idx = np.flatnonzero(kind == 2)
        if m_codec.is_vector:
            msg_values, msg_value_valid = gather_payload(m_codec.width, m_idx)
        else:
            message_col = s1 if m_codec.sql_type is VARCHAR else f1
            msg_values = message_col.values[m_idx]
            msg_value_valid = message_col.valid[m_idx]
        msg_indptr, (msg_src, msg_raw, msg_valid), dropped = _csr_align(
            vid[m_idx],
            vertex_ids,
            (
                i1[m_idx].astype(np.int64, copy=False),  # the message src column
                msg_values,
                msg_value_valid,
            ),
        )
        return _DecodedPartition(
            vertex_ids, halted, raw_values, value_valid,
            edge_indptr, edge_targets, edge_weights,
            msg_indptr, msg_src, msg_raw, msg_valid, dropped,
        )

    # ------------------------------------------------------------------
    # Join format decode (the paper's naive-join foil, de-duplicated)
    # ------------------------------------------------------------------
    def _decode_join(self, batch: RecordBatch) -> _DecodedPartition:
        vid = np.asarray(batch.column("vid").values, dtype=np.int64)
        n = len(vid)
        halted_col = batch.column("halted").values
        vvalue = batch.column("vvalue")
        edst = batch.column("edst")
        eweight = batch.column("eweight")
        msrc = batch.column("msrc")
        mvalue = batch.column("mvalue")

        group_first = np.empty(n, dtype=bool)
        if n:
            group_first[0] = True
            group_first[1:] = vid[1:] != vid[:-1]
        first_idx = np.flatnonzero(group_first)
        vertex_ids = vid[first_idx]
        halted = halted_col[first_idx] == 1
        raw_values = vvalue.values[first_idx]
        value_valid = vvalue.valid[first_idx]

        # Rows are sorted by (vid, edst, msrc); within a group either every
        # row carries an edge or none does.  Distinct edst values give the
        # edge list; the first edge's block carries each message once.
        edst_vals = edst.values
        edst_valid = edst.valid
        changed = np.empty(n, dtype=bool)
        if n:
            changed[0] = True
            changed[1:] = edst_vals[1:] != edst_vals[:-1]
        e_rows = np.flatnonzero(edst_valid & (group_first | changed))
        edge_indptr, (edge_targets, edge_weights), _ = _csr_align(
            vid[e_rows],
            vertex_ids,
            (
                edst_vals[e_rows].astype(np.int64, copy=False),
                np.asarray(eweight.values[e_rows], dtype=np.float64),
            ),
        )

        group_lengths = np.diff(np.concatenate((first_idx, [n])))
        first_edst_per_row = edst_vals[np.repeat(first_idx, group_lengths)] if n else edst_vals
        m_rows = np.flatnonzero(
            msrc.valid & (~edst_valid | (edst_vals == first_edst_per_row))
        )
        msg_indptr, (msg_src, msg_raw, msg_valid), _ = _csr_align(
            vid[m_rows],
            vertex_ids,
            (
                msrc.values[m_rows].astype(np.int64, copy=False),
                mvalue.values[m_rows],
                mvalue.valid[m_rows],
            ),
        )
        # Every join row carries a vertex, so nothing is ever dropped.
        return _DecodedPartition(
            vertex_ids, halted, raw_values, value_valid,
            edge_indptr, edge_targets, edge_weights,
            msg_indptr, msg_src, msg_raw, msg_valid, 0,
        )

    # ------------------------------------------------------------------
    # Layer 2a: vectorized batch compute
    # ------------------------------------------------------------------
    def _run_batch(self, out: _Outputs, part: _DecodedPartition, active: np.ndarray) -> int:
        act = np.flatnonzero(active)
        if len(act) == 0:
            return 0
        v_codec = self.program.vertex_codec
        m_codec = self.program.message_codec
        edge_indptr, (edge_targets, edge_weights) = _csr_select(
            part.edge_indptr, active, (part.edge_targets, part.edge_weights)
        )
        msg_indptr, (msg_src, msg_raw, msg_valid) = _csr_select(
            part.msg_indptr, active, (part.msg_src, part.msg_raw, part.msg_valid)
        )
        ctx = VertexBatch(
            ids=part.vertex_ids[act],
            values=v_codec.decode_array(part.raw_values[act], part.value_valid[act]),
            values_valid=part.value_valid[act],
            was_halted=part.halted[act],
            edge_indptr=edge_indptr,
            edge_targets=edge_targets,
            edge_weights=edge_weights,
            msg_indptr=msg_indptr,
            message_values=m_codec.decode_array(msg_raw, msg_valid),
            message_valid=msg_valid,
            superstep=self.superstep,
            num_vertices=self.num_vertices,
            aggregated=self.aggregated,
            message_senders=msg_src,
        )
        self.program.compute_batch(ctx)  # type: ignore[attr-defined]

        values, valid = ctx.collect_values()
        f1, f1v, s1, s1v, pay, payv = _encoded_payload(v_codec, values, valid)
        out.add_vertex_block(
            ctx.ids, f1, f1v, s1, s1v, ctx.collect_halt_votes(), pay, payv
        )
        for senders, targets, payload in ctx.collect_message_blocks():
            pv = np.ones(len(payload), dtype=bool)
            f1, f1v, s1, s1v, pay, payv = _encoded_payload(m_codec, payload, pv)
            out.add_message_block(senders, targets, f1, f1v, s1, s1v, pay, payv)
        for name, contributions in ctx.collect_aggregates():
            out.agg_partials.extend(
                (name, value) for value in contributions.tolist()
            )
        return len(act)

    # ------------------------------------------------------------------
    # Layer 2b: scalar per-vertex compute over pre-decoded arrays
    # ------------------------------------------------------------------
    def _run_scalar(self, out: _Outputs, part: _DecodedPartition, active: np.ndarray) -> int:
        v_codec = self.program.vertex_codec
        m_codec = self.program.message_codec
        ids = part.vertex_ids.tolist()
        halted = part.halted.tolist()
        values = v_codec.decode_list(part.raw_values, part.value_valid)
        messages = m_codec.decode_list(part.msg_raw, part.msg_valid)
        senders = part.msg_src.tolist()
        targets = part.edge_targets.tolist()
        weights = part.edge_weights.tolist()
        e_ptr = part.edge_indptr.tolist()
        m_ptr = part.msg_indptr.tolist()
        ran = 0
        for i in np.flatnonzero(active).tolist():
            edges = [
                OutEdge(target, weight)
                for target, weight in zip(
                    targets[e_ptr[i]:e_ptr[i + 1]], weights[e_ptr[i]:e_ptr[i + 1]]
                )
            ]
            vertex = Vertex(
                ids[i],
                values[i],
                edges,
                messages[m_ptr[i]:m_ptr[i + 1]],
                self.superstep,
                self.num_vertices,
                halted[i],
                aggregated=self.aggregated,
                senders=senders[m_ptr[i]:m_ptr[i + 1]],
            )
            self.program.compute(vertex)
            _, new_value = vertex.collect_value_update()
            vote = vertex.collect_halt_vote()
            # A vertex that ran always records its (possibly re-set) halt
            # state; value is carried through unchanged when compute did
            # not touch it.
            encoded = v_codec.encode_or_none(new_value)
            f1, s1, pay = self._payload(encoded, v_codec)
            out.add_vertex_update(ids[i], f1, s1, vote, pay)
            for target, message in vertex.collect_outbox():
                mf1, ms1, mpay = self._payload(
                    m_codec.encode_or_none(message), m_codec
                )
                out.add_message(ids[i], target, mf1, ms1, mpay)
            out.agg_partials.extend(vertex.collect_aggregates())
            ran += 1
        return ran

    @staticmethod
    def _payload(
        encoded: Any, codec: Any
    ) -> tuple[float | None, str | None, np.ndarray | None]:
        if encoded is None:
            return None, None, None
        if codec.is_vector:
            return None, None, encoded
        if codec.sql_type is VARCHAR:
            return None, encoded, None
        return float(encoded), None, None


def _encoded_payload(
    codec: ValueCodec, values: np.ndarray, valid: np.ndarray
) -> tuple[
    np.ndarray | None,
    np.ndarray | None,
    np.ndarray | None,
    np.ndarray | None,
    np.ndarray | None,
    np.ndarray | None,
]:
    """Encode a decoded array into staging payload columns ``(f1,
    f1_valid, s1, s1_valid, pay, pay_valid)`` — numeric scalar codecs
    land in ``f1``, VARCHAR codecs in ``s1``, vector codecs in the 2-D
    ``pay`` block."""
    encoded = codec.encode_array(values, valid)
    if codec.is_vector:
        return None, None, None, None, np.asarray(encoded, dtype=np.float64), valid
    if codec.sql_type is VARCHAR:
        return None, None, encoded, valid, None, None
    return np.asarray(encoded, dtype=np.float64), valid, None, None, None, None
