"""Vertexica runtime configuration.

Every §2.3 optimization is a knob here so that the ablation benchmarks can
run both sides of each design decision:

* ``input_strategy`` — ``"union"`` (the paper's Table Unions optimization)
  vs ``"join"`` (the naive three-way join it replaces);
* ``n_partitions`` + ``n_workers`` — Vertex Batching / Parallel Workers;
* ``update_strategy`` + ``replace_threshold`` — Update vs Replace.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from repro.errors import VertexicaError

__all__ = ["VertexicaConfig"]


@dataclass(frozen=True)
class VertexicaConfig:
    """Knobs for one Vertexica run.

    Attributes:
        n_partitions: how many vertex batches the worker input is hash
            partitioned into.  1 = a single batch; ``num_vertices`` would
            be one UDF call per vertex (the paper's "extreme case").
        n_workers: parallel workers executing partition/shard tasks.  1
            keeps execution serial; any setting is fully deterministic
            (the parity suite holds every executor to bit-identical
            results), parallelism only changes wall-clock.
        executor: which execution strategy runs the per-superstep
            partition/shard tasks.  ``"auto"`` (default) picks serial
            execution for ``n_workers=1`` and a thread pool otherwise;
            ``"serial"`` / ``"threads"`` force those; ``"processes"``
            runs shard tasks on ``n_workers`` persistent worker
            *processes* over shared-memory shard state — sidestepping
            the GIL for pure-Python compute — and requires
            ``data_plane="shards"`` (the SQL plane's staging is
            engine-resident and cannot cross process boundaries).
        input_strategy: ``"union"`` or ``"join"`` (see module docstring).
        compute_strategy: ``"auto"`` runs the vectorized batch data plane
            for programs implementing ``compute_batch`` and falls back to
            the per-vertex scalar path otherwise; ``"batch"`` requires the
            batch path (raising for programs without it); ``"scalar"``
            forces the per-vertex path (the parity/ablation foil).
        update_strategy: ``"auto"`` applies the paper's rule — replace the
            table unless the updated-tuple count is below
            ``replace_threshold`` × table size; ``"update"`` / ``"replace"``
            force one path (for the ablation).
        data_plane: ``"sql"`` stages every superstep through the
            relational engine (the paper's architecture: union input SQL,
            transform UDF, staging table, SQL apply); ``"shards"`` keeps
            vertex/edge/message state resident in hash-partitioned
            columnar shards — partitioned once at run setup — and routes
            messages between shards in-plane, touching the SQL tables
            only per the ``superstep_sync`` policy.  Both planes are
            bit-identical (the parity suite holds all shipped programs
            to it); the sharded plane skips the per-superstep union
            query, the global partition lexsort, and the message-table
            round trip.  The SQL-plane ablation knobs —
            ``input_strategy``, ``cache_edges``, ``update_strategy``,
            and ``replace_threshold`` — describe stages the sharded
            plane does not have and are ignored under ``"shards"``; run
            those ablations on the ``"sql"`` plane.
        superstep_sync: how eagerly the sharded plane mirrors its state
            back to the relational tables.  ``"every"`` (default) writes
            the vertex and message tables after each superstep — the
            legacy plane's observable behavior, so hybrid SQL, the demo
            console, and checkpoints see fresh state at any point;
            ``"halt"`` materializes only once the run completes (the
            fast path).  Ignored under ``data_plane="sql"``.
        cache_edges: under the ``"union"`` input strategy, decode the
            immutable edge relation once at superstep 0 and reuse the
            per-partition CSR edge arrays for every later superstep
            instead of re-projecting the edge table through SQL each
            time.  ``False`` re-reads edges every superstep (the
            pre-cache behavior, kept for the ablation).
        replace_threshold: fraction of the vertex table below which the
            in-place update path is used under ``"auto"``.
        use_combiner: honor the program's combiner declaration (pushed into
            SQL aggregation between supersteps).
        max_supersteps: overrides the program's cap when not ``None``.
        track_metrics: collect per-superstep statistics.
        checkpoint_every: Giraph-style fault tolerance — durably snapshot
            vertex/message/aggregator/program state into
            ``checkpoint_dir`` after every N completed supersteps (plus a
            baseline before superstep 0).  With a checkpoint on disk,
            transient mid-superstep faults roll the run back and replay
            instead of crashing it, and a killed run can be resumed.
            ``None`` (default) disables checkpointing.  Under
            ``superstep_sync="halt"`` the shard plane syncs its resident
            arrays at checkpoint boundaries only.
        checkpoint_dir: where run checkpoints live; required by
            ``checkpoint_every`` and ``resume``.
        resume: continue from the last durable checkpoint in
            ``checkpoint_dir`` (torn partial checkpoints are detected and
            discarded) — bit-identical to an uninterrupted run.  With no
            checkpoint present the run simply starts fresh.
        task_retries: bounded retry budget for transient faults: per
            shard task / extraction attempt, and for superstep-level
            rollback-and-replay when checkpointing is on.  0 disables
            retries.
        retry_backoff: base seconds of the capped deterministic
            exponential backoff between retries.
    """

    n_partitions: int = 4
    n_workers: int = 1
    executor: str = "auto"
    input_strategy: str = "union"
    compute_strategy: str = "auto"
    update_strategy: str = "auto"
    data_plane: str = "sql"
    superstep_sync: str = "every"
    cache_edges: bool = True
    replace_threshold: float = 0.05
    use_combiner: bool = True
    max_supersteps: int | None = None
    track_metrics: bool = True
    checkpoint_every: int | None = None
    checkpoint_dir: str | None = None
    resume: bool = False
    task_retries: int = 2
    retry_backoff: float = 0.01

    def validated(self) -> "VertexicaConfig":
        """Return self after checking invariants.

        Raises:
            VertexicaError: on out-of-range or unknown settings.
        """
        if self.n_partitions < 1:
            raise VertexicaError("n_partitions must be >= 1")
        if self.n_workers < 1:
            raise VertexicaError("n_workers must be >= 1")
        if self.executor not in ("auto", "serial", "threads", "processes"):
            raise VertexicaError(
                "executor must be 'auto', 'serial', 'threads', or "
                f"'processes', got {self.executor!r}"
            )
        if self.executor == "processes" and self.data_plane != "shards":
            raise VertexicaError(
                "executor='processes' requires data_plane='shards' "
                "(the SQL plane stages through the engine in-process)"
            )
        if self.input_strategy not in ("union", "join"):
            raise VertexicaError(
                f"input_strategy must be 'union' or 'join', got {self.input_strategy!r}"
            )
        if self.compute_strategy not in ("auto", "batch", "scalar"):
            raise VertexicaError(
                "compute_strategy must be 'auto', 'batch', or 'scalar', "
                f"got {self.compute_strategy!r}"
            )
        if self.update_strategy not in ("auto", "update", "replace"):
            raise VertexicaError(
                "update_strategy must be 'auto', 'update', or 'replace', "
                f"got {self.update_strategy!r}"
            )
        if self.data_plane not in ("sql", "shards"):
            raise VertexicaError(
                f"data_plane must be 'sql' or 'shards', got {self.data_plane!r}"
            )
        if self.superstep_sync not in ("every", "halt"):
            raise VertexicaError(
                "superstep_sync must be 'every' or 'halt', "
                f"got {self.superstep_sync!r}"
            )
        if not 0.0 <= self.replace_threshold <= 1.0:
            raise VertexicaError("replace_threshold must be within [0, 1]")
        if self.max_supersteps is not None and self.max_supersteps < 1:
            raise VertexicaError("max_supersteps must be >= 1")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise VertexicaError("checkpoint_every must be >= 1")
        if self.checkpoint_every is not None and self.checkpoint_dir is None:
            raise VertexicaError("checkpoint_every requires checkpoint_dir")
        if self.resume and self.checkpoint_dir is None:
            raise VertexicaError("resume=True requires checkpoint_dir")
        if self.task_retries < 0:
            raise VertexicaError("task_retries must be >= 0")
        if self.retry_backoff < 0:
            raise VertexicaError("retry_backoff must be >= 0")
        return self

    def with_overrides(self, **kwargs: object) -> "VertexicaConfig":
        """A copy with some fields replaced (validated)."""
        return replace(self, **kwargs).validated()  # type: ignore[arg-type]
