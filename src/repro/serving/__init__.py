"""``repro.serving`` — the concurrent serving tier.

Turns the single-caller :class:`~repro.core.runner.Vertexica` facade
into a many-reader/one-writer service: an asyncio front door with
admission control (:mod:`~repro.serving.service`), snapshot-isolated
reads pinned to changelog versions (:mod:`~repro.serving.snapshot`), a
version-keyed LRU result cache (:mod:`~repro.serving.cache`), and
latency/queue/cache metrics (:mod:`~repro.serving.metrics`).

Typical use::

    vx = Vertexica(); vx.load_graph("g", src, dst)
    async with vx.serve(max_concurrency=8) as service:
        async with service.session() as s:
            hot = await s.run("g", PageRankProgram(iterations=5))
            neighbors = await s.one_hop("g", 42)
"""

from repro.serving.cache import CacheStats, ResultCache
from repro.serving.metrics import LatencyHistogram, ServingMetrics
from repro.serving.service import ServedResult, ServingSession, VertexicaService
from repro.serving.snapshot import Snapshot, SnapshotTableHandle

__all__ = [
    "VertexicaService",
    "ServingSession",
    "ServedResult",
    "Snapshot",
    "SnapshotTableHandle",
    "ResultCache",
    "CacheStats",
    "ServingMetrics",
    "LatencyHistogram",
]
