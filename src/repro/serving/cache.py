"""Version-keyed result cache for the serving tier.

Entries are keyed by ``(fingerprint, pinned base-table versions)`` —
the fingerprint identifies *what* was computed (a SQL statement, a
vertex program + config, a graph-view definition) and the version
component identifies *over which data*.  By the version/uid contract
(:mod:`repro.engine.changelog`), equal keys imply bit-identical inputs,
so a hit may be served verbatim; any write to a base table advances its
version and thereby changes every dependent key.  Invalidation is
therefore **precise and implicit**: stale entries simply stop being
addressable and age out of the LRU — no invalidation walks, no
over-broad flushes, no TTL guesswork.

Eviction is LRU under a byte budget (results hold numpy-backed record
batches, so "number of entries" is a poor proxy for memory).
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Callable, Hashable, Iterable

import numpy as np

__all__ = ["CacheStats", "ResultCache", "fingerprint_text", "estimate_nbytes"]

#: Default cache byte budget (64 MiB).
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024


def fingerprint_text(*parts: Any) -> str:
    """A stable digest of heterogeneous key material (statement text,
    config scalars, view definitions).  Parts are JSON-encoded with
    sorted keys so logically equal inputs fingerprint equally."""
    payload = json.dumps(parts, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()


def estimate_nbytes(value: Any) -> int:
    """Approximate retained bytes of a cached result.

    Walks the common shapes a serving result takes — record batches
    (column values + validity arrays), plain dicts/lists/tuples, numpy
    arrays, strings — and charges a small flat overhead for everything
    else.  An estimate is all the LRU needs; it only has to be
    *monotone* in actual memory use, not exact.
    """
    return _nbytes(value, seen=set())


def _nbytes(value: Any, seen: set[int]) -> int:
    if value is None or isinstance(value, (bool, int, float)):
        return 8
    if id(value) in seen:  # shared references charge once
        return 0
    seen.add(id(value))
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, (str, bytes)):
        return len(value)
    if isinstance(value, dict):
        return 64 + sum(_nbytes(k, seen) + _nbytes(v, seen) for k, v in value.items())
    if isinstance(value, (list, tuple, set, frozenset)):
        return 64 + sum(_nbytes(item, seen) for item in value)
    # RecordBatch / Result / Column / stats dataclasses: charge their
    # public containers via __dict__ or __slots__.
    state = getattr(value, "__dict__", None)
    if state is None:
        slots = getattr(type(value), "__slots__", ())
        state = {name: getattr(value, name) for name in slots if hasattr(value, name)}
    if state:
        return 64 + sum(_nbytes(v, seen) for v in state.values())
    return 64


@dataclass
class CacheStats:
    """Counters for cache observability (also surfaced by
    :class:`~repro.serving.metrics.ServingMetrics`)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    current_bytes: int = 0
    current_entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction of all lookups (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "current_bytes": self.current_bytes,
            "current_entries": self.current_entries,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _Entry:
    value: Any
    nbytes: int
    tables: frozenset[str]


#: Private miss sentinel: ``None`` (and every other falsy value) is a
#: legitimate cached result, so lookups distinguish "absent" from
#: "cached falsy" by identity against this object instead.
_MISS = object()


@dataclass
class ResultCache:
    """Thread-safe LRU over version-addressed results (module docstring).

    Keys are built by the caller as ``(fingerprint, snapshot_key)``
    tuples — any hashable works.  ``max_bytes <= 0`` disables caching
    entirely (every ``get`` misses, every ``put`` is dropped), which
    keeps the serving paths branch-free.
    """

    max_bytes: int = DEFAULT_CACHE_BYTES
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: "OrderedDict[Hashable, _Entry]" = field(default_factory=OrderedDict)
    _lock: Lock = field(default_factory=Lock)

    def get(self, key: Hashable) -> Any | None:
        """The cached value, marking it most-recently-used — or ``None``.

        ``None`` is ambiguous here (it is also a cacheable value);
        callers that must tell a miss from a cached falsy result use
        :meth:`lookup`.
        """
        value = self.lookup(key)
        return None if value is _MISS else value

    def lookup(self, key: Hashable) -> Any:
        """The cached value marked most-recently-used, or the private
        ``_MISS`` sentinel — the unambiguous form of :meth:`get`."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return _MISS
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.value

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any],
                       tables: Iterable[str] = ()) -> tuple[Any, bool]:
        """``(value, was_hit)`` — compute and admit on miss.

        The compute runs *outside* the cache lock: serving many
        concurrent misses must not serialize their computations behind
        one mutex.  Two racing misses for the same key may both compute;
        the second ``put`` just overwrites the first with an equal value
        (keys address immutable version-pinned results, so this is
        benign duplicated work, never an inconsistency).
        """
        value = self.lookup(key)
        if value is not _MISS:
            return value, True
        value = compute()
        self.put(key, value, tables)
        return value, False

    def put(self, key: Hashable, value: Any, tables: Iterable[str] = ()) -> None:
        """Admit ``value`` under ``key``; evict LRU entries over budget.

        ``tables`` (base-table names the result derives from) enables
        :meth:`invalidate_tables` for callers that want eager cleanup on
        wholesale operations — correctness never needs it (the version
        key already changed), it just frees memory sooner.
        """
        nbytes = estimate_nbytes(value)
        with self._lock:
            if self.max_bytes <= 0 or nbytes > self.max_bytes:
                return  # would evict everything and still not fit
            old = self._entries.pop(key, None)
            if old is not None:
                self.stats.current_bytes -= old.nbytes
            self._entries[key] = _Entry(value, nbytes, frozenset(tables))
            self.stats.current_bytes += nbytes
            while self.stats.current_bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self.stats.current_bytes -= evicted.nbytes
                self.stats.evictions += 1
            self.stats.current_entries = len(self._entries)

    def invalidate_tables(self, names: Iterable[str]) -> int:
        """Eagerly drop every entry derived from any of ``names``
        (lower-cased catalog spelling).  Returns the number dropped."""
        targets = {name.lower() for name in names}
        with self._lock:
            doomed = [key for key, entry in self._entries.items()
                      if entry.tables & targets]
            for key in doomed:
                entry = self._entries.pop(key)
                self.stats.current_bytes -= entry.nbytes
                self.stats.invalidations += 1
            self.stats.current_entries = len(self._entries)
            return len(doomed)

    def clear(self) -> None:
        """Drop everything (counters other than size survive)."""
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()
            self.stats.current_bytes = 0
            self.stats.current_entries = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries
