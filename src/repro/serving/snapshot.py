"""Snapshot-isolated read views over pinned table versions.

A :class:`Snapshot` pins a consistent set of ``(uid, version, batch)``
bookmarks via :meth:`Database.pin_tables` — the same version/uid
contract change capture runs on (see :mod:`repro.engine.changelog`).
Because record batches are immutable and every mutation swaps pointers,
pinning copies nothing: analytics and graph extraction read a stable
snapshot while DML streams in on the writer path.

Two read styles, matching the two costs a reader may want to pay:

* **shadow database** (:meth:`Snapshot.reader`) — materialize detached
  copy-on-write :class:`~repro.engine.table.Table` handles over the
  pinned batches inside a private :class:`Database`.  Arbitrary SQL and
  whole Vertexica runs execute against it, fully isolated from the live
  writer; a fresh shadow is O(#tables), not O(rows).
* **version-checked handle** (:meth:`Snapshot.table`) — read *through*
  the live table but prove it still is the pinned ``(uid, version)``
  first, raising :class:`~repro.errors.SnapshotInvalid` loudly when the
  writer moved on (DML bumps the version; wholesale replace/truncate
  bump too; DROP + CREATE, rollback, and checkpoint restore change the
  uid), instead of silently serving a torn read.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.batch import RecordBatch
from repro.engine.database import Database, PinnedTable
from repro.errors import CatalogError, SnapshotInvalid

__all__ = ["Snapshot", "SnapshotTableHandle", "snapshot_key"]


def snapshot_key(pins: Sequence[PinnedTable]) -> tuple[tuple[str, int, int], ...]:
    """A hashable fingerprint of a pinned table set: sorted
    ``(name, uid, version)`` triples.  Equal keys imply bit-identical
    base data (the version/uid contract), which is what makes it safe
    to serve a cached result in place of recomputation."""
    return tuple(sorted((p.name, p.uid, p.version) for p in pins))


class SnapshotTableHandle:
    """Version-checked access to one pinned table (see module docstring)."""

    __slots__ = ("_db", "pin")

    def __init__(self, db: Database, pin: PinnedTable) -> None:
        self._db = db
        self.pin = pin

    @property
    def name(self) -> str:
        return self.pin.name

    @property
    def version(self) -> int:
        return self.pin.version

    def data(self) -> RecordBatch:
        """The pinned contents — always safe, never torn (the batch is
        immutable and references the data exactly as of the pin)."""
        return self.pin.batch

    def is_current(self) -> bool:
        """True while the live table still matches the pin."""
        try:
            with self._db.lock:
                table = self._db.catalog.get(self.pin.name)
                return table.uid == self.pin.uid and table.version == self.pin.version
        except CatalogError:
            return False

    def live_data(self) -> RecordBatch:
        """Read through the live table, proving it is still the pinned
        ``(uid, version)`` first.

        Raises:
            SnapshotInvalid: the table advanced, was wholesale-replaced,
                truncated, restored, or dropped since the pin.
        """
        with self._db.lock:
            try:
                table = self._db.catalog.get(self.pin.name)
            except CatalogError:
                raise SnapshotInvalid(
                    f"table {self.pin.name!r} was dropped after the snapshot "
                    f"was pinned at version {self.pin.version}"
                ) from None
            if table.uid != self.pin.uid:
                raise SnapshotInvalid(
                    f"table {self.pin.name!r} was replaced wholesale (dropped/"
                    f"recreated, restored, or rolled back) after the snapshot "
                    f"was pinned at version {self.pin.version}"
                )
            if table.version != self.pin.version:
                raise SnapshotInvalid(
                    f"table {self.pin.name!r} advanced from pinned version "
                    f"{self.pin.version} to {table.version}"
                )
            return table.data()


class Snapshot:
    """A consistent read view over a set of pinned tables."""

    def __init__(self, db: Database, pins: dict[str, PinnedTable]) -> None:
        self._db = db
        self.pins = pins

    @classmethod
    def pin(cls, db: Database, tables: Sequence[str] | None = None) -> "Snapshot":
        """Pin ``tables`` (all tables when ``None``) of ``db`` — a
        consistent cut taken under the engine lock.

        Raises:
            SnapshotInvalid: a requested table does not exist.
        """
        try:
            return cls(db, db.pin_tables(tables))
        except CatalogError as exc:
            raise SnapshotInvalid(f"cannot pin snapshot: {exc}") from exc

    # ------------------------------------------------------------------
    @property
    def versions(self) -> dict[str, int]:
        """Pinned version per table."""
        return {name: pin.version for name, pin in self.pins.items()}

    def key(self, tables: Sequence[str] | None = None) -> tuple:
        """Cache-key component for the pinned versions of ``tables``
        (default: every pinned table).  See :func:`snapshot_key`.

        Raises:
            SnapshotInvalid: a requested table is not part of this
                snapshot.
        """
        if tables is None:
            pins: Sequence[PinnedTable] = list(self.pins.values())
        else:
            pins = [self._pin_of(name) for name in tables]
        return snapshot_key(pins)

    def _pin_of(self, name: str) -> PinnedTable:
        pin = self.pins.get(name.lower())
        if pin is None:
            raise SnapshotInvalid(f"table {name!r} is not part of this snapshot")
        return pin

    def table(self, name: str) -> SnapshotTableHandle:
        """A version-checked handle on one pinned table."""
        return SnapshotTableHandle(self._db, self._pin_of(name))

    def validate(self, tables: Sequence[str] | None = None) -> None:
        """Prove the live database still matches the pins (all of them,
        or just ``tables``).

        Raises:
            SnapshotInvalid: some pinned table moved on.
        """
        names = list(self.pins) if tables is None else list(tables)
        for name in names:
            self.table(name).live_data()

    # ------------------------------------------------------------------
    def reader(self, tables: Sequence[str] | None = None) -> Database:
        """A private shadow :class:`Database` over the pinned batches.

        Contains copy-on-write table handles for ``tables`` (default:
        every pinned table) — zero data copies, fresh catalog.  The
        shadow is the *reader's own*: queries, graph extraction, and
        vertex-program runs against it never observe (or disturb) the
        live writer.  Each call builds a fresh shadow, so runs that
        mutate their vertex/message tables start from pristine pinned
        state every time.
        """
        names = list(self.pins) if tables is None else list(tables)
        shadow = Database()
        for name in names:
            shadow.catalog.register(self._pin_of(name).as_table())
        return shadow

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Snapshot({len(self.pins)} tables pinned)"
