"""Admission-control accounting and serving-tier metrics.

The serving tier is judged on tail latency under concurrency, so its
observability is latency histograms rather than averages: fixed
log-spaced buckets (~2 per decade from 10 µs to 100 s), cheap to update
under a lock, quantile-queryable without retaining samples.  Two
histograms per service — **wait** (admission to execution start: queue
pressure) and **serve** (execution itself) — plus gauge/counter state
for queue depth, in-flight requests, admission rejections, and the
cache's hit/miss/bypass split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from threading import Lock

from repro.serving.cache import CacheStats

__all__ = ["LatencyHistogram", "ServingMetrics"]

#: Histogram bucket upper bounds in seconds (log-spaced, ~2/decade),
#: final bucket is the +Inf overflow.
_BUCKET_BOUNDS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
    1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0, 100.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimation."""

    __slots__ = ("counts", "count", "total", "max_seen")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.max_seen = 0.0

    def observe(self, seconds: float) -> None:
        for i, bound in enumerate(_BUCKET_BOUNDS):
            if seconds <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max_seen:
            self.max_seen = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile sample,
        clamped to ``max_seen`` (0.0 when empty).  Conservative — true
        latency is ≤ the answer — but never above the observed maximum:
        without the clamp, samples faster than the first bucket bound
        would report p50 > max in the metrics output."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank and n:
                bound = _BUCKET_BOUNDS[i] if i < len(_BUCKET_BOUNDS) else self.max_seen
                return min(bound, self.max_seen)
        return self.max_seen

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean_s": round(self.mean, 6),
            "p50_s": self.quantile(0.50),
            "p95_s": self.quantile(0.95),
            "p99_s": self.quantile(0.99),
            "max_s": round(self.max_seen, 6),
        }


@dataclass
class ServingMetrics:
    """All counters and histograms for one :class:`VertexicaService`.

    ``cache`` aliases the service's live :class:`CacheStats` (hits and
    misses there are bumped by the cache itself); ``bypassed`` counts
    requests that never consulted the cache — writes and explicitly
    uncached reads.
    """

    wait: LatencyHistogram = field(default_factory=LatencyHistogram)
    serve: LatencyHistogram = field(default_factory=LatencyHistogram)
    cache: CacheStats = field(default_factory=CacheStats)
    admitted: int = 0
    rejected: int = 0
    bypassed: int = 0
    writes: int = 0
    snapshot_invalid: int = 0
    queue_depth: int = 0
    in_flight: int = 0
    max_queue_depth: int = 0
    max_in_flight: int = 0
    _lock: Lock = field(default_factory=Lock)

    # -- request lifecycle (called by the service) ---------------------
    def enqueued(self) -> None:
        with self._lock:
            self.queue_depth += 1
            self.max_queue_depth = max(self.max_queue_depth, self.queue_depth)

    def started(self, waited_s: float) -> None:
        with self._lock:
            self.queue_depth -= 1
            self.in_flight += 1
            self.max_in_flight = max(self.max_in_flight, self.in_flight)
            self.admitted += 1
            self.wait.observe(waited_s)

    def finished(self, served_s: float) -> None:
        with self._lock:
            self.in_flight -= 1
            self.serve.observe(served_s)

    def dropped(self) -> None:
        """A queued request was rejected by admission control."""
        with self._lock:
            self.queue_depth -= 1
            self.rejected += 1

    def bypass(self) -> None:
        with self._lock:
            self.bypassed += 1

    def write(self) -> None:
        with self._lock:
            self.writes += 1

    def snapshot_invalidated(self) -> None:
        with self._lock:
            self.snapshot_invalid += 1

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, object]:
        """One JSON-friendly dict for bench output and the demo console."""
        with self._lock:
            return {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "writes": self.writes,
                "bypassed": self.bypassed,
                "snapshot_invalid": self.snapshot_invalid,
                "queue_depth": self.queue_depth,
                "in_flight": self.in_flight,
                "max_queue_depth": self.max_queue_depth,
                "max_in_flight": self.max_in_flight,
                "wait": self.wait.as_dict(),
                "serve": self.serve.as_dict(),
                "cache": self.cache.as_dict(),
            }
