"""The asyncio front door: concurrent sessions over one Vertexica.

:class:`VertexicaService` turns a single-caller :class:`Vertexica` into
a serving tier: many concurrent readers, one streaming writer, and an
event loop that never blocks on engine work.

The contract, end to end:

* **Admission** — at most ``max_concurrency`` requests execute at once;
  at most ``max_queue`` more may wait.  Beyond that the service fails
  fast with :class:`~repro.errors.AdmissionError` (marked transient, so
  ``faults.retry_call`` and client retry loops treat it as backpressure,
  not breakage).  Engine work runs on a bounded thread pool via
  ``run_in_executor``; the event loop only ever coordinates.
* **Snapshot isolation** — every read pins the versions of exactly the
  tables it depends on (:class:`~repro.serving.snapshot.Snapshot`) and
  executes against a private shadow database over the pinned immutable
  batches.  A writer streaming DML on the live database is invisible to
  in-flight reads; reads are bit-identical to a serial execution at the
  pinned versions.
* **Version-keyed caching** — results are cached under
  ``(fingerprint, pinned versions)`` (:mod:`repro.serving.cache`), so a
  repeated query/run/extraction at an unchanged version is O(1) and any
  write precisely invalidates exactly the results it staled.  Cached
  run stats carry ``served_from_cache=True``.
* **Write path** — non-SELECT statements bypass snapshots and the cache
  entirely: they execute on the live database, serialized behind an
  asyncio writer lock (the engine lock below it makes individual
  statements atomic against pinning).

Sessions (:class:`ServingSession`, from :meth:`VertexicaService.session`)
add per-session concurrency limits and counters on top — the unit a
connection handler would hold.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Any, Callable, Sequence, TypeVar

from repro.core.config import VertexicaConfig
from repro.core.program import VertexProgram
from repro.core.recovery import program_fingerprint
from repro.core.runner import Vertexica, VertexicaResult
from repro.core.storage import GraphHandle, GraphStorage
from repro.engine.database import Database, Result
from repro.engine.sql.ast import SelectStatement, SetOperation, referenced_tables
from repro.engine.sql.parser import parse_statement
from repro.errors import AdmissionError, ServingError, SnapshotInvalid
from repro.graphview.catalog import view_fingerprint
from repro.graphview.maintenance import involved_tables
from repro.graphview.view import GraphViewHandle
from repro.serving.cache import DEFAULT_CACHE_BYTES, ResultCache, fingerprint_text
from repro.serving.metrics import ServingMetrics
from repro.serving.snapshot import Snapshot
from repro import sql_graph as _sql_graph

__all__ = ["VertexicaService", "ServingSession", "ServedResult"]

T = TypeVar("T")

#: sql_graph algorithms servable by name via :meth:`ServingSession.sql_graph`.
SQL_GRAPH_ALGORITHMS: dict[str, Callable[..., Any]] = {
    name: getattr(_sql_graph, name)
    for name in (
        "pagerank_sql",
        "shortest_paths_sql",
        "connected_components_sql",
        "triangle_count_sql",
        "per_node_triangle_counts_sql",
        "strong_overlap_sql",
        "weak_ties_sql",
        "local_clustering_coefficients",
        "global_clustering_coefficient",
    )
}


@dataclasses.dataclass(frozen=True)
class ServedResult:
    """One served read: the value, provenance, and the pinned versions.

    ``versions`` is the snapshot key the read executed at — sorted
    ``(table, uid, version)`` triples — which is exactly what a client
    needs to reproduce the read serially (the fuzz suite does) or to
    reason about staleness.  Writes come back with empty ``versions``.
    """

    value: Any
    from_cache: bool
    versions: tuple = ()


class VertexicaService:
    """Concurrent serving facade over one :class:`Vertexica` (module
    docstring has the full contract).

    Args:
        vx: the live Vertexica instance (shared with the writer).
        max_concurrency: executing-request cap (thread-pool width).
        max_queue: waiting-request cap before :class:`AdmissionError`.
        cache_bytes: result-cache budget; ``0`` disables caching.
        session_inflight: default per-session concurrent-request cap.
    """

    def __init__(
        self,
        vx: Vertexica,
        *,
        max_concurrency: int = 8,
        max_queue: int = 64,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        session_inflight: int = 4,
    ) -> None:
        if max_concurrency < 1:
            raise ServingError("max_concurrency must be >= 1")
        if max_queue < 0:
            raise ServingError("max_queue must be >= 0")
        self.vx = vx
        self.db: Database = vx.db
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self.session_inflight = session_inflight
        self.cache = ResultCache(max_bytes=cache_bytes)
        self.metrics = ServingMetrics(cache=self.cache.stats)
        self._slots = asyncio.Semaphore(max_concurrency)
        self._writer_lock = asyncio.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="vertexica-serve"
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "VertexicaService":
        return self

    async def __aexit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut the executor down; subsequent requests are refused."""
        self._closed = True
        self._executor.shutdown(wait=True)

    def session(self, *, max_inflight: int | None = None) -> "ServingSession":
        """A new session (use as ``async with service.session() as s:``)."""
        return ServingSession(
            self, max_inflight=max_inflight or self.session_inflight
        )

    def stats(self) -> dict[str, object]:
        """Metrics snapshot: admission, latency histograms, cache."""
        return self.metrics.summary()

    # ------------------------------------------------------------------
    # Admission + executor plumbing
    # ------------------------------------------------------------------
    @contextlib.asynccontextmanager
    async def _admitted(self):
        """Admission-controlled slot: queue-cap check, bounded wait,
        wait/serve latency accounting."""
        if self._closed:
            raise ServingError("service is closed")
        # Reject only when every slot is busy AND the wait queue is full
        # (no awaits between this check and the acquire, so the answer
        # cannot go stale under the single-threaded event loop).
        if self._slots.locked() and self.metrics.queue_depth >= self.max_queue:
            self.metrics.enqueued()
            self.metrics.dropped()
            raise AdmissionError(
                f"serving queue full ({self.max_queue} waiting); retry later"
            )
        self.metrics.enqueued()
        waited_from = perf_counter()
        try:
            await self._slots.acquire()
        except BaseException:
            self.metrics.dropped()  # cancelled while queued
            raise
        self.metrics.started(perf_counter() - waited_from)
        served_from = perf_counter()
        try:
            yield
        finally:
            self._slots.release()
            self.metrics.finished(perf_counter() - served_from)

    async def _offload(self, fn: Callable[[], T]) -> T:
        """Run blocking engine work on the bounded pool."""
        return await asyncio.get_running_loop().run_in_executor(self._executor, fn)

    async def _serve_read(
        self,
        kind: str,
        fingerprint: Any,
        tables: Sequence[str],
        compute: Callable[[Snapshot], Any],
        *,
        cached: bool = True,
        at: Snapshot | None = None,
    ) -> ServedResult:
        """The one read path every session call funnels through:
        admit -> pin -> cache lookup -> shadow compute -> admit to cache.

        ``compute`` receives the pinned snapshot and runs on the
        executor; it must touch only the snapshot's shadow state.
        """
        async with self._admitted():
            def work() -> ServedResult:
                snap = at if at is not None else Snapshot.pin(self.db, tables)
                versions = snap.key(tables if at is not None else None)
                if not cached:
                    self.metrics.bypass()
                    return ServedResult(compute(snap), False, versions)
                key = (kind, fingerprint, versions)
                value, hit = self.cache.get_or_compute(
                    key, lambda: compute(snap), tables
                )
                return ServedResult(value, hit, versions)

            try:
                return await self._offload(work)
            except SnapshotInvalid:
                self.metrics.snapshot_invalidated()
                raise

    async def _serve_write(self, fn: Callable[[], T]) -> T:
        """Writes: admitted like everything else, serialized behind the
        writer lock, never cached (bypass counters tell the story)."""
        async with self._admitted():
            async with self._writer_lock:
                self.metrics.write()
                return await self._offload(fn)


class ServingSession:
    """One client's handle on the service: per-session inflight limits
    and counters over the shared admission control.

    Use as an async context manager; a closed session refuses requests::

        async with service.session() as s:
            r = await s.sql("SELECT COUNT(*) AS n FROM edges")
    """

    def __init__(self, service: VertexicaService, *, max_inflight: int) -> None:
        if max_inflight < 1:
            raise ServingError("max_inflight must be >= 1")
        self.service = service
        self._gate = asyncio.Semaphore(max_inflight)
        self._closed = False
        self.requests = 0
        self.cache_hits = 0

    async def __aenter__(self) -> "ServingSession":
        return self

    async def __aexit__(self, *exc: object) -> None:
        self._closed = True

    @contextlib.asynccontextmanager
    async def _request(self):
        if self._closed:
            raise ServingError("session is closed")
        async with self._gate:
            self.requests += 1
            yield

    def _count(self, served: ServedResult) -> ServedResult:
        if served.from_cache:
            self.cache_hits += 1
        return served

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    async def sql(
        self,
        statement: str,
        params: Sequence[Any] | None = None,
        *,
        cached: bool = True,
        at: Snapshot | None = None,
    ) -> ServedResult:
        """Serve one SQL statement.

        SELECTs pin the tables they reference and run on a shadow
        (snapshot-isolated, cache-eligible); everything else takes the
        serialized write path against the live database.  ``at`` pins a
        SELECT to an existing snapshot (repeatable reads across calls).
        """
        svc = self.service
        stmt = parse_statement(statement, params)
        async with self._request():
            if not isinstance(stmt, (SelectStatement, SetOperation)):
                if at is not None:
                    raise ServingError("writes cannot run against a snapshot")
                result = await svc._serve_write(
                    lambda: svc.db.execute(statement, params)
                )
                return ServedResult(result, False)
            tables = sorted(referenced_tables(stmt))
            served = await svc._serve_read(
                "sql",
                fingerprint_text(statement, list(params or ())),
                tables,
                lambda snap: snap.reader(tables).execute(statement, params),
                cached=cached,
                at=at,
            )
            return self._count(served)

    async def run(
        self,
        graph: GraphHandle | str,
        program: VertexProgram,
        *,
        cached: bool = True,
        **overrides: Any,
    ) -> VertexicaResult:
        """Run a vertex program at a pinned snapshot of the graph's
        edge/node tables, serving repeats from the cache.

        A fresh shadow Vertexica executes each miss, so the live
        database never sees the run's vertex/message/output tables and
        concurrent DML never sees a half-done run.  Cache hits return a
        result whose stats carry ``served_from_cache=True``.
        """
        svc = self.service
        name = graph if isinstance(graph, str) else graph.name
        config = (
            svc.vx.config.with_overrides(**overrides) if overrides else svc.vx.config
        )
        tables = [f"{name}_edge", f"{name}_node"]

        def compute(snap: Snapshot) -> VertexicaResult:
            shadow_vx = Vertexica(db=snap.reader(tables), config=config)
            return shadow_vx.run(name, program)

        async with self._request():
            served = await svc._serve_read(
                "run",
                (name, program_fingerprint(program),
                 fingerprint_text(dataclasses.asdict(config))),
                tables,
                compute,
                cached=cached,
            )
        self._count(served)
        result: VertexicaResult = served.value
        if not served.from_cache:
            return result
        stats = dataclasses.replace(
            result.stats,
            supersteps=[
                dataclasses.replace(s, served_from_cache=True)
                for s in result.stats.supersteps
            ],
            served_from_cache=True,
        )
        return VertexicaResult(values=dict(result.values), stats=stats)

    async def one_hop(
        self, graph: GraphHandle | str, vertex: int, *, cached: bool = True
    ) -> ServedResult:
        """The out-neighbors of one vertex at a pinned snapshot — the
        classic point-read a serving tier exists for.  Value is a sorted
        list of neighbor ids."""
        svc = self.service
        name = graph if isinstance(graph, str) else graph.name
        edge_table = f"{name}_edge"

        def compute(snap: Snapshot) -> list[int]:
            result = snap.reader([edge_table]).execute(
                f"SELECT dst FROM {edge_table} WHERE src = ? ORDER BY dst",
                [int(vertex)],
            )
            return [int(v) for v in result.batch.column("dst").values]

        async with self._request():
            served = await svc._serve_read(
                "one_hop", (name, int(vertex)), [edge_table], compute, cached=cached
            )
            return self._count(served)

    async def sql_graph(
        self, algorithm: str, graph: GraphHandle | str, *, cached: bool = True,
        **kwargs: Any,
    ) -> ServedResult:
        """Serve a :mod:`repro.sql_graph` algorithm by name (e.g.
        ``"triangle_count_sql"``, ``"pagerank_sql"``) at a pinned
        snapshot.  Scratch tables land in the shadow, never the live db.
        """
        svc = self.service
        fn = SQL_GRAPH_ALGORITHMS.get(algorithm)
        if fn is None:
            raise ServingError(
                f"unknown sql_graph algorithm {algorithm!r}; "
                f"one of {sorted(SQL_GRAPH_ALGORITHMS)}"
            )
        name = graph if isinstance(graph, str) else graph.name
        tables = [f"{name}_edge", f"{name}_node"]

        def compute(snap: Snapshot) -> Any:
            shadow = snap.reader(tables)
            handle = GraphStorage(shadow).handle(name)
            return fn(shadow, handle, **kwargs)

        async with self._request():
            served = await svc._serve_read(
                "sql_graph",
                (algorithm, name, fingerprint_text(kwargs)),
                tables,
                compute,
                cached=cached,
            )
            return self._count(served)

    async def extract_view(
        self, name: str, *, cached: bool = True
    ) -> ServedResult:
        """Extract a declared graph view at a pinned snapshot of its
        base tables, cached by ``(view fingerprint, base versions)``.

        Value is a dict with the extracted ``num_vertices`` /
        ``num_edges`` and the edge table as a :class:`Result` — the
        cacheable serving unit GraphGen-style workloads repeat.
        """
        svc = self.service
        handle = svc.vx.graph_view(name)  # GraphViewError if undeclared
        view = handle.view
        tables = sorted(involved_tables(view))

        def compute(snap: Snapshot) -> dict[str, Any]:
            shadow = snap.reader(tables)
            extracted = GraphViewHandle(
                shadow, GraphStorage(shadow), name, view, materialized=False
            ).resolve()
            edges = shadow.execute(
                f"SELECT src, dst, weight FROM {extracted.edge_table} "
                f"ORDER BY src, dst"
            )
            return {
                "num_vertices": extracted.num_vertices,
                "num_edges": extracted.num_edges,
                "edges": edges,
            }

        async with self._request():
            served = await svc._serve_read(
                "view", view_fingerprint(view), tables, compute, cached=cached
            )
            return self._count(served)

    # ------------------------------------------------------------------
    # Snapshots and writes
    # ------------------------------------------------------------------
    async def snapshot(self, tables: Sequence[str] | None = None) -> Snapshot:
        """Pin a snapshot for repeatable reads (pass to ``sql(at=...)``)."""
        svc = self.service
        async with self._request():
            return await svc._offload(lambda: Snapshot.pin(svc.db, tables))

    async def execute_write(self, statement: str,
                            params: Sequence[Any] | None = None) -> Result:
        """Explicit write-path escape hatch (no parse-based routing)."""
        svc = self.service
        async with self._request():
            return await svc._serve_write(lambda: svc.db.execute(statement, params))
