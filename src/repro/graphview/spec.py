"""The graph-view DSL: declare the graph hidden inside relational tables.

The paper's pitch is that graphs already live in ordinary normalized
schemas (users/follows, orders/products, authors/papers); a
:class:`GraphView` names exactly where.  Each view is a set of *node
specs* (which table column provides vertex ids) and *edge specs* (either
a table whose rows are edges, or a join-derived co-occurrence through a
shared foreign key), all compiled down to set-oriented SQL by
:mod:`repro.graphview.compiler`.

Example — a follower graph plus a "liked the same post" graph over a
normalized 3-table schema::

    view = GraphView(
        vertices=NodeSpec("users", key="id"),
        edges=[
            EdgeSpec("follows", src="follower_id", dst="followee_id",
                     weight="closeness"),
            CoEdgeSpec("likes", member="user_id", via="post_id"),
        ],
    )

``where`` and ``weight`` accept plain SQL expressions over the source
table's columns; they are validated when the view is compiled/extracted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.errors import GraphViewError

__all__ = ["NodeSpec", "EdgeSpec", "CoEdgeSpec", "EdgeSource", "GraphView"]


def _require_identifier(value: str, what: str) -> None:
    if not isinstance(value, str) or not value.isidentifier():
        raise GraphViewError(f"{what} must be a SQL identifier, got {value!r}")


@dataclass(frozen=True)
class NodeSpec:
    """One vertex source: ``key`` column of ``table`` provides integer ids.

    Attributes:
        table: base table holding one row per (candidate) vertex.
        key: column with the integer vertex id.
        where: optional SQL filter over the table's columns.
    """

    table: str
    key: str
    where: str | None = None

    def validate(self) -> None:
        """Check identifier fields.

        Raises:
            GraphViewError: on a malformed table or column name.
        """
        _require_identifier(self.table, "NodeSpec.table")
        _require_identifier(self.key, "NodeSpec.key")


@dataclass(frozen=True)
class EdgeSpec:
    """One edge source: each row of ``table`` is an edge ``src -> dst``.

    Attributes:
        table: base table holding one row per edge.
        src, dst: endpoint id columns.
        weight: optional SQL expression for the edge weight (default 1.0).
        where: optional SQL filter over the table's columns.
        directed: ``False`` also emits every reverse edge, so undirected
            algorithms (connected components, triangle counting) see both
            directions.
    """

    table: str
    src: str
    dst: str
    weight: str | None = None
    where: str | None = None
    directed: bool = True

    def validate(self) -> None:
        """Check identifier fields.

        Raises:
            GraphViewError: on a malformed table or column name.
        """
        _require_identifier(self.table, "EdgeSpec.table")
        _require_identifier(self.src, "EdgeSpec.src")
        _require_identifier(self.dst, "EdgeSpec.dst")


@dataclass(frozen=True)
class CoEdgeSpec:
    """Join-derived co-occurrence edges through a shared foreign key.

    Two rows of ``table`` with the same ``via`` value connect their
    ``member`` values: users liking the same post, products in the same
    order, authors on the same paper.  Compiles to a self-join grouped on
    the member pair; both directions are always emitted (co-occurrence is
    symmetric), so the extracted relation is ready for undirected and
    directed algorithms alike.

    Attributes:
        table: the associative (junction) table.
        member: column providing the vertex ids to connect.
        via: the shared foreign-key column.
        weight: optional SQL *aggregate* over the co-occurrence group
            (default ``COUNT(*)`` — the number of shared ``via`` keys).
        where: optional SQL filter applied to the table before the join.
    """

    table: str
    member: str
    via: str
    weight: str | None = None
    where: str | None = None

    def validate(self) -> None:
        """Check identifier fields.

        Raises:
            GraphViewError: on a malformed table or column name.
        """
        _require_identifier(self.table, "CoEdgeSpec.table")
        _require_identifier(self.member, "CoEdgeSpec.member")
        _require_identifier(self.via, "CoEdgeSpec.via")
        if self.member == self.via:
            raise GraphViewError(
                "CoEdgeSpec.member and CoEdgeSpec.via must be different columns"
            )


EdgeSource = Union[EdgeSpec, CoEdgeSpec]


def _as_tuple(specs, kinds, what: str) -> tuple:
    if isinstance(specs, kinds):
        return (specs,)
    try:
        out = tuple(specs)
    except TypeError:
        raise GraphViewError(f"{what} must be a spec or a sequence of specs")
    for spec in out:
        if not isinstance(spec, kinds):
            raise GraphViewError(
                f"{what} entries must be {' / '.join(k.__name__ for k in kinds)}, "
                f"got {type(spec).__name__}"
            )
    return out


@dataclass(frozen=True)
class GraphView:
    """A declarative graph extracted from relational tables.

    Attributes:
        vertices: one or more :class:`NodeSpec`.  The extracted vertex set
            is the union of all node specs *plus* every edge endpoint
            (edges never dangle).
        edges: one or more :class:`EdgeSpec` / :class:`CoEdgeSpec`; their
            extracted edge lists are concatenated.
        name: optional default name used when the view is materialized
            anonymously.
    """

    vertices: tuple[NodeSpec, ...] = ()
    edges: tuple[EdgeSource, ...] = ()
    name: str | None = None

    def __init__(
        self,
        vertices: NodeSpec | Sequence[NodeSpec] = (),
        edges: EdgeSource | Sequence[EdgeSource] = (),
        name: str | None = None,
    ) -> None:
        object.__setattr__(self, "vertices", _as_tuple(vertices, (NodeSpec,), "vertices"))
        object.__setattr__(
            self, "edges", _as_tuple(edges, (EdgeSpec, CoEdgeSpec), "edges")
        )
        object.__setattr__(self, "name", name)
        self.validate()

    def validate(self) -> None:
        """Check the view is non-trivial and every spec is well-formed.

        Raises:
            GraphViewError: empty view or malformed spec.
        """
        if not self.vertices and not self.edges:
            raise GraphViewError("a GraphView needs at least one node or edge spec")
        if self.name is not None and not self.name.isidentifier():
            raise GraphViewError(f"GraphView.name must be an identifier, got {self.name!r}")
        for spec in (*self.vertices, *self.edges):
            spec.validate()
