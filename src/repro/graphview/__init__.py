"""``repro.graphview`` — declarative graph extraction from relational tables.

The "relational friend" half of the paper: graphs usually already exist
inside normalized schemas, as foreign keys and junction tables.  This
package lets users *declare* that graph (:class:`GraphView` over
:class:`NodeSpec` / :class:`EdgeSpec` / :class:`CoEdgeSpec`), compiles the
declaration to set-oriented SQL, and loads the result into Vertexica's
vertex/edge tables — materialized with explicit ``refresh()``, or virtual
(re-extracted at every run).

Entry points: ``Vertexica.create_graph_view(...)`` for the Python DSL and
the ``CREATE [MATERIALIZED] GRAPH VIEW ... AS NODES(...) EDGES(...)``
SQL statement for the declarative surface.
"""

from repro.graphview.catalog import view_fingerprint, view_from_dict, view_to_dict
from repro.graphview.lowering import (
    EdgeSpecResult,
    ExtractionOptions,
    expand_co_occurrence,
)
from repro.graphview.spec import CoEdgeSpec, EdgeSpec, EdgeSource, GraphView, NodeSpec
from repro.graphview.view import (
    DEFAULT_DELTA_THRESHOLD,
    ExtractionStats,
    GraphViewHandle,
    extract_graph,
)

__all__ = [
    "GraphView",
    "NodeSpec",
    "EdgeSpec",
    "CoEdgeSpec",
    "EdgeSource",
    "GraphViewHandle",
    "ExtractionStats",
    "ExtractionOptions",
    "EdgeSpecResult",
    "expand_co_occurrence",
    "extract_graph",
    "DEFAULT_DELTA_THRESHOLD",
    "view_to_dict",
    "view_from_dict",
    "view_fingerprint",
]
