"""(De)serialization of the graph-view catalog for checkpoint/restore.

The view registry lives in the Vertexica layer, but durability belongs to
the engine: :meth:`Vertexica.checkpoint` serializes every registered view
through these helpers and ships the result as checkpoint *metadata*
(:func:`repro.engine.persistence.checkpoint_catalog`), so the registry
rides inside the manifest — covered by the same torn-checkpoint guarantee
as the tables it describes — and :meth:`Vertexica.restore` rebuilds the
handles without re-extracting anything: materialized views re-attach to
their persisted ``{name}_edge`` / ``{name}_node`` tables.

Everything here is plain JSON-able dicts; no pickle, no code execution.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.errors import GraphViewError
from repro.graphview.spec import CoEdgeSpec, EdgeSpec, GraphView, NodeSpec

__all__ = [
    "view_to_dict",
    "view_from_dict",
    "view_fingerprint",
    "handle_manifest",
    "MANIFEST_KEY",
]

#: Key under which the view catalog lives in checkpoint metadata.
MANIFEST_KEY = "graph_views"

_SPEC_KINDS = {"node": NodeSpec, "edge": EdgeSpec, "co_edge": CoEdgeSpec}


def _spec_to_dict(spec: NodeSpec | EdgeSpec | CoEdgeSpec) -> dict[str, Any]:
    if isinstance(spec, NodeSpec):
        return {"kind": "node", "table": spec.table, "key": spec.key, "where": spec.where}
    if isinstance(spec, EdgeSpec):
        return {
            "kind": "edge",
            "table": spec.table,
            "src": spec.src,
            "dst": spec.dst,
            "weight": spec.weight,
            "where": spec.where,
            "directed": spec.directed,
        }
    if isinstance(spec, CoEdgeSpec):
        return {
            "kind": "co_edge",
            "table": spec.table,
            "member": spec.member,
            "via": spec.via,
            "weight": spec.weight,
            "where": spec.where,
        }
    raise GraphViewError(f"cannot serialize spec type {type(spec).__name__}")


def _spec_from_dict(data: dict[str, Any]):
    kind = data.get("kind")
    cls = _SPEC_KINDS.get(kind)
    if cls is None:
        raise GraphViewError(f"unknown graph-view spec kind {kind!r} in checkpoint")
    fields = {k: v for k, v in data.items() if k != "kind"}
    return cls(**fields)


def view_to_dict(view: GraphView) -> dict[str, Any]:
    """A JSON-able description of a :class:`GraphView` declaration."""
    return {
        "name": view.name,
        "vertices": [_spec_to_dict(s) for s in view.vertices],
        "edges": [_spec_to_dict(s) for s in view.edges],
    }


def view_from_dict(data: dict[str, Any]) -> GraphView:
    """Rebuild a :class:`GraphView`; validation runs as usual, so a
    corrupted manifest fails loudly instead of registering a broken view.
    """
    return GraphView(
        vertices=[_spec_from_dict(s) for s in data.get("vertices", [])],
        edges=[_spec_from_dict(s) for s in data.get("edges", [])],
        name=data.get("name"),
    )


def view_fingerprint(view: GraphView) -> str:
    """A stable digest of a view *declaration* (specs, not data).

    Two views with equal fingerprints extract identically from identical
    base tables, so ``(view_fingerprint, pinned base-table versions)``
    is a sound serving-cache key for extraction results — the same
    keying discipline the result cache applies to SQL statements.
    """
    payload = json.dumps(view_to_dict(view), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def handle_manifest(handle) -> dict[str, Any]:
    """Serialize one :class:`~repro.graphview.view.GraphViewHandle`:
    declaration, freshness mode, threshold, and the base-table versions it
    last refreshed against."""
    return {
        "name": handle.name,
        "materialized": handle.materialized,
        "delta_threshold": handle.delta_threshold,
        "view": view_to_dict(handle.view),
        "base_table_versions": handle.base_table_versions(),
    }
