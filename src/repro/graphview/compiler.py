"""Lowering graph-view specs to the engine's SQL.

Every spec becomes one or two set-oriented SELECT statements producing
the canonical extraction schemas::

    node queries:  (id INTEGER)
    edge queries:  (src INTEGER, dst INTEGER, weight FLOAT)

The compiler only builds SQL text; :mod:`repro.graphview.view` executes
it and hands the resulting columns to storage as numpy arrays.  A small
expression renderer (:func:`render_expression`) turns parsed
:mod:`repro.engine.expressions` trees back into SQL so the
``CREATE GRAPH VIEW`` DDL path and the Python DSL share one lowering.
"""

from __future__ import annotations

import dataclasses

from repro.engine.sql.parser import parse_statement
from repro.engine.expressions import (
    Between,
    BinaryOp,
    CaseExpr,
    CastExpr,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LikeExpr,
    Literal,
    Star,
    UnaryOp,
)
from repro.errors import GraphViewError
from repro.graphview.spec import CoEdgeSpec, EdgeSpec, GraphView, NodeSpec

__all__ = [
    "node_queries",
    "edge_queries",
    "node_query",
    "edge_spec_queries",
    "co_edge_query",
    "co_edge_side_query",
    "qualify_predicate",
    "render_expression",
]


# ---------------------------------------------------------------------------
# Spec -> SQL
#
# Every builder takes an optional ``table`` override naming a different
# relation to read from.  Incremental maintenance uses this to run the
# *same* lowering (same filters, casts, weight expressions — hence
# bit-identical computed values) over scratch tables holding only a
# delta's rows instead of the full base table.
# ---------------------------------------------------------------------------
def _where_clause(where: str | None) -> str:
    return f" WHERE {where}" if where else ""


def node_query(spec: NodeSpec, table: str | None = None) -> str:
    """The ``SELECT ... AS id`` for one node spec."""
    return (
        f"SELECT CAST({spec.key} AS INTEGER) AS id "
        f"FROM {table or spec.table}{_where_clause(spec.where)}"
    )


def node_queries(view: GraphView) -> list[str]:
    """One ``SELECT ... AS id`` per node spec."""
    return [node_query(spec) for spec in view.vertices]


def edge_spec_queries(spec: EdgeSpec, table: str | None = None) -> list[str]:
    """The one or two ``SELECT src, dst, weight`` statements of an
    :class:`EdgeSpec` (undirected specs add the reversed projection)."""
    out = [_edge_sql(spec, reverse=False, table=table)]
    if not spec.directed:
        out.append(_edge_sql(spec, reverse=True, table=table))
    return out


def edge_queries(view: GraphView) -> list[str]:
    """One or two ``SELECT src, dst, weight`` statements per edge spec
    (undirected :class:`EdgeSpec` contributes the reversed projection as a
    second statement)."""
    out: list[str] = []
    for spec in view.edges:
        if isinstance(spec, EdgeSpec):
            out.extend(edge_spec_queries(spec))
        elif isinstance(spec, CoEdgeSpec):
            out.append(co_edge_query(spec))
        else:  # pragma: no cover - GraphView.validate rejects this
            raise GraphViewError(f"unknown edge spec type {type(spec).__name__}")
    return out


def _edge_sql(spec: EdgeSpec, reverse: bool, table: str | None = None) -> str:
    src, dst = (spec.dst, spec.src) if reverse else (spec.src, spec.dst)
    weight = spec.weight if spec.weight is not None else "1.0"
    return (
        f"SELECT CAST({src} AS INTEGER) AS src, "
        f"CAST({dst} AS INTEGER) AS dst, "
        f"CAST({weight} AS FLOAT) AS weight "
        f"FROM {table or spec.table}{_where_clause(spec.where)}"
    )


def co_edge_side_query(spec: CoEdgeSpec, table: str | None = None) -> str:
    """The filtered ``(member, via)`` projection one side of the
    co-occurrence self-join reads — also the relation incremental
    maintenance tracks per :class:`CoEdgeSpec`."""
    return (
        f"SELECT CAST({spec.member} AS INTEGER) AS member, {spec.via} AS via "
        f"FROM {table or spec.table}{_where_clause(spec.where)}"
    )


def co_edge_query(spec: CoEdgeSpec, table: str | None = None) -> str:
    """The co-occurrence self-join: members sharing a ``via`` key connect.

    Lowered as a *flat* self-join over the base table: the spec's filter
    is qualified onto both join sides (via :func:`qualify_predicate`) and
    sits in the top-level WHERE, where the planner's predicate pushdown
    sinks each copy beneath the join into its scan on its own — the
    compiler no longer hand-builds filtered derived tables.  Grouping is
    on the casted member pair (``GROUP BY 1, 2``), so the group keys, the
    ``<>`` self-guard, and the output columns all see the same integer
    values.
    """
    weight = spec.weight if spec.weight is not None else "COUNT(*)"
    base = table or spec.table
    member_a = f"CAST(a.{spec.member} AS INTEGER)"
    member_b = f"CAST(b.{spec.member} AS INTEGER)"
    conditions = []
    if spec.where:
        conditions.append(qualify_predicate(spec.where, spec.table, "a"))
        conditions.append(qualify_predicate(spec.where, spec.table, "b"))
    conditions.append(f"{member_a} <> {member_b}")
    return (
        f"SELECT {member_a} AS src, {member_b} AS dst, "
        f"CAST({weight} AS FLOAT) AS weight "
        f"FROM {base} AS a JOIN {base} AS b ON a.{spec.via} = b.{spec.via} "
        f"WHERE {' AND '.join(conditions)} "
        f"GROUP BY 1, 2"
    )


def qualify_predicate(where: str, table: str, alias: str) -> str:
    """Re-render a spec filter with every column reference qualified by
    ``alias`` so it can sit above a self-join of ``table``.

    Bare references and references qualified with the base table's own
    name both rewrite to ``alias.column``; references to other qualifiers
    pass through untouched (they would not have resolved in the original
    single-table scope either, so this never silently changes meaning).
    """
    stmt = parse_statement(f"SELECT 1 WHERE {where}")
    return render_expression(_qualify(stmt.where, table, alias))


def _qualify(expr: Expression, table: str, alias: str) -> Expression:
    if isinstance(expr, ColumnRef):
        if expr.qualifier is None or expr.qualifier == table:
            return ColumnRef(expr.name, alias)
        return expr
    if isinstance(expr, CaseExpr):
        return CaseExpr(
            whens=tuple(
                (_qualify(c, table, alias), _qualify(r, table, alias))
                for c, r in expr.whens
            ),
            default=None if expr.default is None else _qualify(expr.default, table, alias),
            operand=None if expr.operand is None else _qualify(expr.operand, table, alias),
        )
    updates: dict[str, object] = {}
    for field in dataclasses.fields(expr):
        value = getattr(expr, field.name)
        if isinstance(value, Expression):
            updates[field.name] = _qualify(value, table, alias)
        elif isinstance(value, tuple) and value and isinstance(value[0], Expression):
            updates[field.name] = tuple(_qualify(item, table, alias) for item in value)
    if not updates:
        return expr
    return dataclasses.replace(expr, **updates)


# ---------------------------------------------------------------------------
# Expression -> SQL (for the CREATE GRAPH VIEW DDL path)
# ---------------------------------------------------------------------------
def render_expression(expr: Expression) -> str:
    """Render a parsed expression tree back to SQL text.

    Used by the DDL path: ``CREATE GRAPH VIEW`` clauses arrive as parsed
    :class:`Expression` trees, while the view compiler works on SQL
    strings (so Python-DSL and DDL views share one lowering).  Output is
    fully parenthesized, so operator precedence never changes on the
    round trip.
    """
    if isinstance(expr, Literal):
        return _render_literal(expr.value)
    if isinstance(expr, ColumnRef):
        return expr.display
    if isinstance(expr, Star):
        return f"{expr.qualifier}.*" if expr.qualifier else "*"
    if isinstance(expr, BinaryOp):
        return (
            f"({render_expression(expr.left)} {expr.op} "
            f"{render_expression(expr.right)})"
        )
    if isinstance(expr, UnaryOp):
        spacer = " " if expr.op.isalpha() else ""
        return f"({expr.op}{spacer}{render_expression(expr.operand)})"
    if isinstance(expr, FunctionCall):
        args = ", ".join(render_expression(a) for a in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, CastExpr):
        return f"CAST({render_expression(expr.operand)} AS {expr.type_name})"
    if isinstance(expr, IsNull):
        maybe_not = " NOT" if expr.negated else ""
        return f"({render_expression(expr.operand)} IS{maybe_not} NULL)"
    if isinstance(expr, InList):
        maybe_not = " NOT" if expr.negated else ""
        items = ", ".join(render_expression(i) for i in expr.items)
        return f"({render_expression(expr.operand)}{maybe_not} IN ({items}))"
    if isinstance(expr, Between):
        maybe_not = " NOT" if expr.negated else ""
        return (
            f"({render_expression(expr.operand)}{maybe_not} BETWEEN "
            f"{render_expression(expr.low)} AND {render_expression(expr.high)})"
        )
    if isinstance(expr, LikeExpr):
        maybe_not = " NOT" if expr.negated else ""
        return (
            f"({render_expression(expr.operand)}{maybe_not} LIKE "
            f"{render_expression(expr.pattern)})"
        )
    if isinstance(expr, CaseExpr):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(render_expression(expr.operand))
        for cond, result in expr.whens:
            parts.append(f"WHEN {render_expression(cond)} THEN {render_expression(result)}")
        if expr.default is not None:
            parts.append(f"ELSE {render_expression(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    raise GraphViewError(f"cannot render expression node {type(expr).__name__}")


def _render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)
