"""Lowering graph-view specs to the engine's SQL.

Every spec becomes one or two set-oriented SELECT statements producing
the canonical extraction schemas::

    node queries:  (id INTEGER)
    edge queries:  (src INTEGER, dst INTEGER, weight FLOAT)

The compiler only builds SQL text; :mod:`repro.graphview.view` executes
it and hands the resulting columns to storage as numpy arrays.  A small
expression renderer (:func:`render_expression`) turns parsed
:mod:`repro.engine.expressions` trees back into SQL so the
``CREATE GRAPH VIEW`` DDL path and the Python DSL share one lowering.
"""

from __future__ import annotations

from repro.engine.expressions import (
    Between,
    BinaryOp,
    CaseExpr,
    CastExpr,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LikeExpr,
    Literal,
    Star,
    UnaryOp,
)
from repro.errors import GraphViewError
from repro.graphview.spec import CoEdgeSpec, EdgeSpec, GraphView, NodeSpec

__all__ = [
    "node_queries",
    "edge_queries",
    "node_query",
    "edge_spec_queries",
    "co_edge_query",
    "co_edge_side_query",
    "render_expression",
]


# ---------------------------------------------------------------------------
# Spec -> SQL
#
# Every builder takes an optional ``table`` override naming a different
# relation to read from.  Incremental maintenance uses this to run the
# *same* lowering (same filters, casts, weight expressions — hence
# bit-identical computed values) over scratch tables holding only a
# delta's rows instead of the full base table.
# ---------------------------------------------------------------------------
def _where_clause(where: str | None) -> str:
    return f" WHERE {where}" if where else ""


def node_query(spec: NodeSpec, table: str | None = None) -> str:
    """The ``SELECT ... AS id`` for one node spec."""
    return (
        f"SELECT CAST({spec.key} AS INTEGER) AS id "
        f"FROM {table or spec.table}{_where_clause(spec.where)}"
    )


def node_queries(view: GraphView) -> list[str]:
    """One ``SELECT ... AS id`` per node spec."""
    return [node_query(spec) for spec in view.vertices]


def edge_spec_queries(spec: EdgeSpec, table: str | None = None) -> list[str]:
    """The one or two ``SELECT src, dst, weight`` statements of an
    :class:`EdgeSpec` (undirected specs add the reversed projection)."""
    out = [_edge_sql(spec, reverse=False, table=table)]
    if not spec.directed:
        out.append(_edge_sql(spec, reverse=True, table=table))
    return out


def edge_queries(view: GraphView) -> list[str]:
    """One or two ``SELECT src, dst, weight`` statements per edge spec
    (undirected :class:`EdgeSpec` contributes the reversed projection as a
    second statement)."""
    out: list[str] = []
    for spec in view.edges:
        if isinstance(spec, EdgeSpec):
            out.extend(edge_spec_queries(spec))
        elif isinstance(spec, CoEdgeSpec):
            out.append(co_edge_query(spec))
        else:  # pragma: no cover - GraphView.validate rejects this
            raise GraphViewError(f"unknown edge spec type {type(spec).__name__}")
    return out


def _edge_sql(spec: EdgeSpec, reverse: bool, table: str | None = None) -> str:
    src, dst = (spec.dst, spec.src) if reverse else (spec.src, spec.dst)
    weight = spec.weight if spec.weight is not None else "1.0"
    return (
        f"SELECT CAST({src} AS INTEGER) AS src, "
        f"CAST({dst} AS INTEGER) AS dst, "
        f"CAST({weight} AS FLOAT) AS weight "
        f"FROM {table or spec.table}{_where_clause(spec.where)}"
    )


def co_edge_side_query(spec: CoEdgeSpec, table: str | None = None) -> str:
    """The filtered ``(member, via)`` projection one side of the
    co-occurrence self-join reads — also the relation incremental
    maintenance tracks per :class:`CoEdgeSpec`."""
    return (
        f"SELECT CAST({spec.member} AS INTEGER) AS member, {spec.via} AS via "
        f"FROM {table or spec.table}{_where_clause(spec.where)}"
    )


def co_edge_query(spec: CoEdgeSpec, table: str | None = None) -> str:
    """The co-occurrence self-join: members sharing a ``via`` key connect.

    Filters are pushed into the derived tables so user ``where``
    expressions stay unqualified; the member cast happens there too, so
    the outer GROUP BY keys are bare column references.
    """
    weight = spec.weight if spec.weight is not None else "COUNT(*)"
    side = co_edge_side_query(spec, table)
    return (
        f"SELECT a.member AS src, b.member AS dst, "
        f"CAST({weight} AS FLOAT) AS weight "
        f"FROM ({side}) a JOIN ({side}) b ON a.via = b.via "
        f"WHERE a.member <> b.member "
        f"GROUP BY a.member, b.member"
    )


# ---------------------------------------------------------------------------
# Expression -> SQL (for the CREATE GRAPH VIEW DDL path)
# ---------------------------------------------------------------------------
def render_expression(expr: Expression) -> str:
    """Render a parsed expression tree back to SQL text.

    Used by the DDL path: ``CREATE GRAPH VIEW`` clauses arrive as parsed
    :class:`Expression` trees, while the view compiler works on SQL
    strings (so Python-DSL and DDL views share one lowering).  Output is
    fully parenthesized, so operator precedence never changes on the
    round trip.
    """
    if isinstance(expr, Literal):
        return _render_literal(expr.value)
    if isinstance(expr, ColumnRef):
        return expr.display
    if isinstance(expr, Star):
        return f"{expr.qualifier}.*" if expr.qualifier else "*"
    if isinstance(expr, BinaryOp):
        return (
            f"({render_expression(expr.left)} {expr.op} "
            f"{render_expression(expr.right)})"
        )
    if isinstance(expr, UnaryOp):
        spacer = " " if expr.op.isalpha() else ""
        return f"({expr.op}{spacer}{render_expression(expr.operand)})"
    if isinstance(expr, FunctionCall):
        args = ", ".join(render_expression(a) for a in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, CastExpr):
        return f"CAST({render_expression(expr.operand)} AS {expr.type_name})"
    if isinstance(expr, IsNull):
        maybe_not = " NOT" if expr.negated else ""
        return f"({render_expression(expr.operand)} IS{maybe_not} NULL)"
    if isinstance(expr, InList):
        maybe_not = " NOT" if expr.negated else ""
        items = ", ".join(render_expression(i) for i in expr.items)
        return f"({render_expression(expr.operand)}{maybe_not} IN ({items}))"
    if isinstance(expr, Between):
        maybe_not = " NOT" if expr.negated else ""
        return (
            f"({render_expression(expr.operand)}{maybe_not} BETWEEN "
            f"{render_expression(expr.low)} AND {render_expression(expr.high)})"
        )
    if isinstance(expr, LikeExpr):
        maybe_not = " NOT" if expr.negated else ""
        return (
            f"({render_expression(expr.operand)}{maybe_not} LIKE "
            f"{render_expression(expr.pattern)})"
        )
    if isinstance(expr, CaseExpr):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(render_expression(expr.operand))
        for cond, result in expr.whens:
            parts.append(f"WHEN {render_expression(cond)} THEN {render_expression(result)}")
        if expr.default is not None:
            parts.append(f"ELSE {render_expression(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    raise GraphViewError(f"cannot render expression node {type(expr).__name__}")


def _render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)
