"""Graph-view extraction: from declared specs to loaded graph tables.

Extraction is fully set-oriented and columnar: each compiled query runs
through :meth:`Database.query_batch`, the resulting columns are handed to
:meth:`GraphStorage.load_graph` as numpy arrays, and ``load_graph`` bulk
inserts them via the ``Column.from_numpy`` fast path — the extracted
edges never take a per-row Python round trip.

Two freshness modes:

* **materialized** — extraction runs at creation time; the vertex/edge
  tables persist in the catalog (planner-visible, queryable with plain
  SQL) and :meth:`GraphViewHandle.refresh` re-extracts after base-table
  DML.
* **virtual** — nothing is extracted up front; every
  :meth:`GraphViewHandle.resolve` (which ``Vertexica.run`` calls) re-runs
  the extraction, so the analysis always sees the current base tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.storage import GraphHandle, GraphStorage
from repro.engine.database import Database
from repro.errors import EngineError, GraphViewError
from repro.graphview.compiler import edge_queries, node_queries
from repro.graphview.spec import GraphView

__all__ = ["ExtractionStats", "GraphViewHandle", "extract_graph"]


@dataclass(frozen=True)
class ExtractionStats:
    """Timings and sizes of one extraction pass."""

    seconds: float
    num_vertices: int
    num_edges: int
    num_queries: int

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"extracted |V|={self.num_vertices} |E|={self.num_edges} "
            f"from {self.num_queries} queries in {self.seconds:.3f}s"
        )


def _int_column(batch, name: str) -> tuple[np.ndarray, np.ndarray]:
    """One column as ``(int64 values, validity mask)``."""
    col = batch.column(name)
    values = np.asarray(col.values, dtype=np.int64)
    return values, np.asarray(col.valid, dtype=bool)


def extract_graph(
    db: Database, storage: GraphStorage, name: str, view: GraphView
) -> tuple[GraphHandle, ExtractionStats]:
    """Run the view's compiled queries and (re)load ``{name}_*`` tables.

    Edge rows with a NULL endpoint are dropped (a nullable foreign key is
    not an edge); NULL weights fall back to 1.0.

    Raises:
        GraphViewError: when a compiled query fails (missing base table or
            column, malformed filter/weight expression) — chained to the
            engine error naming the spec that caused it.
    """
    view.validate()
    started = time.perf_counter()
    queries = 0

    node_parts: list[np.ndarray] = []
    for sql in node_queries(view):
        batch = _run(db, sql, "node spec")
        queries += 1
        ids, valid = _int_column(batch, "id")
        node_parts.append(ids[valid])

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    weight_parts: list[np.ndarray] = []
    for sql in edge_queries(view):
        batch = _run(db, sql, "edge spec")
        queries += 1
        src, src_valid = _int_column(batch, "src")
        dst, dst_valid = _int_column(batch, "dst")
        weight_col = batch.column("weight")
        weight = np.asarray(weight_col.values, dtype=np.float64).copy()
        weight[~weight_col.valid] = 1.0
        keep = src_valid & dst_valid
        src_parts.append(src[keep])
        dst_parts.append(dst[keep])
        weight_parts.append(weight[keep])

    empty_i = np.empty(0, dtype=np.int64)
    empty_f = np.empty(0, dtype=np.float64)
    src_arr = np.concatenate(src_parts) if src_parts else empty_i
    dst_arr = np.concatenate(dst_parts) if dst_parts else empty_i
    weight_arr = np.concatenate(weight_parts) if weight_parts else empty_f
    node_ids = (
        np.unique(np.concatenate(node_parts)) if node_parts else empty_i
    )

    handle = storage.load_graph(
        name, src_arr, dst_arr, weight_arr, node_ids=node_ids
    )
    stats = ExtractionStats(
        seconds=time.perf_counter() - started,
        num_vertices=handle.num_vertices,
        num_edges=handle.num_edges,
        num_queries=queries,
    )
    return handle, stats


def _run(db: Database, sql: str, what: str):
    try:
        return db.query_batch(sql)
    except EngineError as exc:
        raise GraphViewError(f"graph-view {what} failed: {exc}\n  SQL: {sql}") from exc


class GraphViewHandle:
    """A named graph view bound to a database.

    ``materialized=True`` keeps extracted tables in the catalog between
    runs (call :meth:`refresh` after base-table DML); ``False`` makes the
    view *virtual* — every :meth:`resolve` re-extracts, so runs always
    see current base data.
    """

    def __init__(
        self,
        db: Database,
        storage: GraphStorage,
        name: str,
        view: GraphView,
        materialized: bool = True,
    ) -> None:
        if not name or not name.isidentifier():
            raise GraphViewError(f"graph view name must be an identifier, got {name!r}")
        self.db = db
        self.storage = storage
        self.name = name
        self.view = view
        self.materialized = materialized
        self._handle: GraphHandle | None = None
        #: stats of the most recent extraction (``None`` before the first)
        self.last_extraction: ExtractionStats | None = None

    # ------------------------------------------------------------------
    def resolve(self) -> GraphHandle:
        """The graph to run on *now*.

        Materialized views return the persisted tables (extracting on
        first use); virtual views re-extract every call.
        """
        if self.materialized and self._handle is not None:
            return self._handle
        return self.refresh()

    def refresh(self) -> GraphHandle:
        """Re-extract from the base tables (after DML), set-oriented:
        one SQL pass per spec, swap the graph tables wholesale."""
        handle, stats = extract_graph(self.db, self.storage, self.name, self.view)
        self._handle = handle
        self.last_extraction = stats
        return handle

    def drop(self) -> None:
        """Drop the extracted tables (base tables are untouched)."""
        if self._handle is not None:
            for table in (
                self._handle.edge_table,
                self._handle.node_table,
                self._handle.vertex_table,
                self._handle.message_table,
                self._handle.output_table,
            ):
                self.db.execute(f"DROP TABLE IF EXISTS {table}")
        self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "materialized" if self.materialized else "virtual"
        return f"GraphViewHandle({self.name!r}, {mode}, specs={len(self.view.edges)})"
