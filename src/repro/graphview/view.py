"""Graph-view extraction: from declared specs to loaded graph tables.

Extraction is fully set-oriented and columnar: each compiled query runs
through :meth:`Database.query_batch`, the resulting columns are handed to
:meth:`GraphStorage.load_graph` as numpy arrays, and ``load_graph`` bulk
inserts them via the ``Column.from_numpy`` fast path — the extracted
edges never take a per-row Python round trip.

Two freshness modes:

* **materialized** — extraction runs at creation time; the vertex/edge
  tables persist in the catalog (planner-visible, queryable with plain
  SQL) and :meth:`GraphViewHandle.refresh` brings them up to date after
  base-table DML — *incrementally* when the engine's change capture can
  hand over the row deltas (see :mod:`repro.graphview.maintenance`),
  falling back to a full re-extraction otherwise or when the deltas
  exceed ``delta_threshold`` of a base table.
* **virtual** — nothing is extracted up front; every
  :meth:`GraphViewHandle.resolve` (which ``Vertexica.run`` calls) re-runs
  the extraction, so the analysis always sees the current base tables.

Both refresh paths produce bit-identical graph tables: full loads store
edges in canonical ``(src, dst, weight)`` order and the incremental path
maintains the same order (the randomized DML parity suite in
``tests/graphview/test_incremental_parity.py`` locks this down).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

import numpy as np

from repro.core.storage import GraphHandle, GraphStorage, canonical_edge_order
from repro.engine.database import Database
from repro.errors import GraphLoadError, GraphViewError
from repro.graphview import maintenance
from repro.graphview.lowering import (
    ExtractionOptions,
    LoweredExtraction,
    lower_view,
)
from repro.graphview.maintenance import MaintenanceState
from repro.graphview.spec import GraphView

__all__ = ["ExtractionStats", "GraphViewHandle", "extract_graph"]

logger = logging.getLogger("repro.graphview")

#: Default ceiling on delta size as a fraction of a base table's rows —
#: beyond it a refresh re-extracts instead of patching (the crossover
#: where replaying per-row work stops beating one set-oriented pass).
DEFAULT_DELTA_THRESHOLD = 0.25


@dataclass(frozen=True)
class ExtractionStats:
    """Timings and sizes of one extraction (or incremental refresh) pass.

    Attributes:
        seconds: wall time of the pass.
        num_vertices, num_edges: sizes of the resulting graph.
        num_queries: SQL statements issued (0 for a no-op incremental
            refresh; slice-parallel lowering counts each slice's query).
        mode: ``"full"`` (re-extraction) or ``"incremental"``
            (delta-patched).
        delta_rows: base-table delta rows consumed (incremental only).
        lower_seconds: time spent running/converting the compiled queries
            (full mode only).
        load_seconds: time spent sorting and bulk-loading the graph
            tables (full mode only).
        parallelism: worker count the lowering fanned out to (1 = serial).
        truncated_groups: via groups truncated by capped co-occurrence
            expansion (0 in exact and self-join modes).
    """

    seconds: float
    num_vertices: int
    num_edges: int
    num_queries: int
    mode: str = "full"
    delta_rows: int = 0
    lower_seconds: float = 0.0
    load_seconds: float = 0.0
    parallelism: int = 1
    truncated_groups: int = 0

    def summary(self) -> str:
        """One-line human-readable report."""
        delta = f" delta_rows={self.delta_rows}" if self.mode == "incremental" else ""
        workers = f" workers={self.parallelism}" if self.parallelism > 1 else ""
        capped = (
            f" truncated_groups={self.truncated_groups}"
            if self.truncated_groups
            else ""
        )
        return (
            f"{self.mode} refresh: |V|={self.num_vertices} |E|={self.num_edges} "
            f"from {self.num_queries} queries in {self.seconds:.3f}s"
            f"{delta}{workers}{capped}"
        )


def _run_extraction(
    db: Database, view: GraphView, options: ExtractionOptions | None
) -> LoweredExtraction:
    """Execute every compiled query; return per-spec arrays.

    Delegates to :func:`repro.graphview.lowering.lower_view`, which fans
    the compiled queries across the configured executor and lowers
    co-occurrence specs through pairwise expansion — every executor and
    co-occurrence mode (except the lossy ``"capped"`` one) produces
    bit-identical arrays.
    """
    return lower_view(db, view, options)


def extract_graph(
    db: Database,
    storage: GraphStorage,
    name: str,
    view: GraphView,
    options: ExtractionOptions | None = None,
) -> tuple[GraphHandle, ExtractionStats]:
    """Run the view's compiled queries and (re)load ``{name}_*`` tables.

    Edge rows with a NULL endpoint are dropped (a nullable foreign key is
    not an edge); NULL weights fall back to 1.0.

    Raises:
        GraphViewError: when a compiled query fails (missing base table or
            column, malformed filter/weight expression) — chained to the
            engine error naming the spec that caused it.
    """
    handle, stats, _ = _extract_with_state(
        db, storage, name, view, want_state=False, options=options
    )
    return handle, stats


def _extract_with_state(
    db: Database,
    storage: GraphStorage,
    name: str,
    view: GraphView,
    want_state: bool,
    options: ExtractionOptions | None = None,
) -> tuple[GraphHandle, ExtractionStats, MaintenanceState | None]:
    """Full extraction, optionally also building maintenance state from
    the same per-spec arrays (no base table is scanned twice)."""
    view.validate()
    started = time.perf_counter()
    lowered = _run_extraction(db, view, options)
    lowered_at = time.perf_counter()
    node_parts, edge_parts = lowered.node_parts, lowered.edge_parts

    empty_i = np.empty(0, dtype=np.int64)
    empty_f = np.empty(0, dtype=np.float64)
    src_parts = [src for part in edge_parts for (src, _, _) in part.triples]
    dst_parts = [dst for part in edge_parts for (_, dst, _) in part.triples]
    weight_parts = [w for part in edge_parts for (_, _, w) in part.triples]
    src_arr = np.concatenate(src_parts) if src_parts else empty_i
    dst_arr = np.concatenate(dst_parts) if dst_parts else empty_i
    weight_arr = np.concatenate(weight_parts) if weight_parts else empty_f
    node_ids = (
        np.unique(np.concatenate(node_parts)) if node_parts else empty_i
    )

    # Sort into canonical order once, here: load_graph stores the arrays
    # as-is and the maintenance state reuses the same ordering.
    order = canonical_edge_order(src_arr, dst_arr, weight_arr)
    src_arr, dst_arr, weight_arr = src_arr[order], dst_arr[order], weight_arr[order]
    handle = storage.load_graph(
        name, src_arr, dst_arr, weight_arr, node_ids=node_ids, presorted=True
    )
    state = (
        maintenance.build_state(
            db,
            view,
            node_parts,
            edge_parts,
            (src_arr, dst_arr, weight_arr),
            truncated_groups=lowered.truncated_groups,
        )
        if want_state
        else None
    )
    finished = time.perf_counter()
    stats = ExtractionStats(
        seconds=finished - started,
        num_vertices=handle.num_vertices,
        num_edges=handle.num_edges,
        num_queries=lowered.num_queries,
        mode="full",
        lower_seconds=lowered_at - started,
        load_seconds=finished - lowered_at,
        parallelism=lowered.parallelism,
        truncated_groups=lowered.truncated_groups,
    )
    return handle, stats, state


class GraphViewHandle:
    """A named graph view bound to a database.

    ``materialized=True`` keeps extracted tables in the catalog between
    runs (call :meth:`refresh` after base-table DML); ``False`` makes the
    view *virtual* — every :meth:`resolve` re-extracts, so runs always
    see current base data.

    ``delta_threshold`` caps how large a base table's delta may grow
    (as a fraction of its current rows) before :meth:`refresh` abandons
    the incremental path for a full re-extraction.

    ``options`` configures how full extractions execute (executor and
    worker count, co-occurrence lowering mode); ``None`` means serial
    exact-expansion defaults.
    """

    def __init__(
        self,
        db: Database,
        storage: GraphStorage,
        name: str,
        view: GraphView,
        materialized: bool = True,
        delta_threshold: float = DEFAULT_DELTA_THRESHOLD,
        options: ExtractionOptions | None = None,
    ) -> None:
        if not name or not name.isidentifier():
            raise GraphViewError(f"graph view name must be an identifier, got {name!r}")
        if not 0.0 <= delta_threshold <= 1.0:
            raise GraphViewError("delta_threshold must be within [0, 1]")
        if options is not None:
            options.validate()
        self.db = db
        self.storage = storage
        self.name = name
        self.view = view
        self.materialized = materialized
        self.delta_threshold = delta_threshold
        self.options = options
        self._handle: GraphHandle | None = None
        self._state: MaintenanceState | None = None
        #: base-table versions carried over from a checkpoint restore
        #: (reported until the first in-process refresh reseeds state)
        self._restored_versions: dict[str, int] = {}
        #: stats of the most recent extraction (``None`` before the first)
        self.last_extraction: ExtractionStats | None = None
        #: why the most recent refresh abandoned the incremental path
        #: (``None`` when it ran incrementally or never tried)
        self.last_fallback_reason: str | None = None

    # ------------------------------------------------------------------
    def resolve(self) -> GraphHandle:
        """The graph to run on *now*.

        Materialized views return the persisted tables (extracting on
        first use); virtual views re-extract every call.
        """
        if self.materialized and self._handle is not None:
            return self._handle
        return self.refresh()

    def refresh(self, incremental: bool | None = None) -> GraphHandle:
        """Bring the extracted tables up to date with the base tables.

        Args:
            incremental: ``None`` (default) patches from captured row
                deltas when possible and within :attr:`delta_threshold`,
                falling back to a full re-extraction otherwise; ``True``
                insists on the delta path regardless of delta size (still
                falling back when no deltas are reconstructable);
                ``False`` forces a full re-extraction.

        The two paths produce bit-identical tables; ``last_extraction``
        records which one ran, its delta size, and its wall time.  When a
        requested or possible incremental refresh falls back to the full
        path, :attr:`last_fallback_reason` says why (also logged on the
        ``repro.graphview`` logger).
        """
        wanted_incremental = incremental is not False and self.materialized
        if wanted_incremental:
            handle = self._try_incremental(
                max_delta_fraction=None if incremental else self.delta_threshold
            )
            if handle is not None:
                self.last_fallback_reason = None
                return handle
            if self._state is not None:
                self.last_fallback_reason = self._state.last_fallback_reason
            else:
                self.last_fallback_reason = "no maintenance state (first refresh)"
                logger.info(
                    "graph view %r: %s", self.name, self.last_fallback_reason
                )
        handle, stats, state = _extract_with_state(
            self.db,
            self.storage,
            self.name,
            self.view,
            want_state=self.materialized,
            options=self.options,
        )
        self._handle = handle
        self._state = state
        self.last_extraction = stats
        return handle

    def _try_incremental(self, max_delta_fraction: float | None) -> GraphHandle | None:
        """One attempt at the delta path; ``None`` means take the full one."""
        if self._state is None or self._handle is None:
            return None
        started = time.perf_counter()
        statements_before = self.db.statements_executed
        result = maintenance.incremental_refresh(
            self.db,
            self.storage,
            self.name,
            self.view,
            self._state,
            max_delta_fraction,
        )
        if result is None:
            return None
        handle, delta_rows = result
        self._handle = handle
        self.last_extraction = ExtractionStats(
            seconds=time.perf_counter() - started,
            num_vertices=handle.num_vertices,
            num_edges=handle.num_edges,
            num_queries=self.db.statements_executed - statements_before,
            mode="incremental",
            delta_rows=delta_rows,
        )
        return handle

    # ------------------------------------------------------------------
    # Persistence hooks (see repro.graphview.catalog)
    # ------------------------------------------------------------------
    def base_table_versions(self) -> dict[str, int]:
        """Base-table versions as of the last refresh — from live
        maintenance state, or carried over from a checkpoint (empty when
        the view never refreshed)."""
        if self._state is None:
            return dict(self._restored_versions)
        return {t: version for t, (_, version) in self._state.bookmarks.items()}

    def attach_existing(self, base_table_versions: dict[str, int] | None = None) -> bool:
        """Re-attach to already-materialized ``{name}_*`` tables (used
        after checkpoint restore) without re-extracting.  Maintenance
        state is *not* rebuilt — the first post-restore refresh takes the
        full path and reseeds it.  Returns True when tables were found.
        """
        if base_table_versions:
            self._restored_versions = dict(base_table_versions)
        try:
            self._handle = self.storage.handle(self.name)
        except GraphLoadError:
            return False
        return True

    def drop(self) -> None:
        """Drop the extracted tables (base tables are untouched).

        Table names are derived from the view name — not from a cached
        handle — so materialized tables are removed even when this handle
        never resolved them in this process (e.g. right after a
        checkpoint restore).
        """
        ghost = GraphHandle(self.db, self.name, 0, 0)
        for table in (
            ghost.edge_table,
            ghost.node_table,
            ghost.vertex_table,
            ghost.message_table,
            ghost.output_table,
        ):
            self.db.execute(f"DROP TABLE IF EXISTS {table}")
        self._handle = None
        self._state = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "materialized" if self.materialized else "virtual"
        return f"GraphViewHandle({self.name!r}, {mode}, specs={len(self.view.edges)})"
