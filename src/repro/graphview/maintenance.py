"""Delta-based incremental maintenance of materialized graph views.

A full :func:`~repro.graphview.view.extract_graph` re-runs every compiled
query over the whole base tables and rebuilds the graph tables wholesale.
After small DML that is almost entirely wasted work — the change-capture
layer (:mod:`repro.engine.changelog`) already knows exactly which rows
changed.  This module turns those row deltas into graph deltas and patches
the materialized tables in place:

* each spec's lowering is re-run over *scratch tables holding only the
  delta rows* (same SQL text as full extraction via the compiler's table
  override, so filters/casts/weight expressions produce bit-identical
  values);
* the view's edge relation is kept as a sorted multiset
  (:data:`EDGE_DTYPE` structured array in canonical ``(src, dst, weight)``
  order — the same order :func:`~repro.core.storage.canonical_edge_order`
  gives a full load, so both refresh paths land on bit-identical tables);
* the vertex set is kept as a support ledger: id -> number of derivations
  (node-spec rows plus edge-endpoint occurrences), so a vertex disappears
  exactly when its last derivation does;
* a :class:`CoEdgeSpec` keeps its filtered ``(member, via)`` side relation
  and per-pair co-occurrence counts, and recomputes only the groups whose
  ``via`` key appears in the delta.

Whenever a delta cannot be applied exactly — change log evicted or reset,
base table dropped/recreated, a delta larger than the configured fraction
of its table, a ``CoEdgeSpec`` with a custom aggregate weight or
non-integer join key — the caller falls back to a full re-extraction
(which also rebuilds this module's state).

Recomputing a touched co-occurrence group is *delta-directed*: only
pairs with at least one member whose row count actually changed are
re-derived, so the cost is O(|changed members| · |group|) rather than
O(|group|²) — a one-row delta against a dense ``via`` group (a celebrity
post with 10⁵ likers) touches one stripe of the pair matrix, not the
whole square.  A delta that changes many members of a very dense group
can still blow that budget, so when ``|changed| · |group|`` exceeds the
square of :data:`co_group_cap` the refresh falls back to a full
re-extraction (bounded, well-understood cost — the dense group dominates
the view's edge set anyway).

Every fallback records its reason on
:attr:`MaintenanceState.last_fallback_reason` and logs it on the
``repro.graphview`` logger, so "why did my refresh go full?" is
answerable without a debugger.
"""

from __future__ import annotations

import itertools
import logging
import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.storage import GraphHandle, GraphStorage
from repro.engine.changelog import TableDelta
from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import EngineError, GraphViewError
from repro.graphview.compiler import (
    co_edge_side_query,
    edge_spec_queries,
    node_query,
)
from repro.graphview.spec import CoEdgeSpec, EdgeSpec, GraphView

__all__ = [
    "EDGE_DTYPE",
    "MAX_INCREMENTAL_CO_GROUP",
    "MaintenanceState",
    "build_state",
    "co_group_cap",
    "incremental_refresh",
    "involved_tables",
]

logger = logging.getLogger("repro.graphview")

#: Default co-occurrence group cap (see :func:`co_group_cap`), as read
#: from ``REPRO_CO_GROUP_CAP`` at import; tests monkeypatch this.
MAX_INCREMENTAL_CO_GROUP = int(os.environ.get("REPRO_CO_GROUP_CAP", "1024"))


def co_group_cap() -> int:
    """The co-occurrence group cap, re-reading ``REPRO_CO_GROUP_CAP`` at
    call time (so a knob set after import still takes effect) and falling
    back to :data:`MAX_INCREMENTAL_CO_GROUP`.

    Two consumers: the ``"capped"`` extraction mode truncates any via
    group to this many members, and the incremental pair ledger falls
    back to a full refresh when one delta's recompute budget
    (``|changed members| · |group members|``) exceeds its square.
    """
    value = os.environ.get("REPRO_CO_GROUP_CAP")
    if value is None:
        return MAX_INCREMENTAL_CO_GROUP
    try:
        return int(value)
    except ValueError:
        return MAX_INCREMENTAL_CO_GROUP

#: One extracted edge; field order *is* the canonical sort order.
EDGE_DTYPE = np.dtype([("src", np.int64), ("dst", np.int64), ("weight", np.float64)])

#: One filtered co-occurrence side row; sorted by (via, member) so a
#: ``via`` group is one contiguous slice.
SIDE_DTYPE = np.dtype([("via", np.int64), ("member", np.int64)])

_scratch_counter = itertools.count()


class _Fallback(Exception):
    """Internal: this delta cannot be applied exactly; do a full refresh."""


# ---------------------------------------------------------------------------
# Batch -> array helpers (shared with the full-extraction path so both
# apply identical NULL semantics: NULL endpoints drop the edge, NULL
# weights default to 1.0, NULL ids drop the node row)
# ---------------------------------------------------------------------------
def node_ids_from_batch(batch) -> np.ndarray:
    """The non-NULL ``id`` values of a node-query result (multiplicity
    preserved — one entry per surviving row)."""
    col = batch.column("id")
    values = np.asarray(col.values, dtype=np.int64)
    return values[np.asarray(col.valid, dtype=bool)]


def edge_triples_from_batch(batch) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(src, dst, weight)`` arrays of an edge-query result with NULL
    endpoints dropped and NULL weights defaulted to 1.0."""
    src_col = batch.column("src")
    dst_col = batch.column("dst")
    weight_col = batch.column("weight")
    src = np.asarray(src_col.values, dtype=np.int64)
    dst = np.asarray(dst_col.values, dtype=np.int64)
    weight = np.asarray(weight_col.values, dtype=np.float64).copy()
    weight[~np.asarray(weight_col.valid, dtype=bool)] = 1.0
    keep = np.asarray(src_col.valid, dtype=bool) & np.asarray(dst_col.valid, dtype=bool)
    return src[keep], dst[keep], weight[keep]


def _side_pairs_from_batch(batch) -> np.ndarray:
    """``SIDE_DTYPE`` rows of a co-occurrence side-query result.

    Rows with a NULL member or NULL via contribute nothing (a NULL never
    equi-joins and never survives ``member <> member``), matching the
    full self-join's semantics.  Raises :class:`_Fallback` when the via
    key is not integer-typed — the sorted side ledger only supports ints.
    """
    member_col = batch.column("member")
    via_col = batch.column("via")
    via_values = np.asarray(via_col.values)
    if via_values.dtype.kind not in "iu":
        raise _Fallback("co-occurrence via key is not integer-typed")
    keep = np.asarray(member_col.valid, dtype=bool) & np.asarray(via_col.valid, dtype=bool)
    out = np.empty(int(np.count_nonzero(keep)), dtype=SIDE_DTYPE)
    out["via"] = via_values[keep]
    out["member"] = np.asarray(member_col.values, dtype=np.int64)[keep]
    return out


def as_edge_struct(src: np.ndarray, dst: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """Pack parallel arrays into an :data:`EDGE_DTYPE` structured array."""
    out = np.empty(len(src), dtype=EDGE_DTYPE)
    out["src"] = src
    out["dst"] = dst
    out["weight"] = weight
    return out


# ---------------------------------------------------------------------------
# Scratch tables: run a spec's lowering over delta rows only
# ---------------------------------------------------------------------------
def _run_on_delta(db: Database, base_table: str, rows, sql_for_table) -> list:
    """Register ``rows`` (a RecordBatch of ``base_table``'s schema) under a
    scratch name, run ``sql_for_table(scratch_name)``, and return the
    resulting batches.

    The scratch table drops the base table's primary key: delta row
    multisets may legitimately repeat a key (insert, delete, re-insert).
    """
    if rows.num_rows == 0:
        return []
    name = f"_gvdelta_{next(_scratch_counter)}"
    db.catalog.register(Table(name, db.table(base_table).schema, rows))
    try:
        return [db.query_batch(sql) for sql in sql_for_table(name)]
    except EngineError as exc:  # pragma: no cover - spec already validated
        raise GraphViewError(f"graph-view delta query failed: {exc}") from exc
    finally:
        db.catalog.drop(name, if_exists=True)


# ---------------------------------------------------------------------------
# Sorted multiset primitives
# ---------------------------------------------------------------------------
def _intra_group_offsets(counts: np.ndarray) -> np.ndarray:
    """``[0..c0-1, 0..c1-1, ...]`` for run lengths ``counts``."""
    starts = np.cumsum(counts) - counts
    return np.arange(int(counts.sum())) - np.repeat(starts, counts)


def sorted_multiset_insert(state: np.ndarray, additions: np.ndarray) -> np.ndarray:
    """Merge ``additions`` (any order) into sorted ``state``; stays sorted."""
    if len(additions) == 0:
        return state
    additions = np.sort(additions)
    positions = np.searchsorted(state, additions, side="left")
    return np.insert(state, positions, additions)


def sorted_multiset_remove(state: np.ndarray, removals: np.ndarray) -> np.ndarray:
    """Remove ``removals`` (any order, with multiplicity) from sorted
    ``state``.

    Raises:
        _Fallback: an element to remove is not present often enough —
            the incremental bookkeeping no longer matches the base data
            (e.g. a non-deterministic weight expression), so the caller
            must re-extract from scratch.
    """
    if len(removals) == 0:
        return state
    uniq, counts = np.unique(removals, return_counts=True)
    lo = np.searchsorted(state, uniq, side="left")
    hi = np.searchsorted(state, uniq, side="right")
    if np.any(hi - lo < counts):
        raise _Fallback("delta removes rows the maintained state does not hold")
    doomed = np.repeat(lo, counts) + _intra_group_offsets(counts)
    mask = np.ones(len(state), dtype=bool)
    mask[doomed] = False
    return state[mask]


# ---------------------------------------------------------------------------
# Vertex support ledger
# ---------------------------------------------------------------------------
@dataclass
class _SupportLedger:
    """id -> number of derivations (node-spec rows + edge endpoints)."""

    ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    counts: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @classmethod
    def from_derivations(cls, derived_ids: np.ndarray) -> "_SupportLedger":
        ids, counts = np.unique(derived_ids, return_counts=True)
        return cls(ids=ids, counts=counts.astype(np.int64))

    def apply(self, added_ids: np.ndarray, removed_ids: np.ndarray) -> None:
        """Shift support by +1 per added derivation, -1 per removed."""
        if len(added_ids) == 0 and len(removed_ids) == 0:
            return
        delta_ids = np.concatenate([added_ids, removed_ids])
        signs = np.concatenate(
            [
                np.ones(len(added_ids), dtype=np.int64),
                -np.ones(len(removed_ids), dtype=np.int64),
            ]
        )
        uniq, inverse = np.unique(delta_ids, return_inverse=True)
        net = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(net, inverse, signs)
        touched = net != 0
        uniq, net = uniq[touched], net[touched]
        if len(uniq) == 0:
            return
        positions = np.searchsorted(self.ids, uniq)
        in_range = positions < len(self.ids)
        present = np.zeros(len(uniq), dtype=bool)
        present[in_range] = self.ids[positions[in_range]] == uniq[in_range]

        counts = self.counts.copy()
        counts[positions[present]] += net[present]
        if np.any(counts < 0) or np.any(net[~present] < 0):
            raise _Fallback("vertex support underflow")
        fresh = ~present & (net > 0)
        ids = np.insert(self.ids, positions[fresh], uniq[fresh])
        counts = np.insert(counts, positions[fresh], net[fresh])
        keep = counts > 0
        self.ids, self.counts = ids[keep], counts[keep]

    @property
    def live_ids(self) -> np.ndarray:
        """Sorted ids with at least one derivation (== the node table)."""
        return self.ids


# ---------------------------------------------------------------------------
# Co-occurrence spec state
# ---------------------------------------------------------------------------
@dataclass
class _CoState:
    """Side relation + per-pair counts for one :class:`CoEdgeSpec`."""

    side: np.ndarray  # SIDE_DTYPE, sorted by (via, member)
    pairs: np.ndarray  # EDGE_DTYPE with weight == float(count), sorted

    def apply_delta(
        self, inserted_side: np.ndarray, deleted_side: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply side-row deltas; return ``(added, removed)`` edge triples.

        Only groups whose ``via`` key appears in the delta are touched,
        and within a touched group only the *delta-directed* stripe of
        the pair matrix — pairs with at least one member whose row count
        changed — is re-derived (pairs between two unchanged members
        keep their exact old count, since a pair's count is the product
        of its members' counts).  A touched pair's old triple (its
        previous global count) is removed and its new triple added, so
        the caller can treat co-occurrence changes as ordinary
        edge-multiset arithmetic.
        """
        if len(inserted_side) == 0 and len(deleted_side) == 0:
            empty = np.empty(0, dtype=EDGE_DTYPE)
            return empty, empty
        touched_vias = np.unique(
            np.concatenate([inserted_side["via"], deleted_side["via"]])
        )
        old_counts = _touched_group_counts(self.side, touched_vias)
        new_side = sorted_multiset_insert(self.side, inserted_side)
        new_side = sorted_multiset_remove(new_side, deleted_side)
        self.side = new_side
        new_counts = _touched_group_counts(new_side, touched_vias)

        # Net count change per (src, dst) pair across the touched groups.
        changed_pairs, deltas = _delta_pair_contributions(old_counts, new_counts)
        if len(changed_pairs) == 0:
            empty = np.empty(0, dtype=EDGE_DTYPE)
            return empty, empty

        # self.pairs is sorted by (src, dst, weight) and each pair appears
        # at most once, so a packed (src, dst) projection is sorted too.
        pair_keys = _pair_keys_of(self.pairs)
        positions = np.searchsorted(pair_keys, changed_pairs)
        in_range = positions < len(self.pairs)
        present = np.zeros(len(changed_pairs), dtype=bool)
        present[in_range] = pair_keys[positions[in_range]] == changed_pairs[in_range]
        old_counts = np.zeros(len(changed_pairs), dtype=np.int64)
        old_counts[present] = np.rint(
            self.pairs["weight"][positions[present]]
        ).astype(np.int64)
        new_counts = old_counts + deltas
        if np.any(new_counts < 0):
            raise _Fallback("co-occurrence count underflow")

        removed = _pair_triples(changed_pairs[old_counts > 0], old_counts[old_counts > 0])
        added = _pair_triples(changed_pairs[new_counts > 0], new_counts[new_counts > 0])
        self.pairs = sorted_multiset_remove(self.pairs, removed)
        self.pairs = sorted_multiset_insert(self.pairs, added)
        return added, removed


def _pair_triples(pairs: np.ndarray, counts: np.ndarray) -> np.ndarray:
    out = np.empty(len(pairs), dtype=EDGE_DTYPE)
    out["src"] = pairs["src"]
    out["dst"] = pairs["dst"]
    out["weight"] = counts.astype(np.float64)
    return out


_PAIR_DTYPE = np.dtype([("src", np.int64), ("dst", np.int64)])


def _pair_keys_of(edges: np.ndarray) -> np.ndarray:
    """Packed ``(src, dst)`` copy of an :data:`EDGE_DTYPE` array (a
    multi-field *view* keeps the original itemsize and cannot be compared
    against packed :data:`_PAIR_DTYPE` arrays)."""
    out = np.empty(len(edges), dtype=_PAIR_DTYPE)
    out["src"] = edges["src"]
    out["dst"] = edges["dst"]
    return out


def _touched_group_counts(
    side: np.ndarray, vias: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-``(via, member)`` row counts within the given groups.

    Returns ``(rows, counts)`` where ``rows`` is a sorted
    :data:`SIDE_DTYPE` array of the distinct ``(via, member)`` pairs.
    """
    subset = side[np.isin(side["via"], vias)]
    return np.unique(subset, return_counts=True)


def _delta_pair_contributions(
    old: tuple[np.ndarray, np.ndarray], new: tuple[np.ndarray, np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Pairs whose co-occurrence count changed, with signed count deltas.

    A pair's count is ``sum over groups of count_a * count_b``, so only
    pairs with at least one *changed* member (per-group row count moved)
    can shift.  Per touched group this derives exactly that stripe:
    ``changed × union`` plus ``(union − changed) × changed`` — never the
    full ``union × union`` square.

    Raises:
        _Fallback: one group's stripe (``|changed| · |union|``) exceeds
            the square of :func:`co_group_cap` — the recompute budget is
            blown and the caller must take the full-refresh path.
    """
    cap = co_group_cap()
    gm_old, c_old = old
    gm_new, c_new = new
    vias = np.unique(np.concatenate([gm_old["via"], gm_new["via"]]))
    pair_parts: list[np.ndarray] = []
    delta_parts: list[np.ndarray] = []
    for via in vias:
        lo_o, hi_o = np.searchsorted(gm_old["via"], via, "left"), np.searchsorted(
            gm_old["via"], via, "right"
        )
        lo_n, hi_n = np.searchsorted(gm_new["via"], via, "left"), np.searchsorted(
            gm_new["via"], via, "right"
        )
        members_old = gm_old["member"][lo_o:hi_o]
        members_new = gm_new["member"][lo_n:hi_n]
        union = np.union1d(members_old, members_new)
        old_vec = np.zeros(len(union), dtype=np.int64)
        old_vec[np.searchsorted(union, members_old)] = c_old[lo_o:hi_o]
        new_vec = np.zeros(len(union), dtype=np.int64)
        new_vec[np.searchsorted(union, members_new)] = c_new[lo_n:hi_n]
        changed = np.flatnonzero(old_vec != new_vec)
        if len(changed) == 0:
            continue
        if len(changed) * len(union) > cap * cap:
            raise _Fallback(
                f"co-occurrence via group {int(via)} delta recompute needs "
                f"{len(changed)}x{len(union)} pair updates "
                f"(budget {cap}^2); falling back to full recompute"
            )
        # changed × union (minus the diagonal) ...
        a_idx = np.repeat(changed, len(union))
        b_idx = np.tile(np.arange(len(union)), len(changed))
        keep = a_idx != b_idx
        a_idx, b_idx = a_idx[keep], b_idx[keep]
        # ... plus (union − changed) × changed; disjoint sides, so no
        # diagonal and no overlap with the first stripe.
        unchanged = np.setdiff1d(np.arange(len(union)), changed, assume_unique=True)
        a_idx = np.concatenate([a_idx, np.repeat(unchanged, len(changed))])
        b_idx = np.concatenate([b_idx, np.tile(changed, len(unchanged))])
        delta = new_vec[a_idx] * new_vec[b_idx] - old_vec[a_idx] * old_vec[b_idx]
        moved = delta != 0
        if not moved.any():
            continue
        pairs = np.empty(int(np.count_nonzero(moved)), dtype=_PAIR_DTYPE)
        pairs["src"] = union[a_idx[moved]]
        pairs["dst"] = union[b_idx[moved]]
        pair_parts.append(pairs)
        delta_parts.append(delta[moved])
    if not pair_parts:
        return np.empty(0, dtype=_PAIR_DTYPE), np.empty(0, dtype=np.int64)
    # The same pair can co-occur through several touched groups; sum the
    # per-group deltas and drop pairs that net out to zero.
    all_pairs = np.concatenate(pair_parts)
    all_deltas = np.concatenate(delta_parts)
    uniq_pairs, inverse = np.unique(all_pairs, return_inverse=True)
    net = np.zeros(len(uniq_pairs), dtype=np.int64)
    np.add.at(net, inverse, all_deltas)
    moved = net != 0
    return uniq_pairs[moved], net[moved]


# ---------------------------------------------------------------------------
# Whole-view state
# ---------------------------------------------------------------------------
@dataclass
class MaintenanceState:
    """Everything needed to patch a materialized view instead of
    re-extracting it (see module docstring)."""

    edges: np.ndarray  # EDGE_DTYPE, canonically sorted
    support: _SupportLedger
    co_states: dict[int, _CoState]  # edge-spec index -> state
    bookmarks: dict[str, tuple[int, int]]  # table -> (uid, version)
    capable: bool  # False: this view always takes the full path
    #: why the last refresh attempt (or state build) abandoned the
    #: incremental path; ``None`` when it has never fallen back
    last_fallback_reason: str | None = None

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def num_vertices(self) -> int:
        return len(self.support.live_ids)


def involved_tables(view: GraphView) -> list[str]:
    """The distinct base tables a view reads, in first-use order."""
    seen: dict[str, None] = {}
    for spec in (*view.vertices, *view.edges):
        seen.setdefault(spec.table, None)
    return list(seen)


def incremental_capable(view: GraphView) -> bool:
    """Whether every spec of the view has an incremental lowering.

    A :class:`CoEdgeSpec` with a custom aggregate weight has no
    delta form — ``AVG``/``MAX``-style aggregates are not decomposable
    over group membership changes — so such views always re-extract.
    """
    return all(
        not (isinstance(spec, CoEdgeSpec) and spec.weight is not None)
        for spec in view.edges
    )


def build_state(
    db: Database,
    view: GraphView,
    node_parts: list[np.ndarray],
    edge_parts: list,
    sorted_edges: tuple[np.ndarray, np.ndarray, np.ndarray],
    truncated_groups: int = 0,
) -> MaintenanceState:
    """Construct maintenance state from a just-completed full extraction.

    ``node_parts``/``edge_parts`` are the per-spec results the extraction
    produced (``edge_parts`` holds one
    :class:`~repro.graphview.lowering.EdgeSpecResult` per edge spec) and
    ``sorted_edges`` the already-canonically-ordered concatenation the
    graph tables were loaded from (so nothing is scanned — or sorted —
    twice).  A :class:`CoEdgeSpec` lowered through the expansion path
    carries its filtered ``(member, via)`` side rows on its result, so
    seeding the pair ledger costs no extra query; the self-join lowering
    runs one side query per co spec as before.

    ``truncated_groups``: how many via groups the extraction truncated
    (capped co-occurrence mode).  Any truncation makes the state
    incapable — the materialized tables are deliberately lossy, and an
    exact delta against them would diverge.
    """
    capable = incremental_capable(view)
    reason: str | None = None if capable else "spec has no incremental lowering"
    if truncated_groups and capable:
        capable = False
        reason = (
            f"capped co-occurrence extraction truncated {truncated_groups} "
            "group(s); the materialized tables are lossy"
        )
    edges = as_edge_struct(*sorted_edges)
    if len(edges) and np.isnan(edges["weight"]).any() and capable:
        capable = False  # NaN breaks sorted-multiset matching
        reason = "NaN edge weight"

    derivations = [part for part in node_parts]
    derivations.append(edges["src"].astype(np.int64, copy=True))
    derivations.append(edges["dst"].astype(np.int64, copy=True))
    support = _SupportLedger.from_derivations(
        np.concatenate(derivations) if derivations else np.empty(0, dtype=np.int64)
    )

    co_states: dict[int, _CoState] = {}
    if capable:
        try:
            for index, spec in enumerate(view.edges):
                if not isinstance(spec, CoEdgeSpec):
                    continue
                part = edge_parts[index]
                side = _spec_side_rows(db, spec, part)
                (src, dst, weight) = part.triples[0]
                if not np.all(weight == np.rint(weight)):
                    raise _Fallback("co-occurrence counts are not integral")
                co_states[index] = _CoState(
                    side=np.sort(side),
                    pairs=np.sort(as_edge_struct(src, dst, weight)),
                )
        except _Fallback as exc:
            capable = False
            reason = str(exc)
            co_states = {}

    bookmarks = {t: db.table_state(t) for t in involved_tables(view)}
    return MaintenanceState(
        edges=edges,
        support=support,
        co_states=co_states,
        bookmarks=bookmarks,
        capable=capable,
        last_fallback_reason=reason,
    )


def _spec_side_rows(db: Database, spec: CoEdgeSpec, part) -> np.ndarray:
    """The sorted ``(member, via)`` side ledger seed for one co spec —
    reused from the extraction result when the expansion path captured
    it, otherwise one side query against the base table."""
    if getattr(part, "side_member", None) is None:
        return _side_pairs_from_batch(db.query_batch(co_edge_side_query(spec)))
    vias = np.asarray(part.side_via)
    if vias.dtype.kind not in "iu":
        raise _Fallback("co-occurrence via key is not integer-typed")
    out = np.empty(len(vias), dtype=SIDE_DTYPE)
    out["via"] = vias
    out["member"] = np.asarray(part.side_member, dtype=np.int64)
    return out


# ---------------------------------------------------------------------------
# The incremental refresh itself
# ---------------------------------------------------------------------------
def gather_deltas(
    db: Database, state: MaintenanceState
) -> dict[str, TableDelta] | None:
    """Per-table deltas since the state's bookmarks, or ``None`` when any
    table's window is unreconstructable."""
    deltas: dict[str, TableDelta] = {}
    for table, (uid, version) in state.bookmarks.items():
        if not db.has_table(table):
            return None
        delta = db.changes_since(table, uid, version)
        if delta is None:
            return None
        deltas[table] = delta
    return deltas


def incremental_refresh(
    db: Database,
    storage: GraphStorage,
    name: str,
    view: GraphView,
    state: MaintenanceState,
    max_delta_fraction: float | None,
) -> tuple[GraphHandle, int] | None:
    """Patch ``{name}_edge`` / ``{name}_node`` from base-table deltas.

    Returns ``(handle, delta_rows)`` on success, or ``None`` when the
    caller must fall back to a full re-extraction: state not capable,
    deltas unavailable, a per-table delta above ``max_delta_fraction`` of
    its current table size (skipped when ``None`` — a forced incremental
    refresh), or an exactness guard tripping mid-apply.

    On ``None`` the state may be partially consumed and must be rebuilt —
    :func:`build_state` runs as part of the full refresh anyway.  Every
    ``None`` records why on ``state.last_fallback_reason`` and logs it.
    """
    if not state.capable:
        return _fall_back(
            state, state.last_fallback_reason or "maintenance state not capable"
        )
    deltas = gather_deltas(db, state)
    if deltas is None:
        return _fall_back(
            state, "base-table deltas unavailable (change log evicted or reset)"
        )
    delta_rows = sum(d.num_rows for d in deltas.values())
    if max_delta_fraction is not None:
        for table, delta in deltas.items():
            budget = max_delta_fraction * max(db.table(table).num_rows, 1)
            if delta.num_rows > budget:
                return _fall_back(
                    state,
                    f"delta of {delta.num_rows} rows on {table!r} exceeds "
                    f"{max_delta_fraction:.0%} of the table",
                )
    if delta_rows == 0:
        handle = GraphHandle(db, name, state.num_vertices, state.num_edges)
        _refresh_bookmarks(db, state)
        return handle, 0

    try:
        added, removed, node_added, node_removed = _spec_deltas(db, view, state, deltas)
        if (len(added) and np.isnan(added["weight"]).any()) or (
            len(removed) and np.isnan(removed["weight"]).any()
        ):
            raise _Fallback("NaN weight in delta")
        edges = sorted_multiset_insert(state.edges, added)
        edges = sorted_multiset_remove(edges, removed)
        state.support.apply(
            np.concatenate([node_added, added["src"], added["dst"]]),
            np.concatenate([node_removed, removed["src"], removed["dst"]]),
        )
        state.edges = edges
    except _Fallback as exc:
        state.capable = False  # force the rebuild the caller now performs
        return _fall_back(state, str(exc))

    handle = storage.replace_graph(
        name,
        state.edges["src"].astype(np.int64, copy=True),
        state.edges["dst"].astype(np.int64, copy=True),
        state.edges["weight"].astype(np.float64, copy=True),
        state.support.live_ids.copy(),
    )
    _refresh_bookmarks(db, state)
    return handle, delta_rows


def _fall_back(state: MaintenanceState, reason: str) -> None:
    """Record and log why an incremental refresh is being abandoned."""
    state.last_fallback_reason = reason
    logger.info("incremental refresh fell back to full extraction: %s", reason)
    return None


def _refresh_bookmarks(db: Database, state: MaintenanceState) -> None:
    state.bookmarks = {t: db.table_state(t) for t in state.bookmarks}


def _spec_deltas(
    db: Database,
    view: GraphView,
    state: MaintenanceState,
    deltas: dict[str, TableDelta],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Lower table row deltas to graph deltas across every spec.

    Returns ``(added_edges, removed_edges, added_node_ids,
    removed_node_ids)``; edge arrays are :data:`EDGE_DTYPE`.
    """
    added_parts: list[np.ndarray] = []
    removed_parts: list[np.ndarray] = []
    node_added: list[np.ndarray] = []
    node_removed: list[np.ndarray] = []
    empty_ids = np.empty(0, dtype=np.int64)

    for spec in view.vertices:
        delta = deltas[spec.table]
        for rows, sink in ((delta.inserted, node_added), (delta.deleted, node_removed)):
            batches = _run_on_delta(
                db, spec.table, rows, lambda t, s=spec: [node_query(s, table=t)]
            )
            sink.extend(node_ids_from_batch(b) for b in batches)

    for index, spec in enumerate(view.edges):
        delta = deltas[spec.table]
        if isinstance(spec, EdgeSpec):
            for rows, sink in (
                (delta.inserted, added_parts),
                (delta.deleted, removed_parts),
            ):
                batches = _run_on_delta(
                    db, spec.table, rows, lambda t, s=spec: edge_spec_queries(s, table=t)
                )
                sink.extend(as_edge_struct(*edge_triples_from_batch(b)) for b in batches)
        else:  # CoEdgeSpec — delta-capable views always carry its state
            inserted_side = _side_rows(db, spec, delta.inserted)
            deleted_side = _side_rows(db, spec, delta.deleted)
            added, removed = state.co_states[index].apply_delta(
                inserted_side, deleted_side
            )
            added_parts.append(added)
            removed_parts.append(removed)

    empty_edges = np.empty(0, dtype=EDGE_DTYPE)
    return (
        np.concatenate(added_parts) if added_parts else empty_edges,
        np.concatenate(removed_parts) if removed_parts else empty_edges,
        np.concatenate(node_added) if node_added else empty_ids,
        np.concatenate(node_removed) if node_removed else empty_ids,
    )


def _side_rows(db: Database, spec: CoEdgeSpec, rows) -> np.ndarray:
    batches = _run_on_delta(
        db, spec.table, rows, lambda t, s=spec: [co_edge_side_query(s, table=t)]
    )
    if not batches:
        return np.empty(0, dtype=SIDE_DTYPE)
    return _side_pairs_from_batch(batches[0])
