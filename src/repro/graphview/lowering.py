"""Executor-parallel spec lowering for graph-view extraction.

The serial extraction path runs each compiled query through
:meth:`Database.query_batch` one after another.  This module fans that
work across the engine's :data:`~repro.engine.parallel.PartitionExecutor`
seam instead, at two grains:

* **independent specs** — every node query, edge query, and co-occurrence
  side query is its own task;
* **partition-sliced scans** — a single-table query over a large base
  table is split into row slices (registered as short-lived scratch
  tables, one per slice) whose results concatenate back in slice order.
  Scans, filters, and projections preserve row order, so the
  concatenation is bit-identical to the unsliced query.

Two executor-specific tricks keep parallelism real:

* **threads** — :meth:`Database.execute` serializes on the database lock,
  so every task is *planned* up front under one lock acquisition
  (:meth:`Database.plan_query`) and only the lock-free ``plan.execute()``
  runs on the pool.  Scratch slice tables live only for the duration of
  planning (plans hold direct table references) and are dropped in a
  ``finally`` even when a later spec fails to plan.
* **processes** — each task ships ``(sql, tables)`` with exactly the
  slice of data it scans; the worker rebuilds a throwaway
  :class:`Database`, runs the query, and pickles the batch back.

Co-occurrence specs are additionally lowered through
:func:`expand_co_occurrence` — a group-by-``via`` pairwise expansion that
replaces the quadratic SQL self-join (see :func:`co_edge_query`); the
``"capped"`` mode bounds any one group to its top-``cap`` members and
reports how many groups were truncated.

Every path produces bit-identical per-spec arrays; the determinism suite
in ``tests/graphview/test_parallel_extraction.py`` locks serial, thread,
and process lowering to the same bytes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from repro.engine.database import Database
from repro.engine.parallel import (
    ProcessExecutor,
    make_thread_executor,
    recommended_process_count,
)
from repro.engine.table import Table
from repro.errors import EngineError, GraphViewError
from repro.graphview.compiler import (
    co_edge_query,
    co_edge_side_query,
    edge_spec_queries,
    node_query,
)
from repro.graphview.maintenance import (
    co_group_cap,
    edge_triples_from_batch,
    node_ids_from_batch,
)
from repro.graphview.spec import CoEdgeSpec, EdgeSpec, GraphView

__all__ = [
    "CO_MODES",
    "EXECUTOR_CHOICES",
    "ExtractionOptions",
    "EdgeSpecResult",
    "LoweredExtraction",
    "expand_co_occurrence",
    "lower_view",
]

EXECUTOR_CHOICES = ("auto", "serial", "threads", "processes")
CO_MODES = ("exact", "capped", "selfjoin")

#: Pair buffer size above which the streamed expansion compacts its
#: accumulated per-group contributions into one summed array.
_EXPANSION_FLUSH_PAIRS = 1 << 21

#: Largest distinct-member universe expanded through the dense
#: ``member x member`` count matrix (4096**2 int64 = 128 MiB); bigger
#: universes take the bounded-memory streaming path instead.
_DENSE_MEMBER_LIMIT = 4096

_slice_counter = itertools.count()


@dataclass(frozen=True)
class ExtractionOptions:
    """How a view's extraction is executed.

    Attributes:
        executor: ``"auto"`` (serial for one worker, threads otherwise),
            ``"serial"``, ``"threads"``, or ``"processes"``.
        n_workers: parallel lowering tasks in flight; ``0`` means "use
            every usable core" (affinity-aware).
        co_mode: how :class:`CoEdgeSpec` co-occurrence is lowered —
            ``"exact"`` (group-by-``via`` streamed pairwise expansion,
            bit-identical to the self-join), ``"capped"`` (each group
            truncated to its top-``co_cap`` members by row count, with a
            ``truncated_groups`` stat; lossy, opt-in), or ``"selfjoin"``
            (the legacy SQL self-join).  Specs with a custom aggregate
            ``weight`` always take the self-join — only counting is
            decomposable per group.
        co_cap: group cap for ``"capped"`` mode; ``None`` uses the
            ``REPRO_CO_GROUP_CAP`` knob (default 1024).
        slice_min_rows: a single-table scan is split into row slices only
            when its base table has at least this many rows (below it,
            per-task overhead beats the parallelism).
    """

    executor: str = "auto"
    n_workers: int = 1
    co_mode: str = "exact"
    co_cap: int | None = None
    slice_min_rows: int = 50_000

    def validate(self) -> None:
        """Raise :class:`GraphViewError` on an invalid combination."""
        if self.executor not in EXECUTOR_CHOICES:
            raise GraphViewError(
                f"extraction executor must be one of {EXECUTOR_CHOICES}, "
                f"got {self.executor!r}"
            )
        if self.co_mode not in CO_MODES:
            raise GraphViewError(
                f"co_mode must be one of {CO_MODES}, got {self.co_mode!r}"
            )
        if self.n_workers < 0:
            raise GraphViewError("n_workers must be >= 0 (0 = all cores)")
        if self.co_cap is not None and self.co_cap < 1:
            raise GraphViewError("co_cap must be >= 1")
        if self.slice_min_rows < 1:
            raise GraphViewError("slice_min_rows must be >= 1")

    def resolved_workers(self) -> int:
        if self.n_workers == 0:
            return recommended_process_count()
        return self.n_workers

    def resolved_executor(self) -> str:
        if self.executor == "auto":
            return "serial" if self.resolved_workers() == 1 else "threads"
        return self.executor


@dataclass
class EdgeSpecResult:
    """Extraction output of one edge spec.

    ``triples`` holds one ``(src, dst, weight)`` array triple per lowered
    statement (undirected :class:`EdgeSpec` contributes two).  For
    expansion-lowered co-occurrence specs, ``side_member`` / ``side_via``
    carry the filtered side rows (NULLs already dropped) so incremental
    maintenance can seed its ledger without re-scanning the base table.
    """

    spec: object
    triples: list[tuple[np.ndarray, np.ndarray, np.ndarray]]
    side_member: np.ndarray | None = None
    side_via: np.ndarray | None = None


@dataclass
class LoweredExtraction:
    """Everything one pass over the base tables produced."""

    node_parts: list[np.ndarray] = field(default_factory=list)
    edge_parts: list[EdgeSpecResult] = field(default_factory=list)
    num_queries: int = 0
    parallelism: int = 1
    truncated_groups: int = 0


# ---------------------------------------------------------------------------
# Co-occurrence expansion
# ---------------------------------------------------------------------------
def expand_co_occurrence(
    members: np.ndarray,
    vias: np.ndarray,
    cap: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Pairwise co-occurrence counts, group by group.

    Equivalent to the SQL self-join ``... ON a.via = b.via WHERE
    a.member <> b.member GROUP BY a.member, b.member`` with a ``COUNT(*)``
    weight: within each ``via`` group, every ordered pair of *distinct*
    members ``(a, b)`` receives ``rows(a) * rows(b)`` joined row pairs,
    summed across groups.  Runs in O(sum of group-pair counts) instead of
    materializing the join.  When the distinct-member universe is small
    enough for a dense ``member x member`` accumulator
    (:data:`_DENSE_MEMBER_LIMIT`), groups sum straight into it via
    ``np.ix_`` outer products; otherwise per-group contributions stream
    through a pair buffer compacted at a fixed budget, so peak memory is
    bounded by the output size plus one flush buffer.

    Args:
        members: integer member ids (already cast, NULL rows dropped).
        vias: group keys, any comparable dtype, parallel to ``members``.
        cap: when set, a group with more than ``cap`` distinct members is
            truncated to its top-``cap`` members by row count (ties broken
            by smaller member id) before expanding — the degree-capped
            mode.  ``None`` expands exactly.

    Returns:
        ``(src, dst, weight, truncated_groups)`` — one row per surviving
        ordered pair, sorted by ``(src, dst)``; weights are float counts.
    """
    empty = (
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.float64),
    )
    if len(members) == 0:
        return (*empty, 0)
    # Per (group, member) row counts: one lexsort puts each group in a
    # contiguous slice with its members sorted, then run-length boundaries
    # give the distinct rows.  (Plain-array lexsort + reduceat throughout —
    # structured-dtype np.unique is comparison-sorted and order-of-magnitude
    # slower at the millions-of-pairs scale this feeds.)
    _, group_codes = np.unique(vias, return_inverse=True)
    m_arr = np.asarray(members, dtype=np.int64)
    order = np.lexsort((m_arr, group_codes))
    g_sorted, m_sorted = group_codes[order], m_arr[order]
    firsts = np.empty(len(m_sorted), dtype=bool)
    firsts[0] = True
    firsts[1:] = (g_sorted[1:] != g_sorted[:-1]) | (m_sorted[1:] != m_sorted[:-1])
    starts = np.flatnonzero(firsts)
    gm_g, gm_m = g_sorted[starts], m_sorted[starts]
    gm_counts = np.diff(np.append(starts, len(m_sorted)))
    boundaries = np.flatnonzero(np.diff(gm_g, prepend=gm_g[0] - 1))
    boundaries = np.append(boundaries, len(gm_g))

    univ = np.unique(gm_m)
    if len(univ) <= _DENSE_MEMBER_LIMIT:
        return _expand_dense(univ, gm_m, gm_counts, boundaries, cap)

    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    count_parts: list[np.ndarray] = []
    buffered = 0
    truncated_groups = 0
    for g in range(len(boundaries) - 1):
        uniq = gm_m[boundaries[g]:boundaries[g + 1]]
        counts = gm_counts[boundaries[g]:boundaries[g + 1]]
        if cap is not None and len(uniq) > cap:
            truncated_groups += 1
            top = np.lexsort((uniq, -counts))[:cap]
            uniq, counts = uniq[top], counts[top]
        if len(uniq) < 2:
            continue
        a_idx = np.repeat(np.arange(len(uniq)), len(uniq))
        b_idx = np.tile(np.arange(len(uniq)), len(uniq))
        off_diag = a_idx != b_idx
        a_idx, b_idx = a_idx[off_diag], b_idx[off_diag]
        src_parts.append(uniq[a_idx])
        dst_parts.append(uniq[b_idx])
        count_parts.append(counts[a_idx] * counts[b_idx])
        buffered += len(a_idx)
        if buffered > _EXPANSION_FLUSH_PAIRS:
            src_parts, dst_parts, count_parts = _compact_pairs(
                src_parts, dst_parts, count_parts
            )
            buffered = len(src_parts[0])
    if not src_parts:
        return (*empty, truncated_groups)
    (src,), (dst,), (counts,) = _compact_pairs(src_parts, dst_parts, count_parts)
    return src, dst, counts.astype(np.float64), truncated_groups


def _expand_dense(
    univ: np.ndarray,
    gm_m: np.ndarray,
    gm_counts: np.ndarray,
    boundaries: np.ndarray,
    cap: int | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Sum every group's ``outer(counts, counts)`` into one dense
    ``member x member`` matrix — each group touches only its own
    submatrix (``np.ix_``), so the work is O(sum of group-pair counts)
    with array constants instead of repeated sort-and-merge passes.
    ``np.nonzero`` walks the matrix row-major, which IS the canonical
    ``(src, dst)`` order (``univ`` is sorted ascending)."""
    matrix = np.zeros((len(univ), len(univ)), dtype=np.int64)
    codes = np.searchsorted(univ, gm_m)
    truncated_groups = 0
    for g in range(len(boundaries) - 1):
        group_codes = codes[boundaries[g]:boundaries[g + 1]]
        counts = gm_counts[boundaries[g]:boundaries[g + 1]]
        if cap is not None and len(group_codes) > cap:
            truncated_groups += 1
            # univ[group_codes] is sorted, so lexsorting on the codes
            # matches the member-ascending tiebreak of the streamed path.
            top = np.lexsort((group_codes, -counts))[:cap]
            group_codes, counts = group_codes[top], counts[top]
        if len(group_codes) < 2:
            continue
        matrix[np.ix_(group_codes, group_codes)] += np.outer(counts, counts)
    np.fill_diagonal(matrix, 0)
    src_idx, dst_idx = np.nonzero(matrix)
    return (
        univ[src_idx],
        univ[dst_idx],
        matrix[src_idx, dst_idx].astype(np.float64),
        truncated_groups,
    )


def _compact_pairs(
    src_parts: list[np.ndarray],
    dst_parts: list[np.ndarray],
    count_parts: list[np.ndarray],
) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
    """Merge buffered per-group pair contributions into one summed array,
    sorted by ``(src, dst)`` (so the final compaction's order IS the
    canonical output order)."""
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    counts = np.concatenate(count_parts)
    order = np.lexsort((dst, src))
    src, dst, counts = src[order], dst[order], counts[order]
    firsts = np.empty(len(src), dtype=bool)
    firsts[0] = True
    firsts[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
    starts = np.flatnonzero(firsts)
    return [src[starts]], [dst[starts]], [np.add.reduceat(counts, starts)]


# ---------------------------------------------------------------------------
# Query jobs
# ---------------------------------------------------------------------------
@dataclass
class _QueryJob:
    """One compiled statement of the extraction, with a table override
    hook so the same lowering can run over scratch slice tables."""

    what: str  # error label: "node spec" / "edge spec" / "co-occurrence spec"
    sql_for: Callable[[str | None], str]
    base_table: str | None  # None: not sliceable (join-shaped query)
    convert: str  # "ids" | "triples" | "side"


def _build_jobs(view: GraphView, options: ExtractionOptions) -> list[_QueryJob]:
    jobs: list[_QueryJob] = []
    for spec in view.vertices:
        jobs.append(
            _QueryJob(
                "node spec",
                lambda t, s=spec: node_query(s, table=t),
                spec.table,
                "ids",
            )
        )
    for spec in view.edges:
        if isinstance(spec, EdgeSpec):
            n_directions = 1 if spec.directed else 2
            for k in range(n_directions):
                jobs.append(
                    _QueryJob(
                        "edge spec",
                        lambda t, s=spec, k=k: edge_spec_queries(s, table=t)[k],
                        spec.table,
                        "triples",
                    )
                )
        elif isinstance(spec, CoEdgeSpec):
            if _co_spec_mode(spec, options) == "selfjoin":
                jobs.append(
                    _QueryJob(
                        "co-occurrence spec",
                        lambda t, s=spec: co_edge_query(s, table=t),
                        None,
                        "triples",
                    )
                )
            else:
                jobs.append(
                    _QueryJob(
                        "co-occurrence spec",
                        lambda t, s=spec: co_edge_side_query(s, table=t),
                        spec.table,
                        "side",
                    )
                )
        else:  # pragma: no cover - GraphView.validate rejects this
            raise GraphViewError(f"unknown edge spec type {type(spec).__name__}")
    return jobs


def _co_spec_mode(spec: CoEdgeSpec, options: ExtractionOptions) -> str:
    """Expansion cannot reproduce custom aggregate weights — only
    ``COUNT(*)`` decomposes per group — so such specs keep the SQL path."""
    if spec.weight is not None:
        return "selfjoin"
    return options.co_mode


def _slice_bounds(num_rows: int, n_slices: int) -> list[tuple[int, int]]:
    edges = [round(num_rows * i / n_slices) for i in range(n_slices + 1)]
    return [(a, b) for a, b in zip(edges, edges[1:]) if a < b]


def _plan_slices(
    db: Database, job: _QueryJob, workers: int, options: ExtractionOptions
) -> list[tuple[str | None, tuple[int, int] | None]]:
    """Decide the (table_override, row_range) units one job runs as."""
    if job.base_table is None or workers <= 1:
        return [(None, None)]
    num_rows = db.table(job.base_table).num_rows
    if num_rows < options.slice_min_rows:
        return [(None, None)]
    n_slices = min(workers, max(1, num_rows // options.slice_min_rows))
    if n_slices < 2:
        return [(None, None)]
    return [(None, bounds) for bounds in _slice_bounds(num_rows, n_slices)]


# ---------------------------------------------------------------------------
# Execution strategies
# ---------------------------------------------------------------------------
def _wrap_engine_error(what: str, sql: str, exc: EngineError) -> GraphViewError:
    return GraphViewError(f"graph-view {what} failed: {exc}\n  SQL: {sql}")


def _run_serial(db: Database, jobs: list[_QueryJob]) -> tuple[list[list], int]:
    """The historical path: one ``query_batch`` per compiled statement."""
    per_job: list[list] = []
    for job in jobs:
        sql = job.sql_for(None)
        try:
            per_job.append([db.query_batch(sql)])
        except EngineError as exc:
            raise _wrap_engine_error(job.what, sql, exc) from exc
    return per_job, len(jobs)


def _run_threads(
    db: Database, jobs: list[_QueryJob], workers: int, options: ExtractionOptions
) -> tuple[list[list], int]:
    """Plan every unit under the database lock, execute lock-free on a
    thread pool.  Scratch slice tables exist only while their unit plans."""
    units: list[tuple[int, object]] = []  # (job index, plan)
    with db.lock:
        for job_index, job in enumerate(jobs):
            for _, bounds in _plan_slices(db, job, workers, options):
                if bounds is None:
                    sql = job.sql_for(None)
                    try:
                        plan = db.plan_query(sql)
                    except EngineError as exc:
                        raise _wrap_engine_error(job.what, sql, exc) from exc
                else:
                    plan = _plan_over_slice(db, job, bounds)
                units.append((job_index, plan))
    executor = make_thread_executor(workers)
    try:
        batches = executor(
            lambda plan, index: plan.execute(),
            [(plan, index) for index, (_, plan) in enumerate(units)],
        )
    except EngineError as exc:
        raise GraphViewError(f"graph-view extraction failed: {exc}") from exc
    finally:
        executor.close()
    per_job: list[list] = [[] for _ in jobs]
    for (job_index, _), batch in zip(units, batches):
        per_job[job_index].append(batch)
    return per_job, len(units)


def _plan_over_slice(db: Database, job: _QueryJob, bounds: tuple[int, int]):
    """Register one scratch slice table, plan against it, and drop it —
    the plan keeps a direct reference to the slice, so the catalog entry
    only needs to exist for the duration of planning."""
    base = db.table(job.base_table)
    scratch = f"_gvslice_{next(_slice_counter)}"
    sql = job.sql_for(scratch)
    db.catalog.register(
        Table(scratch, base.schema, base.data().slice(bounds[0], bounds[1]))
    )
    try:
        return db.plan_query(sql)
    except EngineError as exc:
        raise _wrap_engine_error(job.what, sql, exc) from exc
    finally:
        db.catalog.drop(scratch, if_exists=True)


def _execute_remote_unit(item, index):
    """Process-worker task body: rebuild a throwaway database holding
    exactly the shipped tables, run the query, return the batch.
    Module-level so it pickles into spawned workers."""
    sql, tables = item
    db = Database()
    for name, schema, batch in tables:
        db.catalog.register(Table(name, schema, batch))
    return db.query_batch(sql)


def _run_processes(
    db: Database, jobs: list[_QueryJob], workers: int, options: ExtractionOptions
) -> tuple[list[list], int]:
    """Ship each unit's slice of base data to spawned workers."""
    units: list[tuple[int, tuple]] = []  # (job index, (sql, tables))
    with db.lock:
        for job_index, job in enumerate(jobs):
            for _, bounds in _plan_slices(db, job, workers, options):
                if bounds is None:
                    tables = sorted(_job_tables(job))
                    payload_tables = [
                        (t, db.table(t).schema, db.table(t).data()) for t in tables
                    ]
                    sql = job.sql_for(None)
                else:
                    base = db.table(job.base_table)
                    scratch = f"_gvslice_{next(_slice_counter)}"
                    payload_tables = [
                        (scratch, base.schema, base.data().slice(bounds[0], bounds[1]))
                    ]
                    sql = job.sql_for(scratch)
                units.append((job_index, (sql, payload_tables)))
    executor = ProcessExecutor(workers)
    try:
        batches = executor(
            _execute_remote_unit,
            [(payload, index) for index, (_, payload) in enumerate(units)],
        )
    except EngineError as exc:
        raise GraphViewError(f"graph-view extraction failed: {exc}") from exc
    finally:
        executor.close()
    per_job: list[list] = [[] for _ in jobs]
    for (job_index, _), batch in zip(units, batches):
        per_job[job_index].append(batch)
    return per_job, len(units)


def _job_tables(job: _QueryJob) -> set[str]:
    """Base tables a job's query reads (what a process worker must have
    registered).  Sliceable jobs name theirs; a join-shaped co-occurrence
    query reads its spec table under two aliases, so take the token after
    every FROM/JOIN keyword (compiled SQL never nests derived tables)."""
    if job.base_table is not None:
        return {job.base_table}
    tokens = job.sql_for(None).split()
    return {
        tokens[i + 1]
        for i, token in enumerate(tokens[:-1])
        if token.upper() in ("FROM", "JOIN")
    }


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------
def lower_view(
    db: Database, view: GraphView, options: ExtractionOptions | None = None
) -> LoweredExtraction:
    """Run every compiled query of ``view`` and convert the results.

    Serial, thread, and process execution produce bit-identical per-spec
    arrays; see the module docstring for how each strategy works.
    """
    options = options or ExtractionOptions()
    options.validate()
    jobs = _build_jobs(view, options)
    choice = options.resolved_executor()
    workers = options.resolved_workers()
    if choice == "serial" or workers == 1:
        per_job, num_queries = _run_serial(db, jobs)
        parallelism = 1
    elif choice == "threads":
        per_job, num_queries = _run_threads(db, jobs, workers, options)
        parallelism = workers
    else:
        per_job, num_queries = _run_processes(db, jobs, workers, options)
        parallelism = workers

    result = LoweredExtraction(
        num_queries=num_queries, parallelism=parallelism
    )
    job_iter = iter(zip(jobs, per_job))

    for _ in view.vertices:
        job, batches = next(job_iter)
        result.node_parts.append(
            _concat_int([node_ids_from_batch(b) for b in batches])
        )
    for spec in view.edges:
        if isinstance(spec, EdgeSpec):
            triples = []
            n_directions = 1 if spec.directed else 2
            for _ in range(n_directions):
                _, batches = next(job_iter)
                triples.append(_concat_triples([edge_triples_from_batch(b) for b in batches]))
            result.edge_parts.append(EdgeSpecResult(spec=spec, triples=triples))
        else:
            job, batches = next(job_iter)
            if job.convert == "triples":  # selfjoin lowering
                result.edge_parts.append(
                    EdgeSpecResult(
                        spec=spec,
                        triples=[_concat_triples(
                            [edge_triples_from_batch(b) for b in batches]
                        )],
                    )
                )
                continue
            member, via = _concat_side(batches)
            cap = None
            if options.co_mode == "capped":
                cap = options.co_cap if options.co_cap is not None else co_group_cap()
            src, dst, weight, truncated = expand_co_occurrence(member, via, cap)
            result.truncated_groups += truncated
            result.edge_parts.append(
                EdgeSpecResult(
                    spec=spec,
                    triples=[(src, dst, weight)],
                    side_member=member,
                    side_via=via,
                )
            )
    return result


def _concat_int(parts: Sequence[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=np.int64)
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


def _concat_triples(
    triples: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    if len(triples) == 1:
        return triples[0]
    return (
        np.concatenate([t[0] for t in triples]),
        np.concatenate([t[1] for t in triples]),
        np.concatenate([t[2] for t in triples]),
    )


def _concat_side(batches: Sequence) -> tuple[np.ndarray, np.ndarray]:
    """Valid ``(member, via)`` rows of the side-query batches, in row
    order (NULL member or via rows never join — drop them here once)."""
    member_parts: list[np.ndarray] = []
    via_parts: list[np.ndarray] = []
    for batch in batches:
        member_col = batch.column("member")
        via_col = batch.column("via")
        keep = np.asarray(member_col.valid, dtype=bool) & np.asarray(
            via_col.valid, dtype=bool
        )
        member_parts.append(np.asarray(member_col.values, dtype=np.int64)[keep])
        via_parts.append(np.asarray(via_col.values)[keep])
    member = (
        np.concatenate(member_parts) if member_parts else np.empty(0, dtype=np.int64)
    )
    via = np.concatenate(via_parts) if via_parts else np.empty(0, dtype=np.int64)
    return member, via


def options_for_config(config) -> ExtractionOptions:
    """Derive extraction options from a :class:`VertexicaConfig` — the
    extraction plane inherits the run plane's executor choice and worker
    count unless the caller overrides them per view."""
    return ExtractionOptions(executor=config.executor, n_workers=config.n_workers)


def with_overrides(options: ExtractionOptions, **overrides) -> ExtractionOptions:
    """A copy of ``options`` with the given fields replaced."""
    return replace(options, **overrides)
