"""Prebuilt pipeline stages matching the demo GUI's toolbar.

Each factory returns a stage function closed over its parameters; stages
expect the shared context to provide ``"db"`` (the engine) and ``"graph"``
(a :class:`~repro.core.storage.GraphHandle`), and subgraph-producing
stages replace ``"graph"`` downstream via their own output.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.storage import GraphHandle, GraphStorage
from repro.sql_graph.pagerank import pagerank_sql
from repro.sql_graph.shortest_paths import shortest_paths_sql
from repro.sql_graph.triangle_counting import triangle_count_sql

__all__ = [
    "select_subgraph_stage",
    "triangle_count_stage",
    "shortest_paths_stage",
    "pagerank_stage",
    "aggregate_stage",
    "sql_stage",
]

StageFn = Callable[[dict[str, Any]], Any]


def _graph_from(context: dict[str, Any], source: str | None) -> GraphHandle:
    return context[source] if source else context["graph"]


def select_subgraph_stage(
    edge_predicate: str,
    name: str,
    graph_key: str | None = None,
) -> StageFn:
    """Relational selection producing a new graph (the GUI's "Graph
    Selection" operator).  ``edge_predicate`` is SQL over src/dst/weight."""

    def stage(context: dict[str, Any]) -> GraphHandle:
        db = context["db"]
        graph = _graph_from(context, graph_key)
        rows = db.execute(
            f"SELECT src, dst, weight FROM {graph.edge_table} "
            f"WHERE {edge_predicate}"
        ).rows()
        storage = GraphStorage(db)
        return storage.load_graph(
            name,
            [r[0] for r in rows],
            [r[1] for r in rows],
            [r[2] for r in rows],
        )

    return stage


def triangle_count_stage(graph_key: str | None = None) -> StageFn:
    """Total triangle count of the (possibly selected) graph."""

    def stage(context: dict[str, Any]) -> int:
        return triangle_count_sql(context["db"], _graph_from(context, graph_key))

    return stage


def shortest_paths_stage(source: int, graph_key: str | None = None) -> StageFn:
    """SSSP distances from ``source``."""

    def stage(context: dict[str, Any]) -> dict[int, float]:
        return shortest_paths_sql(
            context["db"], _graph_from(context, graph_key), source
        )

    return stage


def pagerank_stage(
    iterations: int = 10, damping: float = 0.85, graph_key: str | None = None
) -> StageFn:
    """PageRank over the (possibly selected) graph."""

    def stage(context: dict[str, Any]) -> dict[int, float]:
        return pagerank_sql(
            context["db"], _graph_from(context, graph_key),
            iterations=iterations, damping=damping,
        )

    return stage


def aggregate_stage(
    input_key: str,
    fn: Callable[[Any], Any],
) -> StageFn:
    """Post-process another stage's output (histograms, top-k, stats)."""

    def stage(context: dict[str, Any]) -> Any:
        return fn(context[input_key])

    return stage


def sql_stage(sql: str) -> StageFn:
    """Run arbitrary SQL; the stage value is the row list."""

    def stage(context: dict[str, Any]) -> Any:
        return context["db"].execute(sql).rows()

    return stage
