"""The dataflow DAG executor.

Stages are named callables ``stage(context) -> value``; declaring
``depends_on`` orders execution (topological, deterministic by insertion
order among ready stages).  Each stage's output lands in the shared
context under its name, so downstream stages compose freely — the
programmatic version of dragging boxes in the demo's Dataflow panel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import PipelineError

__all__ = ["Pipeline", "PipelineResult", "StageResult"]

StageFn = Callable[[dict[str, Any]], Any]


@dataclass(frozen=True)
class StageResult:
    """One stage's outcome."""

    name: str
    value: Any
    seconds: float


@dataclass
class PipelineResult:
    """Every stage's outcome, in execution order."""

    stages: list[StageResult] = field(default_factory=list)

    def __getitem__(self, name: str) -> Any:
        for stage in self.stages:
            if stage.name == name:
                return stage.value
        raise KeyError(name)

    @property
    def total_seconds(self) -> float:
        """Sum of stage runtimes."""
        return sum(stage.seconds for stage in self.stages)

    def timings(self) -> dict[str, float]:
        """``{stage: seconds}`` — the demo GUI's time monitor."""
        return {stage.name: stage.seconds for stage in self.stages}


class Pipeline:
    """A named DAG of analysis stages."""

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self._stages: dict[str, tuple[StageFn, tuple[str, ...]]] = {}

    def add_stage(
        self,
        name: str,
        fn: StageFn,
        depends_on: Sequence[str] = (),
    ) -> "Pipeline":
        """Register a stage; returns self for chaining.

        Raises:
            PipelineError: duplicate name or unknown dependency.
        """
        if name in self._stages:
            raise PipelineError(f"duplicate stage name {name!r}")
        for dep in depends_on:
            if dep not in self._stages:
                raise PipelineError(
                    f"stage {name!r} depends on unknown stage {dep!r} "
                    "(declare dependencies before dependents)"
                )
        self._stages[name] = (fn, tuple(depends_on))
        return self

    def stage_names(self) -> list[str]:
        """Stages in insertion order."""
        return list(self._stages)

    # ------------------------------------------------------------------
    def run(self, context: Mapping[str, Any] | None = None) -> PipelineResult:
        """Execute all stages topologically.

        Args:
            context: initial values visible to every stage (e.g. the
                database and graph handles).

        Raises:
            PipelineError: on dependency cycles (unreachable given the
                declare-before-use rule, but checked defensively) or when
                a stage raises (wrapped with stage context).
        """
        shared: dict[str, Any] = dict(context or {})
        done: set[str] = set()
        result = PipelineResult()
        remaining = dict(self._stages)
        while remaining:
            ready = [
                name
                for name, (_, deps) in remaining.items()
                if all(dep in done for dep in deps)
            ]
            if not ready:
                raise PipelineError(
                    f"dependency cycle among stages: {sorted(remaining)}"
                )
            for name in ready:
                fn, _ = remaining.pop(name)
                started = time.perf_counter()
                try:
                    value = fn(shared)
                except PipelineError:
                    raise
                except Exception as exc:
                    raise PipelineError(f"stage {name!r} failed: {exc}") from exc
                elapsed = time.perf_counter() - started
                shared[name] = value
                done.add(name)
                result.stages.append(StageResult(name, value, elapsed))
        return result
