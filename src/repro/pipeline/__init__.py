"""``repro.pipeline`` — dataflow pipelines (§3.4 / the GUI's Dataflow panel).

A small DAG executor over named stages, plus stage factories for the
operators the demo GUI offers (selection, graph algorithms, aggregation),
so the paper's example pipeline — Selection -> Triangle Counting ->
Shortest Paths -> PageRank -> Aggregate — is a few lines of composition.
"""

from repro.pipeline.dataflow import Pipeline, PipelineResult, StageResult
from repro.pipeline.stages import (
    aggregate_stage,
    pagerank_stage,
    select_subgraph_stage,
    shortest_paths_stage,
    sql_stage,
    triangle_count_stage,
)

__all__ = [
    "Pipeline",
    "PipelineResult",
    "StageResult",
    "select_subgraph_stage",
    "triangle_count_stage",
    "shortest_paths_stage",
    "pagerank_stage",
    "aggregate_stage",
    "sql_stage",
]
