"""Exception hierarchy shared by every subsystem in the reproduction.

The engine, the Vertexica layer, and both baselines raise exceptions from
this module so that callers can catch a single family (``ReproError``) or a
precise subclass (for example ``SqlSyntaxError``) without importing engine
internals.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class EngineError(ReproError):
    """Base class for errors raised by the relational engine."""


class SqlSyntaxError(EngineError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so tests and users can pinpoint the
    problem inside multi-line statements.
    """

    def __init__(self, message: str, position: int = -1, line: int = -1) -> None:
        self.position = position
        self.line = line
        location = f" (line {line}, offset {position})" if position >= 0 else ""
        super().__init__(f"{message}{location}")


class CatalogError(EngineError):
    """A table, column, function, or procedure name could not be resolved,
    or a CREATE collided with an existing object."""


class TypeMismatchError(EngineError):
    """An expression or insert combined values of incompatible types."""


class ConstraintError(EngineError):
    """An integrity constraint (NOT NULL, PRIMARY KEY) was violated."""


class TransactionError(EngineError):
    """Illegal transaction usage, e.g. nested BEGIN or COMMIT without BEGIN."""


class UdfError(EngineError):
    """A user-defined function or transform failed or was misregistered."""


class PlanError(EngineError):
    """The planner could not translate a statement into an operator tree."""


class ExecutionError(EngineError):
    """A physical operator failed while producing rows."""


class VertexicaError(ReproError):
    """Base class for errors raised by the vertex-centric layer."""


class ProgramError(VertexicaError):
    """A user vertex program misbehaved (bad message type, bad halt, ...)."""


class GraphLoadError(VertexicaError):
    """Graph data could not be loaded into the vertex/edge tables."""


class GraphViewError(VertexicaError):
    """A graph view declaration was invalid or could not be extracted
    from its base tables."""


class RecoveryError(VertexicaError):
    """A run checkpoint could not be loaded or does not match the run
    being resumed (different graph, program, or torn beyond repair)."""


class ServingError(VertexicaError):
    """Base class for errors raised by the concurrent serving tier
    (session misuse, admission rejection, snapshot staleness)."""


class SnapshotInvalid(ServingError):
    """A pinned snapshot handle no longer matches the live table: the
    table advanced past the pinned version, was wholesale-replaced,
    truncated, restored, or dropped.  Raised instead of silently serving
    a torn read; the caller should re-pin and retry."""


class AdmissionError(ServingError):
    """The serving tier refused a request: the admission queue is full
    or a per-session limit was exceeded.  Retryable by backing off —
    carries ``transient = True`` so :func:`repro.core.faults.retry_call`
    treats it as such."""

    transient = True


class BaselineError(ReproError):
    """Base class for errors raised by the Giraph / graph-DB baselines."""


class GraphDbError(BaselineError):
    """Errors from the transactional property-graph baseline."""


class GraphDbCapacityError(GraphDbError):
    """The graph exceeds the store's configured capacity — used to mirror
    the paper's observation that the graph database could only handle the
    smallest dataset."""


class DatasetError(ReproError):
    """Errors from dataset generation or parsing."""


class PipelineError(ReproError):
    """Errors from the dataflow pipeline layer."""
