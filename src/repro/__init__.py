"""Vertexica reproduction: vertex-centric graph analytics inside a
from-scratch columnar relational engine.

Reproduces *"Vertexica: Your Relational Friend for Graph Analytics!"*
(Jindal et al., PVLDB 7(13), 2014).  See DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import Vertexica
    from repro.programs import PageRank

    vx = Vertexica()
    graph = vx.load_graph("g", src=[0, 1, 2], dst=[1, 2, 0])
    result = vx.run(graph, PageRank(iterations=10))
    print(result.values)
"""

from repro.core import Vertexica, VertexicaConfig, VertexicaResult, VertexProgram
from repro.engine import Database
from repro.graphview import CoEdgeSpec, EdgeSpec, GraphView, NodeSpec
from repro.serving import ServingSession, VertexicaService

__version__ = "1.2.0"

__all__ = [
    "Vertexica",
    "VertexicaConfig",
    "VertexicaResult",
    "VertexProgram",
    "Database",
    "GraphView",
    "NodeSpec",
    "EdgeSpec",
    "CoEdgeSpec",
    "VertexicaService",
    "ServingSession",
    "__version__",
]
