"""Ad-hoc graph mutations through SQL DML (§3.3).

"Vertexica allows ad-hoc mutations to the graph as well as the associated
metadata, which is simply impossible to do in many new graph processing
systems such as Giraph."  Every mutation here is ordinary DML against the
edge/node tables, wrapped in an engine transaction so a failing batch
leaves the graph untouched.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.storage import GraphHandle
from repro.engine.database import Database

__all__ = ["GraphMutator"]


class GraphMutator:
    """SQL-DML mutations over a loaded graph's tables."""

    def __init__(self, db: Database, graph: GraphHandle) -> None:
        self.db = db
        self.graph = graph

    # ------------------------------------------------------------------
    def add_vertex(self, vertex_id: int) -> None:
        """Insert a (possibly isolated) vertex id."""
        self.db.execute(
            f"INSERT INTO {self.graph.node_table} VALUES (?)", params=(vertex_id,)
        )
        self.graph.num_vertices += 1

    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> None:
        """Insert one edge, creating unseen endpoint ids in the node table."""
        db = self.db
        for endpoint in (src, dst):
            known = db.execute(
                f"SELECT COUNT(*) FROM {self.graph.node_table} WHERE id = ?",
                params=(endpoint,),
            ).scalar()
            if not known:
                self.add_vertex(endpoint)
        db.execute(
            f"INSERT INTO {self.graph.edge_table} VALUES (?, ?, ?)",
            params=(src, dst, float(weight)),
        )
        self.graph.num_edges += 1

    def add_edges(self, edges: Iterable[tuple[int, int, float]]) -> int:
        """Insert a batch of ``(src, dst, weight)`` edges atomically."""
        edges = list(edges)
        with self.db.transaction():
            for src, dst, weight in edges:
                self.add_edge(src, dst, weight)
        return len(edges)

    def remove_edge(self, src: int, dst: int) -> int:
        """Delete edges between two endpoints; returns how many went away."""
        removed = self.db.execute(
            f"DELETE FROM {self.graph.edge_table} WHERE src = ? AND dst = ?",
            params=(src, dst),
        ).row_count
        self.graph.num_edges -= removed
        return removed

    def update_weight(self, src: int, dst: int, weight: float) -> int:
        """Set the weight of existing edges; returns the rows touched."""
        return self.db.execute(
            f"UPDATE {self.graph.edge_table} SET weight = ? WHERE src = ? AND dst = ?",
            params=(float(weight), src, dst),
        ).row_count

    def remove_vertex(self, vertex_id: int) -> int:
        """Delete a vertex and every incident edge; returns edges removed."""
        db = self.db
        with db.transaction():
            removed = db.execute(
                f"DELETE FROM {self.graph.edge_table} WHERE src = ? OR dst = ?",
                params=(vertex_id, vertex_id),
            ).row_count
            db.execute(
                f"DELETE FROM {self.graph.node_table} WHERE id = ?",
                params=(vertex_id,),
            )
        self.graph.num_edges -= removed
        self.graph.num_vertices -= 1
        return removed
