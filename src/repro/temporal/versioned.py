"""Versioned edge storage for time-travel analysis (§3.3 / §4.2.3).

Edges carry ``[valid_from, valid_to)`` intervals in one history table;
:meth:`VersionedEdgeStore.snapshot` materializes the graph as of any
timestamp into ordinary edge/node tables, giving temporal queries ("how
has the PageRank of this node changed over the last 5 years?") plain
:class:`~repro.core.storage.GraphHandle` inputs.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.storage import GraphHandle, GraphStorage
from repro.engine.database import Database
from repro.errors import VertexicaError

__all__ = ["VersionedEdgeStore"]

#: "forever" sentinel for open-ended validity.
FOREVER = 2**62


class VersionedEdgeStore:
    """A bitemporal-lite edge history over one logical graph."""

    def __init__(self, db: Database, name: str) -> None:
        if not name.isidentifier():
            raise VertexicaError(f"graph name must be an identifier: {name!r}")
        self.db = db
        self.name = name
        self.history_table = f"{name}_edge_history"
        if not db.has_table(self.history_table):
            db.execute(
                f"CREATE TABLE {self.history_table} ("
                "src INTEGER NOT NULL, dst INTEGER NOT NULL, "
                "weight FLOAT NOT NULL, "
                "valid_from INTEGER NOT NULL, valid_to INTEGER NOT NULL)"
            )

    # ------------------------------------------------------------------
    # Recording history
    # ------------------------------------------------------------------
    def add_edge(self, src: int, dst: int, timestamp: int, weight: float = 1.0) -> None:
        """Record an edge appearing at ``timestamp`` (open-ended)."""
        self.db.execute(
            f"INSERT INTO {self.history_table} VALUES (?, ?, ?, ?, ?)",
            params=(src, dst, float(weight), int(timestamp), FOREVER),
        )

    def add_edges(self, edges: Iterable[tuple[int, int, int]]) -> int:
        """Record ``(src, dst, timestamp)`` triples; returns the count."""
        count = 0
        for src, dst, timestamp in edges:
            self.add_edge(src, dst, timestamp)
            count += 1
        return count

    def remove_edge(self, src: int, dst: int, timestamp: int) -> int:
        """Close the validity of live edges between two endpoints at
        ``timestamp``; returns how many intervals were closed."""
        return self.db.execute(
            f"UPDATE {self.history_table} SET valid_to = ? "
            f"WHERE src = ? AND dst = ? AND valid_to = {FOREVER} "
            f"AND valid_from <= ?",
            params=(int(timestamp), src, dst, int(timestamp)),
        ).row_count

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, timestamp: int, snapshot_name: str | None = None) -> GraphHandle:
        """Materialize the graph as of ``timestamp`` into standard tables.

        The snapshot's vertex set is the union of endpoints over *all*
        history (not just the live window) so per-vertex results are
        comparable across snapshots.
        """
        label = snapshot_name or f"{self.name}_asof{timestamp}"
        rows = self.db.execute(
            f"SELECT src, dst, weight FROM {self.history_table} "
            f"WHERE valid_from <= ? AND valid_to > ?",
            params=(int(timestamp), int(timestamp)),
        ).rows()
        all_ids = self.db.execute(
            f"SELECT src AS id FROM {self.history_table} "
            f"UNION SELECT dst FROM {self.history_table}"
        ).rows()
        storage = GraphStorage(self.db)
        handle = storage.load_graph(
            label,
            [r[0] for r in rows],
            [r[1] for r in rows],
            [r[2] for r in rows],
        )
        # Extend the node table to the full historical vertex set.
        known = {row[0] for row in self.db.execute(
            f"SELECT id FROM {handle.node_table}"
        ).rows()}
        missing = [vid for (vid,) in all_ids if vid not in known]
        for vid in missing:
            self.db.execute(
                f"INSERT INTO {handle.node_table} VALUES (?)", params=(vid,)
            )
        handle.num_vertices = len(known) + len(missing)
        return handle

    def timestamps(self) -> list[int]:
        """Distinct event timestamps (interval starts and finite ends)."""
        rows = self.db.execute(
            f"SELECT valid_from AS t FROM {self.history_table} "
            f"UNION SELECT valid_to FROM {self.history_table} "
            f"WHERE valid_to < {FOREVER} ORDER BY 1"
        ).rows()
        return [t for (t,) in rows]
