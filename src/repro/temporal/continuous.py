"""Continuous analysis (§4.2.3): re-run an analysis as the graph changes.

The demo's "continuous run" mode monitors how an analysis' output and
runtime respond to graph mutations; :class:`ContinuousAnalysis` is the
programmatic driver: register an analysis callback, mutate, observe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.core.storage import GraphHandle
from repro.engine.database import Database
from repro.temporal.mutations import GraphMutator

__all__ = ["ContinuousAnalysis", "ContinuousTick"]


@dataclass(frozen=True)
class ContinuousTick:
    """One observation: result + runtime after a mutation batch."""

    tick: int
    mutations_applied: int
    result: Any
    seconds: float


class ContinuousAnalysis:
    """Drives analysis re-execution across mutation batches.

    Args:
        db: the shared database.
        graph: the graph under analysis.
        analysis: a callable ``analysis(db, graph) -> result`` — any of
            the :mod:`repro.sql_graph` functions fits directly.
    """

    def __init__(
        self,
        db: Database,
        graph: GraphHandle,
        analysis: Callable[[Database, GraphHandle], Any],
    ) -> None:
        self.db = db
        self.graph = graph
        self.analysis = analysis
        self.mutator = GraphMutator(db, graph)
        self.history: list[ContinuousTick] = []

    def run_once(self) -> ContinuousTick:
        """Run the analysis with no mutation (the initial observation)."""
        return self._observe(0)

    def apply_and_rerun(
        self, edges_to_add: Iterable[tuple[int, int, float]] = (),
        edges_to_remove: Iterable[tuple[int, int]] = (),
    ) -> ContinuousTick:
        """Apply one mutation batch, then re-run the analysis."""
        count = 0
        edges_to_add = list(edges_to_add)
        if edges_to_add:
            count += self.mutator.add_edges(edges_to_add)
        for src, dst in edges_to_remove:
            count += self.mutator.remove_edge(src, dst)
        return self._observe(count)

    def _observe(self, mutations: int) -> ContinuousTick:
        started = time.perf_counter()
        result = self.analysis(self.db, self.graph)
        tick = ContinuousTick(
            tick=len(self.history),
            mutations_applied=mutations,
            result=result,
            seconds=time.perf_counter() - started,
        )
        self.history.append(tick)
        return tick
