"""``repro.temporal`` — dynamic graph analysis (§3.3).

Graph mutations through SQL DML, a versioned edge store for time-travel
snapshots, temporal queries (PageRank drift, shortest-path decreases),
and a continuous-analysis driver — "treat graph analytics as a continuous
process rather than an offline one-time activity".
"""

from repro.temporal.continuous import ContinuousAnalysis
from repro.temporal.mutations import GraphMutator
from repro.temporal.queries import (
    pagerank_delta,
    pagerank_over_time,
    paths_decreased,
)
from repro.temporal.versioned import VersionedEdgeStore

__all__ = [
    "GraphMutator",
    "VersionedEdgeStore",
    "pagerank_over_time",
    "pagerank_delta",
    "paths_decreased",
    "ContinuousAnalysis",
]
