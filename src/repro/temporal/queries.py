"""Temporal queries over versioned graphs (§3.3 / §4.2.3).

The paper's examples: "the nodes whose PageRanks have changed over last
one year", "all node-pairs whose shortest paths have decreased by at least
a threshold", "how the PageRank of a given node has changed in the last 5
years".  Each query snapshots the versioned store at the requested
timestamps and runs the SQL algorithms on the snapshots.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.database import Database
from repro.sql_graph.pagerank import pagerank_sql
from repro.sql_graph.shortest_paths import shortest_paths_sql
from repro.temporal.versioned import VersionedEdgeStore

__all__ = ["pagerank_over_time", "pagerank_delta", "paths_decreased"]


def pagerank_over_time(
    db: Database,
    store: VersionedEdgeStore,
    timestamps: Sequence[int],
    iterations: int = 10,
) -> dict[int, dict[int, float]]:
    """PageRank at each timestamp: ``{timestamp: {vertex: rank}}``."""
    out: dict[int, dict[int, float]] = {}
    for timestamp in timestamps:
        snapshot = store.snapshot(timestamp)
        out[timestamp] = pagerank_sql(db, snapshot, iterations=iterations)
    return out


def pagerank_delta(
    before: dict[int, float],
    after: dict[int, float],
    min_change: float = 0.0,
    top_k: int | None = None,
) -> list[tuple[int, float]]:
    """Vertices whose rank changed by more than ``min_change`` between two
    snapshots, largest absolute change first."""
    changes = []
    for vertex_id in set(before) | set(after):
        delta = after.get(vertex_id, 0.0) - before.get(vertex_id, 0.0)
        if abs(delta) > min_change:
            changes.append((vertex_id, delta))
    changes.sort(key=lambda item: (-abs(item[1]), item[0]))
    return changes[:top_k] if top_k is not None else changes


def paths_decreased(
    db: Database,
    store: VersionedEdgeStore,
    source: int,
    before_ts: int,
    after_ts: int,
    min_decrease: float = 1.0,
) -> list[tuple[int, float, float]]:
    """Vertices that moved closer to ``source`` between two timestamps.

    The paper asks for "node-pairs whose shortest paths have decreased by
    at least a threshold"; per-source keeps the cost one SSSP per snapshot
    (run it per source of interest for the all-pairs variant).

    Returns:
        ``[(vertex, old_distance, new_distance)]`` sorted by decrease.
    """
    before = shortest_paths_sql(db, store.snapshot(before_ts), source)
    after = shortest_paths_sql(db, store.snapshot(after_ts), source)
    out = []
    for vertex_id, new_distance in after.items():
        old_distance = before.get(vertex_id, float("inf"))
        if old_distance - new_distance >= min_decrease:
            out.append((vertex_id, old_distance, new_distance))
    out.sort(key=lambda item: (item[2] - item[1], item[0]))
    return out
