"""Triangle counting in SQL — the paper's flagship 1-hop algorithm (§3.2).

Triangles are counted on the underlying *undirected* graph: edges are
canonicalized to ``src < dst`` pairs, and a triangle ``x < y < z`` is the
join of its three canonical edges — each triangle matched exactly once.
"""

from __future__ import annotations

from repro.core.storage import GraphHandle
from repro.engine.database import Database
from repro.sql_graph._util import canonical_edges_sql, scratch_tables

__all__ = ["triangle_count_sql", "per_node_triangle_counts_sql"]


def triangle_count_sql(db: Database, graph: GraphHandle) -> int:
    """Total number of distinct triangles in the undirected graph."""
    g = graph.name
    with scratch_tables(db, f"{g}_tc_cedge") as (cedge,):
        db.execute(
            f"CREATE TABLE {cedge} AS {canonical_edges_sql(graph.edge_table)}"
        )
        total = db.execute(
            f"SELECT COUNT(*) FROM {cedge} e1 "
            f"JOIN {cedge} e2 ON e1.dst = e2.src "
            f"JOIN {cedge} e3 ON e3.src = e1.src AND e3.dst = e2.dst"
        ).scalar()
    return int(total)


def per_node_triangle_counts_sql(db: Database, graph: GraphHandle) -> dict[int, int]:
    """Triangles through each vertex (vertices in no triangle get 0).

    Materializes the triangle list once, then counts each corner's
    appearances with a UNION ALL + GROUP BY — the set-oriented equivalent
    of "count the triangles this node participates in" from the demo's
    interactive scenario.
    """
    g = graph.name
    with scratch_tables(db, f"{g}_tc_cedge", f"{g}_tc_tri") as (cedge, tri):
        db.execute(
            f"CREATE TABLE {cedge} AS {canonical_edges_sql(graph.edge_table)}"
        )
        db.execute(
            f"CREATE TABLE {tri} AS "
            f"SELECT e1.src AS x, e1.dst AS y, e2.dst AS z "
            f"FROM {cedge} e1 "
            f"JOIN {cedge} e2 ON e1.dst = e2.src "
            f"JOIN {cedge} e3 ON e3.src = e1.src AND e3.dst = e2.dst"
        )
        rows = db.execute(
            f"SELECT corner.v AS v, COUNT(*) AS triangles FROM ("
            f"  SELECT x AS v FROM {tri} "
            f"  UNION ALL SELECT y FROM {tri} "
            f"  UNION ALL SELECT z FROM {tri}"
            f") AS corner GROUP BY corner.v"
        ).rows()
        node_rows = db.execute(f"SELECT id FROM {graph.node_table}").rows()
    counts = {vertex_id: 0 for (vertex_id,) in node_rows}
    for vertex_id, triangles in rows:
        counts[vertex_id] = triangles
    return counts
