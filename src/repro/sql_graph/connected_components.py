"""Connected components in pure SQL (minimum-label fixpoint).

Requires the edge table to contain both directions of every edge (load the
graph with ``symmetrize=True``); the iteration then converges to the same
labels as the vertex-centric program and the union-find oracle.
"""

from __future__ import annotations

from repro.core.storage import GraphHandle
from repro.engine.database import Database
from repro.sql_graph._util import scratch_tables

__all__ = ["connected_components_sql"]


def connected_components_sql(db: Database, graph: GraphHandle) -> dict[int, int]:
    """Component label (smallest member id) per vertex."""
    g = graph.name
    with scratch_tables(
        db, f"{g}_cc_comp", f"{g}_cc_cand", f"{g}_cc_merged"
    ) as (comp, cand, merged):
        db.execute(
            f"CREATE TABLE {comp} AS SELECT id, id AS comp FROM {graph.node_table}"
        )
        while True:
            db.execute(
                f"CREATE TABLE {cand} AS "
                f"SELECT e.dst AS id, MIN(c.comp) AS m "
                f"FROM {comp} c JOIN {graph.edge_table} e ON c.id = e.src "
                f"GROUP BY e.dst"
            )
            improved = db.execute(
                f"SELECT COUNT(*) FROM {cand} n JOIN {comp} c ON n.id = c.id "
                f"WHERE n.m < c.comp"
            ).scalar()
            if not improved:
                db.execute(f"DROP TABLE {cand}")
                break
            db.execute(
                f"CREATE TABLE {merged} AS "
                f"SELECT c.id AS id, LEAST(c.comp, COALESCE(n.m, c.comp)) AS comp "
                f"FROM {comp} c LEFT JOIN {cand} n ON c.id = n.id"
            )
            db.execute(f"DROP TABLE {comp}")
            db.execute(f"CREATE TABLE {comp} AS SELECT id, comp FROM {merged}")
            db.execute(f"DROP TABLE {merged}")
            db.execute(f"DROP TABLE {cand}")
        rows = db.execute(f"SELECT id, comp FROM {comp} ORDER BY id").rows()
    return {vertex_id: comp_id for vertex_id, comp_id in rows}
