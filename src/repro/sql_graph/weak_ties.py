"""Weak ties (§3.2): nodes bridging otherwise-disconnected neighbors.

A vertex ``v`` is a weak tie for the pair ``(a, b)`` when both are its
neighbors but no edge connects them directly — Granovetter's bridges.  The
query is two joins of the undirected neighbor relation plus an anti-join
(LEFT JOIN ... IS NULL) ruling out directly-connected pairs.
"""

from __future__ import annotations

from repro.core.storage import GraphHandle
from repro.engine.database import Database
from repro.sql_graph._util import scratch_tables, undirected_neighbors_sql

__all__ = ["weak_ties_sql"]


def weak_ties_sql(
    db: Database, graph: GraphHandle, min_pairs: int = 1
) -> dict[int, int]:
    """Bridged-pair count per bridging vertex.

    Returns ``{vertex_id: number of disconnected neighbor pairs it
    bridges}`` for vertices with at least ``min_pairs``.
    """
    g = graph.name
    with scratch_tables(db, f"{g}_wt_nbr") as (nbr,):
        db.execute(
            f"CREATE TABLE {nbr} AS {undirected_neighbors_sql(graph.edge_table)}"
        )
        rows = db.execute(
            f"SELECT n1.dst AS v, COUNT(*) AS pairs "
            f"FROM {nbr} n1 "
            f"JOIN {nbr} n2 ON n1.dst = n2.src AND n1.src < n2.dst "
            f"LEFT JOIN {nbr} n3 ON n3.src = n1.src AND n3.dst = n2.dst "
            f"WHERE n3.src IS NULL "
            f"GROUP BY n1.dst "
            f"HAVING COUNT(*) >= {int(min_pairs)} "
            f"ORDER BY pairs DESC, v"
        ).rows()
    return {vertex_id: pairs for vertex_id, pairs in rows}
