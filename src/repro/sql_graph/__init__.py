"""``repro.sql_graph`` — hand-written SQL graph algorithms.

The paper's "Vertexica (SQL)" bars: the same algorithms expressed directly
as set-oriented SQL over the edge/node tables, which beats the
vertex-centric execution by avoiding per-vertex UDF invocation entirely.
Also home to the §3.2 one-hop algorithms (triangle counting, strong
overlap, weak ties) that are natural in SQL but awkward vertex-centrically.

All functions take a :class:`~repro.engine.database.Database` plus a
:class:`~repro.core.storage.GraphHandle` and manage their own scratch
tables (prefixed with the graph name, dropped on completion).
"""

from repro.sql_graph.clustering import (
    global_clustering_coefficient,
    local_clustering_coefficients,
)
from repro.sql_graph.connected_components import connected_components_sql
from repro.sql_graph.pagerank import pagerank_sql
from repro.sql_graph.shortest_paths import shortest_paths_sql
from repro.sql_graph.strong_overlap import strong_overlap_sql
from repro.sql_graph.triangle_counting import (
    per_node_triangle_counts_sql,
    triangle_count_sql,
)
from repro.sql_graph.weak_ties import weak_ties_sql

__all__ = [
    "pagerank_sql",
    "shortest_paths_sql",
    "connected_components_sql",
    "triangle_count_sql",
    "per_node_triangle_counts_sql",
    "strong_overlap_sql",
    "weak_ties_sql",
    "local_clustering_coefficients",
    "global_clustering_coefficient",
]
