"""Clustering coefficients in SQL (§3.2: "could be used for computing
clustering coefficients"; §4.2.2: global clustering = triangles + wedges).
"""

from __future__ import annotations

from repro.core.storage import GraphHandle
from repro.engine.database import Database
from repro.sql_graph._util import scratch_tables, undirected_neighbors_sql
from repro.sql_graph.triangle_counting import (
    per_node_triangle_counts_sql,
    triangle_count_sql,
)

__all__ = ["local_clustering_coefficients", "global_clustering_coefficient"]


def _undirected_degrees(db: Database, graph: GraphHandle) -> dict[int, int]:
    g = graph.name
    with scratch_tables(db, f"{g}_cl_nbr") as (nbr,):
        db.execute(
            f"CREATE TABLE {nbr} AS {undirected_neighbors_sql(graph.edge_table)}"
        )
        rows = db.execute(
            f"SELECT src, COUNT(*) AS deg FROM {nbr} GROUP BY src"
        ).rows()
    return {vertex_id: degree for vertex_id, degree in rows}


def local_clustering_coefficients(db: Database, graph: GraphHandle) -> dict[int, float]:
    """``cc(v) = triangles(v) / C(deg(v), 2)``; 0 for degree < 2."""
    triangles = per_node_triangle_counts_sql(db, graph)
    degrees = _undirected_degrees(db, graph)
    out: dict[int, float] = {}
    for vertex_id, tri in triangles.items():
        degree = degrees.get(vertex_id, 0)
        possible = degree * (degree - 1) / 2
        out[vertex_id] = (tri / possible) if possible else 0.0
    return out


def global_clustering_coefficient(db: Database, graph: GraphHandle) -> float:
    """``3 * triangles / wedges`` over the undirected graph (0 when the
    graph has no wedge)."""
    total_triangles = triangle_count_sql(db, graph)
    degrees = _undirected_degrees(db, graph)
    wedges = sum(d * (d - 1) / 2 for d in degrees.values())
    return (3.0 * total_triangles / wedges) if wedges else 0.0
