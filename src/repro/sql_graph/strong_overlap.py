"""Strong overlap (§3.2): node pairs sharing many neighbors.

"Find pairs of nodes having strong overlap between them.  Overlap could be
defined as number of common neighbors."  One self-join of the undirected
neighbor relation + GROUP BY/HAVING — a query shape that is natural in SQL
and awkward vertex-centrically (it needs the full 1-hop neighborhood).
"""

from __future__ import annotations

from repro.core.storage import GraphHandle
from repro.engine.database import Database
from repro.sql_graph._util import scratch_tables, undirected_neighbors_sql

__all__ = ["strong_overlap_sql"]


def strong_overlap_sql(
    db: Database, graph: GraphHandle, min_common: int = 2
) -> list[tuple[int, int, int]]:
    """Pairs ``(a, b, common)`` with at least ``min_common`` shared
    neighbors, ``a < b``, ordered by overlap (descending) then ids."""
    g = graph.name
    with scratch_tables(db, f"{g}_so_nbr") as (nbr,):
        db.execute(
            f"CREATE TABLE {nbr} AS {undirected_neighbors_sql(graph.edge_table)}"
        )
        rows = db.execute(
            f"SELECT n1.src AS a, n2.src AS b, COUNT(*) AS common "
            f"FROM {nbr} n1 JOIN {nbr} n2 "
            f"ON n1.dst = n2.dst AND n1.src < n2.src "
            f"GROUP BY n1.src, n2.src "
            f"HAVING COUNT(*) >= {int(min_common)} "
            f"ORDER BY common DESC, a, b"
        ).rows()
    return [(a, b, common) for a, b, common in rows]
