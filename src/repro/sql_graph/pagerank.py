"""PageRank in pure SQL ("hand-coded and meticulously optimized").

Each iteration is two set-oriented statements:

1. aggregate per-destination contributions with one join + GROUP BY;
2. rebuild the rank table with a LEFT JOIN (vertices with no in-edges get
   only the teleport term).

Semantics are identical to the vertex-centric
:class:`repro.programs.pagerank.PageRank` (fixed iterations, dangling
vertices distribute nothing), so all engines agree to float precision.
"""

from __future__ import annotations

from repro.core.storage import GraphHandle
from repro.engine.database import Database
from repro.sql_graph._util import scratch_tables

__all__ = ["pagerank_sql"]


def pagerank_sql(
    db: Database,
    graph: GraphHandle,
    iterations: int = 10,
    damping: float = 0.85,
) -> dict[int, float]:
    """Run PageRank; returns ``{vertex_id: rank}``.

    Args:
        db: the database holding the graph tables.
        graph: handle of a loaded graph.
        iterations: number of rank updates.
        damping: damping factor.
    """
    n = max(graph.num_vertices, 1)
    g = graph.name
    teleport = (1.0 - damping) / n
    with scratch_tables(
        db, f"{g}_pr_rank", f"{g}_pr_contrib", f"{g}_pr_outdeg", f"{g}_pr_next"
    ) as (rank, contrib, outdeg, next_rank):
        db.execute(
            f"CREATE TABLE {outdeg} AS "
            f"SELECT src, COUNT(*) AS deg FROM {graph.edge_table} GROUP BY src"
        )
        db.execute(
            f"CREATE TABLE {rank} AS "
            f"SELECT id, {1.0 / n} AS rank FROM {graph.node_table}"
        )
        for _ in range(iterations):
            db.execute(
                f"CREATE TABLE {contrib} AS "
                f"SELECT e.dst AS id, SUM(r.rank / d.deg) AS c "
                f"FROM {graph.edge_table} e "
                f"JOIN {rank} r ON e.src = r.id "
                f"JOIN {outdeg} d ON e.src = d.src "
                f"GROUP BY e.dst"
            )
            db.execute(
                f"CREATE TABLE {next_rank} AS "
                f"SELECT v.id AS id, {teleport} + {damping} * COALESCE(c.c, 0.0) AS rank "
                f"FROM {graph.node_table} v LEFT JOIN {contrib} c ON v.id = c.id"
            )
            db.execute(f"DROP TABLE {rank}")
            db.execute(f"CREATE TABLE {rank} AS SELECT id, rank FROM {next_rank}")
            db.execute(f"DROP TABLE {next_rank}")
            db.execute(f"DROP TABLE {contrib}")
        rows = db.execute(f"SELECT id, rank FROM {rank} ORDER BY id").rows()
    return {vertex_id: value for vertex_id, value in rows}
