"""Single-source shortest paths in pure SQL (iterated Bellman-Ford).

Each round relaxes every edge with one join + GROUP BY and merges the
improvements back with a LEFT JOIN; the loop stops as soon as a round
improves nothing (at most ``|V| - 1`` rounds).  NULL distance = not yet
reached; the returned dict uses ``float('inf')`` for unreachable vertices
to match the vertex-centric program.
"""

from __future__ import annotations

from repro.core.storage import GraphHandle
from repro.engine.database import Database
from repro.sql_graph._util import scratch_tables

__all__ = ["shortest_paths_sql"]


def shortest_paths_sql(db: Database, graph: GraphHandle, source: int) -> dict[int, float]:
    """Shortest-path distances from ``source`` to every vertex."""
    g = graph.name
    with scratch_tables(
        db, f"{g}_sp_dist", f"{g}_sp_cand", f"{g}_sp_merged"
    ) as (dist, cand, merged):
        db.execute(
            f"CREATE TABLE {dist} AS "
            f"SELECT id, CASE WHEN id = {source} THEN 0.0 ELSE NULL END AS d "
            f"FROM {graph.node_table}"
        )
        max_rounds = max(graph.num_vertices - 1, 1)
        for _ in range(max_rounds):
            db.execute(
                f"CREATE TABLE {cand} AS "
                f"SELECT e.dst AS id, MIN(t.d + e.weight) AS nd "
                f"FROM {dist} t JOIN {graph.edge_table} e ON t.id = e.src "
                f"WHERE t.d IS NOT NULL "
                f"GROUP BY e.dst"
            )
            improved = db.execute(
                f"SELECT COUNT(*) FROM {cand} c JOIN {dist} t ON c.id = t.id "
                f"WHERE t.d IS NULL OR c.nd < t.d"
            ).scalar()
            if not improved:
                db.execute(f"DROP TABLE {cand}")
                break
            db.execute(
                f"CREATE TABLE {merged} AS "
                f"SELECT t.id AS id, "
                f"CASE WHEN c.nd IS NULL THEN t.d "
                f"     WHEN t.d IS NULL THEN c.nd "
                f"     WHEN c.nd < t.d THEN c.nd ELSE t.d END AS d "
                f"FROM {dist} t LEFT JOIN {cand} c ON t.id = c.id"
            )
            db.execute(f"DROP TABLE {dist}")
            db.execute(f"CREATE TABLE {dist} AS SELECT id, d FROM {merged}")
            db.execute(f"DROP TABLE {merged}")
            db.execute(f"DROP TABLE {cand}")
        rows = db.execute(f"SELECT id, d FROM {dist} ORDER BY id").rows()
    infinity = float("inf")
    return {vertex_id: (infinity if d is None else d) for vertex_id, d in rows}
