"""Scratch-table plumbing shared by the SQL graph algorithms."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.engine.database import Database

__all__ = ["scratch_tables", "undirected_neighbors_sql", "canonical_edges_sql"]


@contextmanager
def scratch_tables(db: Database, *names: str) -> Iterator[None]:
    """Drop the named tables on entry (fresh start) and again on exit
    (cleanup), even when the algorithm raises."""
    for name in names:
        db.execute(f"DROP TABLE IF EXISTS {name}")
    try:
        yield
    finally:
        for name in names:
            db.execute(f"DROP TABLE IF EXISTS {name}")


def undirected_neighbors_sql(edge_table: str) -> str:
    """SELECT producing the distinct undirected neighbor relation
    (both directions, self-loops removed)."""
    return (
        f"SELECT src, dst FROM {edge_table} WHERE src <> dst "
        f"UNION "
        f"SELECT dst, src FROM {edge_table} WHERE src <> dst"
    )


def canonical_edges_sql(edge_table: str) -> str:
    """SELECT producing each undirected edge once as (small, large)."""
    return (
        f"SELECT DISTINCT LEAST(src, dst) AS src, GREATEST(src, dst) AS dst "
        f"FROM {edge_table} WHERE src <> dst"
    )
