"""Scratch-table plumbing shared by the SQL graph algorithms."""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Iterator

from repro.engine.database import Database

__all__ = ["scratch_tables", "undirected_neighbors_sql", "canonical_edges_sql"]

#: Process-wide counter making scratch names unique per ``scratch_tables``
#: entry (``itertools.count`` increments atomically under the GIL).
_scratch_counter = itertools.count()


@contextmanager
def scratch_tables(db: Database, *bases: str) -> Iterator[tuple[str, ...]]:
    """Create unique scratch-table names and drop them again on exit.

    Yields one per-invocation unique name per requested base (base +
    a process-wide counter suffix), so two algorithms sharing one
    :class:`Database` — or the same algorithm running twice concurrently —
    can never drop each other's scratch tables.  The tables are dropped on
    entry (paranoia: a counter collision would need a restarted process
    reusing a database) and on exit, even when the algorithm raises.
    """
    suffix = next(_scratch_counter)
    names = tuple(f"{base}_s{suffix}" for base in bases)
    for name in names:
        db.execute(f"DROP TABLE IF EXISTS {name}")
    try:
        yield names
    finally:
        for name in names:
            db.execute(f"DROP TABLE IF EXISTS {name}")


def undirected_neighbors_sql(edge_table: str) -> str:
    """SELECT producing the distinct undirected neighbor relation
    (both directions, self-loops removed)."""
    return (
        f"SELECT src, dst FROM {edge_table} WHERE src <> dst "
        f"UNION "
        f"SELECT dst, src FROM {edge_table} WHERE src <> dst"
    )


def canonical_edges_sql(edge_table: str) -> str:
    """SELECT producing each undirected edge once as (small, large)."""
    return (
        f"SELECT DISTINCT LEAST(src, dst) AS src, GREATEST(src, dst) AS dst "
        f"FROM {edge_table} WHERE src <> dst"
    )
