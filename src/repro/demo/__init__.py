"""``repro.demo`` — the programmatic equivalent of the §4 demo GUI.

Figure 3's interface has a console (node/edge/triangle counts, top
shortest paths, top PageRanks, histograms), a scope-of-analysis selector
(click nodes, draw a bounding rectangle, filter on metadata), and a time
monitor.  This package exposes those as a library:

* :class:`~repro.demo.scope.ScopeSelector` — subgraph selection by id set,
  by layout bounding box, or by metadata predicate;
* :class:`~repro.demo.console.DemoConsole` — the console reports of
  Figure 3, rendered as text;
* :func:`~repro.demo.layout.assign_layout` — deterministic 2D coordinates
  so rectangle selection has something to select against.
"""

from repro.demo.console import DemoConsole
from repro.demo.layout import assign_layout
from repro.demo.scope import ScopeSelector

__all__ = ["DemoConsole", "ScopeSelector", "assign_layout"]
