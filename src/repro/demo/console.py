"""The Figure 3 console, as text reports.

The demo GUI's console shows, for the selected scope: node count, edge
count, triangle count, top shortest paths, top PageRanks, and a histogram.
:class:`DemoConsole` renders exactly those blocks (the figure's mocked
console lists ``node count``, ``edges count``, ``triangle count``,
``top shortest path``, ``top pageranks``, ``histogram``).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.metrics import RunStats
from repro.core.storage import GraphHandle
from repro.engine.database import Database
from repro.sql_graph.pagerank import pagerank_sql
from repro.sql_graph.shortest_paths import shortest_paths_sql
from repro.sql_graph.triangle_counting import triangle_count_sql

__all__ = ["DemoConsole"]


class DemoConsole:
    """Text reports over one graph scope, in Figure 3's console format."""

    def __init__(self, db: Database, graph: GraphHandle, label: str | None = None) -> None:
        self.db = db
        self.graph = graph
        self.label = label or graph.name

    # ------------------------------------------------------------------
    # Individual blocks
    # ------------------------------------------------------------------
    def node_count(self) -> str:
        """``<label> node count = N`` (from the node table, not the cache)."""
        count = self.db.execute(
            f"SELECT COUNT(*) FROM {self.graph.node_table}"
        ).scalar()
        return f"{self.label} node count = {count}"

    def edge_count(self) -> str:
        """``<label> edges count = M``."""
        count = self.db.execute(
            f"SELECT COUNT(*) FROM {self.graph.edge_table}"
        ).scalar()
        return f"{self.label} edges count = {count}"

    def triangle_count(self) -> str:
        """``<label> triangle count = T``."""
        return f"{self.label} triangle count = {triangle_count_sql(self.db, self.graph)}"

    def top_shortest_paths(self, source: int, k: int = 3) -> str:
        """The k nearest vertices to ``source`` with their distances."""
        distances = shortest_paths_sql(self.db, self.graph, source)
        reachable = sorted(
            (d, v) for v, d in distances.items()
            if v != source and math.isfinite(d)
        )
        lines = [f"{self.label} top shortest paths from {source}", "> vertex | distance"]
        for distance, vertex in reachable[:k]:
            lines.append(f"> {vertex} | {distance:g}")
        return "\n".join(lines)

    def top_pageranks(self, k: int = 3, iterations: int = 10) -> str:
        """The k highest-ranked vertices."""
        ranks = pagerank_sql(self.db, self.graph, iterations=iterations)
        ordered = sorted(ranks.items(), key=lambda kv: (-kv[1], kv[0]))
        lines = [f"{self.label} top pageranks", "> vertex | rank"]
        for vertex, rank in ordered[:k]:
            lines.append(f"> {vertex} | {rank:.6f}")
        return "\n".join(lines)

    def histogram(
        self,
        values: dict[int, float] | None = None,
        buckets: int = 5,
        iterations: int = 10,
    ) -> str:
        """An equi-width histogram over per-vertex values (PageRank by
        default) — §4.2.2's "distribution of PageRank values"."""
        if values is None:
            values = pagerank_sql(self.db, self.graph, iterations=iterations)
        finite = [v for v in values.values() if math.isfinite(v)]
        lines = [f"{self.label} histogram", "> bucket | count"]
        if not finite:
            return "\n".join(lines)
        low, high = min(finite), max(finite)
        width = (high - low) / buckets if high > low else 1.0
        counts = [0] * buckets
        for value in finite:
            index = min(int((value - low) / width), buckets - 1)
            counts[index] += 1
        for i, count in enumerate(counts):
            left = low + i * width
            right = left + width
            lines.append(f"> [{left:.5f}, {right:.5f}) | {count}")
        return "\n".join(lines)

    def time_monitor(self, stats: RunStats) -> str:
        """The demo's runtime monitor: one vertex-program run's summary
        plus its per-superstep throughput breakdown (where time goes)."""
        return "\n".join(
            [f"{self.label} time monitor", f"> {stats.summary()}", stats.breakdown()]
        )

    # ------------------------------------------------------------------
    def report(self, source: int | None = None, k: int = 3) -> str:
        """The full Figure 3 console block."""
        blocks = [self.node_count(), self.edge_count(), self.triangle_count()]
        if source is not None:
            blocks.append(self.top_shortest_paths(source, k=k))
        blocks.append(self.top_pageranks(k=k))
        blocks.append(self.histogram())
        return "\n\n".join(blocks)
