"""Scope of analysis (§4.1): interactive subgraph selection, as a library.

"Users can also select portions of the graph for analysis ... visual
selection by clicking on one or more nodes or by drawing a minimum
bounding rectangle.  Alternatively, users can also apply filters based on
node/edge metadata, e.g. select all edges of type 'Family'."

Each selector materializes the chosen subgraph as ordinary edge/node
tables and returns a :class:`~repro.core.storage.GraphHandle`, so every
algorithm in the repository runs on the selection unchanged.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.storage import GraphHandle, GraphStorage
from repro.demo.layout import layout_table_name
from repro.engine.database import Database
from repro.errors import VertexicaError

__all__ = ["ScopeSelector"]


class ScopeSelector:
    """Builds analysis scopes (subgraphs) over one loaded graph."""

    def __init__(self, db: Database, graph: GraphHandle) -> None:
        self.db = db
        self.graph = graph
        self.storage = GraphStorage(db)
        self._counter = 0

    def _fresh_name(self, kind: str) -> str:
        self._counter += 1
        return f"{self.graph.name}_scope_{kind}{self._counter}"

    def _load_edges(self, name: str, rows: list[tuple]) -> GraphHandle:
        return self.storage.load_graph(
            name,
            [r[0] for r in rows],
            [r[1] for r in rows],
            [r[2] for r in rows],
        )

    # ------------------------------------------------------------------
    # Selection modes
    # ------------------------------------------------------------------
    def by_vertices(self, vertex_ids: Iterable[int], name: str | None = None) -> GraphHandle:
        """The induced subgraph over clicked vertex ids (both endpoints
        must be selected for an edge to survive)."""
        ids = sorted(set(int(v) for v in vertex_ids))
        if not ids:
            raise VertexicaError("by_vertices needs at least one vertex id")
        scope = name or self._fresh_name("ids")
        id_table = f"{scope}_pick"
        self.db.execute(f"DROP TABLE IF EXISTS {id_table}")
        self.db.execute(f"CREATE TABLE {id_table} (id INTEGER NOT NULL)")
        for vertex_id in ids:
            self.db.execute(f"INSERT INTO {id_table} VALUES (?)", params=(vertex_id,))
        rows = self.db.execute(
            f"SELECT e.src, e.dst, e.weight FROM {self.graph.edge_table} e "
            f"JOIN {id_table} a ON e.src = a.id "
            f"JOIN {id_table} b ON e.dst = b.id"
        ).rows()
        self.db.execute(f"DROP TABLE {id_table}")
        handle = self._load_edges(scope, rows)
        # Clicked-but-isolated vertices stay in scope.
        known = {
            r[0] for r in self.db.execute(f"SELECT id FROM {handle.node_table}").rows()
        }
        for vertex_id in ids:
            if vertex_id not in known:
                self.db.execute(
                    f"INSERT INTO {handle.node_table} VALUES (?)", params=(vertex_id,)
                )
        handle.num_vertices = len(known | set(ids))
        return handle

    def by_rectangle(
        self,
        x_min: float,
        y_min: float,
        x_max: float,
        y_max: float,
        name: str | None = None,
    ) -> GraphHandle:
        """The induced subgraph of vertices whose layout coordinates fall
        inside the rectangle (requires :func:`repro.demo.assign_layout`).

        Raises:
            VertexicaError: when no layout table exists for the graph.
        """
        layout = layout_table_name(self.graph)
        if not self.db.has_table(layout):
            raise VertexicaError(
                f"graph {self.graph.name!r} has no layout; call assign_layout first"
            )
        picked = self.db.execute(
            f"SELECT id FROM {layout} "
            f"WHERE x BETWEEN ? AND ? AND y BETWEEN ? AND ?",
            params=(float(x_min), float(x_max), float(y_min), float(y_max)),
        ).rows()
        if not picked:
            raise VertexicaError("rectangle selects no vertices")
        return self.by_vertices([r[0] for r in picked], name=name or self._fresh_name("rect"))

    def by_edge_predicate(self, predicate: str, name: str | None = None) -> GraphHandle:
        """Edges satisfying a SQL predicate over (src, dst, weight) — or,
        when an edge-attributes table exists, over its metadata columns.

        The predicate is applied against ``{graph}_edge_attrs`` when that
        table exists (so ``"etype = 'family'"`` works out of the box),
        falling back to the plain edge table otherwise.
        """
        attrs = f"{self.graph.name}_edge_attrs"
        source = attrs if self.db.has_table(attrs) else self.graph.edge_table
        weight = "weight" if self.db.table(source).schema.has_column("weight") else "1.0"
        rows = self.db.execute(
            f"SELECT src, dst, {weight} FROM {source} WHERE {predicate}"
        ).rows()
        return self._load_edges(name or self._fresh_name("meta"), rows)

    def by_node_predicate(self, predicate: str, name: str | None = None) -> GraphHandle:
        """The induced subgraph of vertices whose ``{graph}_node_attrs``
        row satisfies a SQL predicate (both endpoints must qualify).

        Raises:
            VertexicaError: when the graph has no node-attributes table.
        """
        attrs = f"{self.graph.name}_node_attrs"
        if not self.db.has_table(attrs):
            raise VertexicaError(
                f"graph {self.graph.name!r} has no node attributes; "
                "call attach_metadata first"
            )
        picked = self.db.execute(
            f"SELECT id FROM {attrs} WHERE {predicate}"
        ).rows()
        if not picked:
            raise VertexicaError("node predicate selects no vertices")
        return self.by_vertices(
            [r[0] for r in picked], name=name or self._fresh_name("node")
        )
