"""Deterministic 2D layout for graph visualization / rectangle selection.

The demo GUI lets users "draw a minimum bounding rectangle" over the graph
visualization.  To make that selectable programmatically, every vertex
gets (x, y) coordinates in a ``{graph}_layout`` table.  The layout is a
cheap deterministic force-free embedding: vertices are placed on a golden-
angle spiral ordered by degree (hubs central, periphery sparse), which
looks social-network-ish and — more importantly — is stable under a seed
so tests can assert selections exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.storage import GraphHandle
from repro.engine.batch import RecordBatch
from repro.engine.column import Column
from repro.engine.database import Database
from repro.engine.types import FLOAT, INTEGER

__all__ = ["assign_layout", "layout_table_name"]

_GOLDEN_ANGLE = np.pi * (3.0 - np.sqrt(5.0))


def layout_table_name(graph: GraphHandle) -> str:
    """Name of a graph's layout table."""
    return f"{graph.name}_layout"


def assign_layout(db: Database, graph: GraphHandle, seed: int = 0) -> str:
    """Create (or replace) ``{graph}_layout`` with one (id, x, y) row per
    vertex; coordinates fall in [-1, 1] x [-1, 1].

    Returns the layout table name.
    """
    table = layout_table_name(graph)
    db.execute(f"DROP TABLE IF EXISTS {table}")
    db.execute(
        f"CREATE TABLE {table} "
        "(id INTEGER NOT NULL, x FLOAT NOT NULL, y FLOAT NOT NULL)"
    )
    ids = np.array(
        [row[0] for row in db.execute(
            f"SELECT id FROM {graph.node_table} ORDER BY id"
        ).rows()],
        dtype=np.int64,
    )
    n = len(ids)
    if n == 0:
        return table
    degrees = np.zeros(n, dtype=np.int64)
    degree_rows = db.execute(
        f"SELECT src, COUNT(*) FROM {graph.edge_table} GROUP BY src"
    ).rows()
    position_of = {vertex_id: i for i, vertex_id in enumerate(ids)}
    for vertex_id, degree in degree_rows:
        if vertex_id in position_of:
            degrees[position_of[vertex_id]] = degree
    # Hubs first -> spiral center; jitter breaks ties deterministically.
    rng = np.random.default_rng(seed)
    jitter = rng.random(n) * 0.01
    order = np.lexsort((ids, -degrees))
    radius = np.sqrt((np.arange(n) + 0.5) / n)
    theta = np.arange(n) * _GOLDEN_ANGLE + jitter[order]
    x = np.zeros(n)
    y = np.zeros(n)
    x[order] = radius * np.cos(theta)
    y[order] = radius * np.sin(theta)
    batch = RecordBatch(
        db.table(table).schema,
        [
            Column.from_numpy(INTEGER, ids),
            Column.from_numpy(FLOAT, x),
            Column.from_numpy(FLOAT, y),
        ],
    )
    db.insert_batch(table, batch)
    return table
