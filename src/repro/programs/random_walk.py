"""Random walk with restart (personalized PageRank).

Listed in the paper's §1 as one of the message-passing algorithms
Vertexica expresses easily.  Identical iteration shape to PageRank, but
the teleport mass flows back to the single source vertex instead of being
spread uniformly — the stationary values rank vertices by proximity to
the source.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import Vertex
from repro.core.program import VertexProgram

__all__ = ["RandomWalkWithRestart", "reference_rwr"]


class RandomWalkWithRestart(VertexProgram):
    """Personalized PageRank from ``source``.

    Args:
        source: the restart vertex.
        iterations: number of probability updates.
        restart: restart probability (teleport mass), default 0.15.
    """

    combiner = "SUM"

    def __init__(self, source: int, iterations: int = 10, restart: float = 0.15) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not 0.0 < restart < 1.0:
            raise ValueError("restart must be in (0, 1)")
        self.source = source
        self.iterations = iterations
        self.restart = restart
        self.max_supersteps = iterations + 1

    def initial_value(self, vertex_id: int, out_degree: int, num_vertices: int) -> float:
        return 1.0 if vertex_id == self.source else 0.0

    def compute(self, vertex: Vertex) -> None:
        if vertex.superstep > 0:
            incoming = sum(vertex.messages)
            teleport = self.restart if vertex.id == self.source else 0.0
            vertex.modify_vertex_value(teleport + (1.0 - self.restart) * incoming)
        if vertex.superstep < self.iterations:
            if vertex.out_degree and vertex.value:
                vertex.send_message_to_all_neighbors(vertex.value / vertex.out_degree)
        else:
            vertex.vote_to_halt()


def reference_rwr(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    source: int,
    iterations: int = 10,
    restart: float = 0.15,
) -> np.ndarray:
    """Dense oracle with identical semantics to
    :class:`RandomWalkWithRestart`."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    out_degree = np.bincount(src, minlength=num_vertices).astype(np.float64)
    safe_degree = np.where(out_degree > 0, out_degree, 1.0)
    prob = np.zeros(num_vertices)
    prob[source] = 1.0
    for _ in range(iterations):
        spread = np.zeros(num_vertices)
        np.add.at(spread, dst, prob[src] / safe_degree[src])
        prob = (1.0 - restart) * spread
        prob[source] += restart
    return prob
