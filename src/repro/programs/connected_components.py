"""Vertex-centric connected components via minimum-label propagation.

Every vertex starts labeled with its own id and repeatedly adopts the
minimum label among its neighbors' messages; at fixpoint each component is
labeled by its smallest member id.  The graph must be loaded with
``symmetrize=True`` (or already contain both edge directions) — components
are defined on the *undirected* structure, as in the paper's reachability
use case.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import Vertex
from repro.core.codecs import INTEGER_CODEC
from repro.core.program import BatchVertexProgram, VertexBatch

__all__ = ["ConnectedComponents", "reference_components"]


class ConnectedComponents(BatchVertexProgram):
    """Minimum-label propagation; final value = component label."""

    vertex_codec = INTEGER_CODEC
    message_codec = INTEGER_CODEC
    combiner = "MIN"

    def initial_value(self, vertex_id: int, out_degree: int, num_vertices: int) -> int:
        return vertex_id

    def compute(self, vertex: Vertex) -> None:
        if vertex.superstep == 0:
            vertex.send_message_to_all_neighbors(vertex.value)
        else:
            best = min(vertex.messages)
            if best < vertex.value:
                vertex.modify_vertex_value(best)
                vertex.send_message_to_all_neighbors(best)
        vertex.vote_to_halt()

    def compute_batch(self, batch: VertexBatch) -> None:
        if batch.superstep == 0:
            batch.send_to_all_neighbors(batch.values)
        else:
            best = batch.min_messages()
            improved = (batch.message_counts > 0) & (best < batch.values)
            labels = np.where(improved, best, batch.values)
            batch.set_values(labels)
            batch.send_to_all_neighbors(labels, mask=improved)
        batch.vote_to_halt()


def reference_components(num_vertices: int, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Union-find oracle: label = smallest vertex id in the (undirected)
    component."""
    parent = np.arange(num_vertices, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for s, d in zip(np.asarray(src), np.asarray(dst)):
        rs, rd = find(int(s)), find(int(d))
        if rs != rd:
            parent[max(rs, rd)] = min(rs, rd)
    return np.array([find(i) for i in range(num_vertices)], dtype=np.int64)
