"""Vertex-centric PageRank (the paper's headline algorithm).

Standard Pregel formulation: every vertex starts at ``1/N``; each
superstep it sets ``rank = (1-d)/N + d * sum(incoming)`` and sends
``rank / out_degree`` along every out-edge.  After ``iterations`` rank
updates, every vertex votes to halt.

Dangling vertices (no out-edges) retain their rank but distribute nothing,
the common Pregel simplification; the reference implementation used by the
tests (:func:`reference_pagerank`) matches this exactly so results can be
asserted to numerical precision.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import Vertex
from repro.core.program import BatchVertexProgram, VertexBatch

__all__ = ["PageRank", "reference_pagerank"]


class PageRank(BatchVertexProgram):
    """PageRank with a fixed number of iterations.

    Implements both data planes: :meth:`compute` is the per-vertex
    reference, :meth:`compute_batch` the vectorized kernel the worker
    prefers; the parity suite asserts they are bit-identical.

    Args:
        iterations: number of rank updates (paper-style fixed horizon).
        damping: damping factor ``d`` (default 0.85).
    """

    combiner = "SUM"

    def __init__(self, iterations: int = 10, damping: float = 0.85) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.iterations = iterations
        self.damping = damping
        self.max_supersteps = iterations + 1

    def initial_value(self, vertex_id: int, out_degree: int, num_vertices: int) -> float:
        return 1.0 / num_vertices

    def compute(self, vertex: Vertex) -> None:
        if vertex.superstep > 0:
            incoming = sum(vertex.messages)
            vertex.modify_vertex_value(
                (1.0 - self.damping) / vertex.num_vertices + self.damping * incoming
            )
        if vertex.superstep < self.iterations:
            if vertex.out_degree:
                vertex.send_message_to_all_neighbors(vertex.value / vertex.out_degree)
        else:
            vertex.vote_to_halt()

    def compute_batch(self, batch: VertexBatch) -> None:
        if batch.superstep > 0:
            incoming = batch.sum_messages()
            batch.set_values(
                (1.0 - self.damping) / batch.num_vertices + self.damping * incoming
            )
        if batch.superstep < self.iterations:
            degrees = batch.out_degrees
            share = np.divide(
                batch.values,
                degrees,
                out=np.zeros(batch.size, dtype=np.float64),
                where=degrees > 0,
            )
            batch.send_to_all_neighbors(share)
        else:
            batch.vote_to_halt()


def reference_pagerank(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    iterations: int = 10,
    damping: float = 0.85,
) -> np.ndarray:
    """Dense-array PageRank with identical semantics to :class:`PageRank`.

    Used by tests and the benchmark harness to validate every execution
    engine (Vertexica, Giraph baseline, SQL) against one oracle.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    out_degree = np.bincount(src, minlength=num_vertices).astype(np.float64)
    rank = np.full(num_vertices, 1.0 / num_vertices)
    for _ in range(iterations):
        contribution = np.zeros(num_vertices)
        safe_degree = np.where(out_degree > 0, out_degree, 1.0)
        per_edge = rank[src] / safe_degree[src]
        np.add.at(contribution, dst, per_edge)
        rank = (1.0 - damping) / num_vertices + damping * contribution
    return rank
