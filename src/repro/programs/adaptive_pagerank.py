"""PageRank with aggregator-driven convergence (extension).

The paper's PageRank runs a fixed iteration count.  This variant uses a
Pregel-style global SUM aggregator to track the total rank change per
superstep and halts every vertex once the graph has converged below
``epsilon`` — demonstrating global coordination *through the relational
engine* (the aggregator partials live in the worker-output table and are
reduced by a SQL GROUP BY between supersteps).
"""

from __future__ import annotations

from repro.core.api import Vertex
from repro.core.program import VertexProgram

__all__ = ["AdaptivePageRank"]


class AdaptivePageRank(VertexProgram):
    """PageRank that stops when the summed |rank change| drops below
    ``epsilon``.

    Args:
        epsilon: convergence threshold on the global L1 rank delta.
        damping: damping factor.
        superstep_cap: safety bound (converged graphs stop much earlier).
    """

    combiner = "SUM"
    aggregators = {"delta": "SUM"}

    def __init__(
        self,
        epsilon: float = 1e-9,
        damping: float = 0.85,
        superstep_cap: int = 200,
    ) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.epsilon = epsilon
        self.damping = damping
        self.max_supersteps = superstep_cap

    def initial_value(self, vertex_id: int, out_degree: int, num_vertices: int) -> float:
        return 1.0 / num_vertices

    def compute(self, vertex: Vertex) -> None:
        if vertex.superstep > 0:
            fresh = (
                (1.0 - self.damping) / vertex.num_vertices
                + self.damping * sum(vertex.messages)
            )
            vertex.aggregate("delta", abs(fresh - vertex.value))
            vertex.modify_vertex_value(fresh)
        # The previous superstep's global delta is visible to every vertex;
        # when it is below epsilon the whole graph halts simultaneously.
        total_delta = vertex.aggregated("delta")
        if vertex.superstep > 1 and total_delta is not None and total_delta < self.epsilon:
            vertex.vote_to_halt()
            return
        if vertex.out_degree:
            vertex.send_message_to_all_neighbors(vertex.value / vertex.out_degree)
