"""``repro.programs`` — vertex-centric graph programs (§3.1 of the paper).

Every class here is a :class:`~repro.core.program.VertexProgram` and runs
unchanged on both Vertexica and the Giraph-like baseline:

* :class:`PageRank` — relative vertex importance;
* :class:`ShortestPaths` — single-source shortest paths;
* :class:`ConnectedComponents` — minimum-label propagation (undirected);
* :class:`CollaborativeFiltering` — latent-factor SGD on a bipartite graph;
* :class:`RandomWalkWithRestart` — personalized PageRank;
* :class:`InDegree` / :class:`OutDegree` — degree counting warm-ups;
* :class:`LabelPropagation` — majority-label communities.

The embedding workload family exercises the vector message plane with
element-wise combiners:

* :class:`MultiSourceSSSP` — width-k distance vectors, element-wise MIN;
* :class:`FeaturePropagation` — GNN-style feature smoothing, element-wise
  SUM;
* :class:`RandomWalkEmbeddings` — DeepWalk-style positional embeddings
  (width-2k vertex state, width-k walk messages), element-wise SUM.
"""

from repro.programs.adaptive_pagerank import AdaptivePageRank
from repro.programs.collaborative_filtering import CollaborativeFiltering
from repro.programs.connected_components import ConnectedComponents
from repro.programs.degree import InDegree, OutDegree
from repro.programs.feature_propagation import FeaturePropagation
from repro.programs.label_propagation import LabelPropagation
from repro.programs.multi_source_sssp import MultiSourceSSSP
from repro.programs.pagerank import PageRank
from repro.programs.random_walk import RandomWalkWithRestart
from repro.programs.random_walk_embeddings import RandomWalkEmbeddings
from repro.programs.shortest_paths import ShortestPaths

__all__ = [
    "PageRank",
    "AdaptivePageRank",
    "ShortestPaths",
    "MultiSourceSSSP",
    "ConnectedComponents",
    "CollaborativeFiltering",
    "FeaturePropagation",
    "RandomWalkEmbeddings",
    "RandomWalkWithRestart",
    "InDegree",
    "OutDegree",
    "LabelPropagation",
]
