"""``repro.programs`` — vertex-centric graph programs (§3.1 of the paper).

Every class here is a :class:`~repro.core.program.VertexProgram` and runs
unchanged on both Vertexica and the Giraph-like baseline:

* :class:`PageRank` — relative vertex importance;
* :class:`ShortestPaths` — single-source shortest paths;
* :class:`ConnectedComponents` — minimum-label propagation (undirected);
* :class:`CollaborativeFiltering` — latent-factor SGD on a bipartite graph;
* :class:`RandomWalkWithRestart` — personalized PageRank;
* :class:`InDegree` / :class:`OutDegree` — degree counting warm-ups;
* :class:`LabelPropagation` — majority-label communities.
"""

from repro.programs.adaptive_pagerank import AdaptivePageRank
from repro.programs.collaborative_filtering import CollaborativeFiltering
from repro.programs.connected_components import ConnectedComponents
from repro.programs.degree import InDegree, OutDegree
from repro.programs.label_propagation import LabelPropagation
from repro.programs.pagerank import PageRank
from repro.programs.random_walk import RandomWalkWithRestart
from repro.programs.shortest_paths import ShortestPaths

__all__ = [
    "PageRank",
    "AdaptivePageRank",
    "ShortestPaths",
    "ConnectedComponents",
    "CollaborativeFiltering",
    "RandomWalkWithRestart",
    "InDegree",
    "OutDegree",
    "LabelPropagation",
]
