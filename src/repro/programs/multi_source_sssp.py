"""Multi-source shortest paths over width-k distance vectors.

One run computes shortest-path distances from ``k`` source vertices at
once: every vertex holds a width-``k`` distance vector (lane ``j`` =
distance from ``sources[j]``) stored through
:func:`~repro.core.codecs.vector_codec`, and relaxation messages carry
whole candidate vectors.  The element-wise ``MIN`` combiner collapses
all candidates for a destination into one message inside the data plane
— on a high-fan-in graph this is the landmark-distance workload where
vector combining pays the most (``k`` lanes share one routed row).

Element-wise MIN is exact under any grouping, so combined runs are
bit-identical to uncombined runs on both data planes, every executor,
and the Giraph baseline at any worker count.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.api import Vertex
from repro.core.codecs import vector_codec
from repro.core.program import BatchVertexProgram, VertexBatch
from repro.programs.shortest_paths import reference_sssp

__all__ = ["MultiSourceSSSP", "reference_multi_source_sssp"]

INFINITY = float("inf")


class MultiSourceSSSP(BatchVertexProgram):
    """Shortest paths from ``sources[j]`` in distance-vector lane ``j``.

    Final vertex values are width-``k`` distance vectors; a vertex
    unreachable from ``sources[j]`` keeps ``inf`` in lane ``j``.
    """

    combiner = "MIN"

    def __init__(self, sources: Sequence[int]) -> None:
        self.sources = tuple(int(s) for s in sources)
        if not self.sources:
            raise ValueError("sources must name at least one vertex")
        if any(s < 0 for s in self.sources):
            raise ValueError("source vertex ids must be non-negative")
        self.width = len(self.sources)
        self.vertex_codec = vector_codec(self.width)
        self.message_codec = vector_codec(self.width)

    def initial_value(
        self, vertex_id: int, out_degree: int, num_vertices: int
    ) -> list[float]:
        return [0.0 if vertex_id == s else INFINITY for s in self.sources]

    def compute(self, vertex: Vertex) -> None:
        dist = np.asarray(vertex.value, dtype=np.float64)
        if vertex.superstep == 0:
            if np.isfinite(dist).any():
                for edge in vertex.out_edges:
                    vertex.send_message(edge.target, (dist + edge.weight).tolist())
        elif vertex.messages:
            # The same reduceat call the combiner and the batch kernels
            # run — combined and uncombined inboxes reduce identically.
            block = np.asarray(vertex.messages, dtype=np.float64)
            best = np.minimum.reduceat(block, [0], axis=0)[0]
            if bool((best < dist).any()):
                dist = np.minimum(dist, best)
                vertex.modify_vertex_value(dist.tolist())
                for edge in vertex.out_edges:
                    vertex.send_message(edge.target, (dist + edge.weight).tolist())
        vertex.vote_to_halt()

    def compute_batch(self, batch: VertexBatch) -> None:
        values = batch.values
        if batch.superstep == 0:
            seeded = np.isfinite(values).any(axis=1)
            if bool(seeded.any()):
                per_edge = (
                    np.repeat(values, batch.out_degrees, axis=0)
                    + batch.edge_weights[:, None]
                )
                batch.send_along_edges(per_edge, mask=seeded)
        else:
            best = batch.min_messages()
            improved = (batch.message_counts > 0) & (best < values).any(axis=1)
            if bool(improved.any()):
                new_values = np.where(improved[:, None], np.minimum(values, best), values)
                batch.set_values(new_values, mask=improved)
                per_edge = (
                    np.repeat(new_values, batch.out_degrees, axis=0)
                    + batch.edge_weights[:, None]
                )
                batch.send_along_edges(per_edge, mask=improved)
        batch.vote_to_halt()


def reference_multi_source_sssp(
    num_vertices: int,
    src: Iterable[int],
    dst: Iterable[int],
    weights: Iterable[float],
    sources: Sequence[int],
) -> np.ndarray:
    """Dijkstra oracle per lane: column ``j`` is
    :func:`~repro.programs.shortest_paths.reference_sssp` from
    ``sources[j]``.  Returns an ``(num_vertices, len(sources))`` array."""
    src = list(src)
    dst = list(dst)
    weights = list(weights)
    return np.column_stack(
        [reference_sssp(num_vertices, src, dst, weights, s) for s in sources]
    )
