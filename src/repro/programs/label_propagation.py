"""Label propagation — majority-vote community detection.

Each vertex starts labeled with its own id (or a seed label) and each
superstep adopts the most frequent label among its neighbors' messages,
breaking ties toward the smallest label for determinism.  Runs a fixed
number of rounds; communities are the final label groups.

Unlike PageRank/SSSP this program has no SQL-pushable combiner — the
update needs the full label multiset — so it also exercises Vertexica's
uncombined message path.  The batch kernel computes the per-vertex mode
with one ``(segment, label)`` sort: runs of equal pairs are counted by
run-length, and the winning run per segment is the first one reaching
the segment's maximum count (runs are label-ascending within a segment,
so "first" is exactly the smallest-label tie-break).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.api import Vertex
from repro.core.codecs import INTEGER_CODEC
from repro.core.program import BatchVertexProgram, VertexBatch

__all__ = ["LabelPropagation"]


class LabelPropagation(BatchVertexProgram):
    """Synchronous label propagation over an undirected (symmetrized) graph.

    Args:
        iterations: label-update rounds.
        seeds: optional ``{vertex_id: label}`` fixing initial labels
            (e.g. known communities); unlisted vertices start as their id.
    """

    vertex_codec = INTEGER_CODEC
    message_codec = INTEGER_CODEC
    combiner = None

    def __init__(self, iterations: int = 5, seeds: dict[int, int] | None = None) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations
        self.seeds = dict(seeds) if seeds else {}
        self.max_supersteps = iterations + 1

    def initial_value(self, vertex_id: int, out_degree: int, num_vertices: int) -> int:
        return self.seeds.get(vertex_id, vertex_id)

    def compute(self, vertex: Vertex) -> None:
        if vertex.superstep > 0 and vertex.messages:
            counts = Counter(vertex.messages)
            best_count = max(counts.values())
            winner = min(label for label, count in counts.items() if count == best_count)
            if winner != vertex.value:
                vertex.modify_vertex_value(winner)
        if vertex.superstep < self.iterations:
            vertex.send_message_to_all_neighbors(vertex.value)
        else:
            vertex.vote_to_halt()

    def compute_batch(self, batch: VertexBatch) -> None:
        if batch.superstep > 0 and len(batch.message_values):
            counts = batch.message_counts
            segments = np.repeat(np.arange(batch.size), counts)
            labels = batch.message_values.astype(np.int64, copy=False)
            order = np.lexsort((labels, segments))
            seg = segments[order]
            lab = labels[order]
            # Run-length encode the sorted (segment, label) pairs.
            run_start = np.flatnonzero(
                np.r_[True, (seg[1:] != seg[:-1]) | (lab[1:] != lab[:-1])]
            )
            run_seg = seg[run_start]
            run_label = lab[run_start]
            run_count = np.diff(np.append(run_start, len(seg)))
            # Per segment: the first run reaching the max count wins —
            # runs are label-ascending, so ties break to the smallest.
            seg_start = np.flatnonzero(np.r_[True, run_seg[1:] != run_seg[:-1]])
            runs_per_seg = np.diff(np.append(seg_start, len(run_seg)))
            best_count = np.maximum.reduceat(run_count, seg_start)
            is_best = run_count == np.repeat(best_count, runs_per_seg)
            positions = np.where(is_best, np.arange(len(run_seg)), len(run_seg))
            winner_run = np.minimum.reduceat(positions, seg_start)
            new_values = batch.values.copy()
            new_values[run_seg[seg_start]] = run_label[winner_run]
            batch.set_values(new_values)
        if batch.superstep < self.iterations:
            batch.send_to_all_neighbors(batch.values)
        else:
            batch.vote_to_halt()
