"""Label propagation — majority-vote community detection.

Each vertex starts labeled with its own id (or a seed label) and each
superstep adopts the most frequent label among its neighbors' messages,
breaking ties toward the smallest label for determinism.  Runs a fixed
number of rounds; communities are the final label groups.

Unlike PageRank/SSSP this program has no SQL-pushable combiner — the
update needs the full label multiset — so it also exercises Vertexica's
uncombined message path.
"""

from __future__ import annotations

from collections import Counter

from repro.core.api import Vertex
from repro.core.codecs import INTEGER_CODEC
from repro.core.program import VertexProgram

__all__ = ["LabelPropagation"]


class LabelPropagation(VertexProgram):
    """Synchronous label propagation over an undirected (symmetrized) graph.

    Args:
        iterations: label-update rounds.
        seeds: optional ``{vertex_id: label}`` fixing initial labels
            (e.g. known communities); unlisted vertices start as their id.
    """

    vertex_codec = INTEGER_CODEC
    message_codec = INTEGER_CODEC
    combiner = None

    def __init__(self, iterations: int = 5, seeds: dict[int, int] | None = None) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations
        self.seeds = dict(seeds) if seeds else {}
        self.max_supersteps = iterations + 1

    def initial_value(self, vertex_id: int, out_degree: int, num_vertices: int) -> int:
        return self.seeds.get(vertex_id, vertex_id)

    def compute(self, vertex: Vertex) -> None:
        if vertex.superstep > 0 and vertex.messages:
            counts = Counter(vertex.messages)
            best_count = max(counts.values())
            winner = min(label for label, count in counts.items() if count == best_count)
            if winner != vertex.value:
                vertex.modify_vertex_value(winner)
        if vertex.superstep < self.iterations:
            vertex.send_message_to_all_neighbors(vertex.value)
        else:
            vertex.vote_to_halt()
