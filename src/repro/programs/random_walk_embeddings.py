"""DeepWalk-style random-walk positional embeddings.

Every vertex starts from a seeded random projection and diffuses it
along the graph's uniform random-walk transition: each round, the walk
vector splits evenly over the out-edges and receivers sum what arrives
— after ``t`` rounds a vertex's walk vector is its expected ``t``-step
random-walk visit mass over the projected starting points (the very
quantity DeepWalk samples; this is the deterministic FastRP-flavored
formulation).  The embedding accumulates the walk vectors with a
per-hop decay, so near co-visited vertices end up with similar
embeddings::

    walk'_v      = sum_{u -> v} walk_u / out_degree(u)
    embedding'_v = embedding_v + decay^t * walk'_v

The vertex value is the width-``2k`` concatenation ``[embedding, walk]``
while messages carry only the width-``k`` walk vector — exercising the
planes' support for different vertex and message codec widths.  The
neighbor sum is an element-wise ``SUM`` combiner, reduced with the same
float64 ``reduceat`` arithmetic at every site, keeping combined runs
bit-identical to uncombined runs on both planes and all executors.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import Vertex
from repro.core.codecs import vector_codec
from repro.core.program import BatchVertexProgram, VertexBatch

__all__ = ["RandomWalkEmbeddings", "reference_random_walk_embeddings"]


class RandomWalkEmbeddings(BatchVertexProgram):
    """Decayed accumulation of diffused random-walk mass.

    Args:
        iterations: diffusion rounds (walk length).
        dim: embedding dimensionality (messages are width ``dim``; the
            vertex value is width ``2 * dim``).
        decay: per-hop weight of the accumulated walk vectors.
        seed: seeds the deterministic per-vertex starting projections.
    """

    combiner = "SUM"

    def __init__(
        self,
        iterations: int = 4,
        dim: int = 8,
        decay: float = 0.5,
        seed: int = 19,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.iterations = iterations
        self.dim = dim
        self.decay = decay
        self.seed = seed
        self.vertex_codec = vector_codec(2 * dim)
        self.message_codec = vector_codec(dim)
        self.max_supersteps = iterations + 1

    def initial_value(
        self, vertex_id: int, out_degree: int, num_vertices: int
    ) -> list[float]:
        rng = np.random.default_rng(self.seed * 1_000_003 + vertex_id)
        walk = rng.standard_normal(self.dim)
        return np.concatenate([np.zeros(self.dim), walk]).tolist()

    def compute(self, vertex: Vertex) -> None:
        state = np.asarray(vertex.value, dtype=np.float64)
        embedding, walk = state[: self.dim], state[self.dim :]
        if vertex.superstep > 0:
            if vertex.messages:
                # The same reduceat call the combiner and sum_messages
                # run — combined/uncombined inboxes reduce identically.
                block = np.asarray(vertex.messages, dtype=np.float64)
                walk = np.add.reduceat(block, [0], axis=0)[0]
            else:
                walk = np.zeros(self.dim)
            embedding = embedding + (self.decay**vertex.superstep) * walk
            vertex.modify_vertex_value(np.concatenate([embedding, walk]).tolist())
        if vertex.superstep < self.iterations:
            degree = len(vertex.out_edges)
            if degree:
                vertex.send_message_to_all_neighbors((walk / degree).tolist())
        else:
            vertex.vote_to_halt()

    def compute_batch(self, batch: VertexBatch) -> None:
        k = self.dim
        state = batch.values
        walk = state[:, k:]
        if batch.superstep > 0:
            walk = batch.sum_messages()
            embedding = state[:, :k] + (self.decay**batch.superstep) * walk
            batch.set_values(np.concatenate([embedding, walk], axis=1))
        if batch.superstep < self.iterations:
            degrees = batch.out_degrees
            senders = degrees > 0
            outgoing = walk / np.where(senders, degrees, 1)[:, None]
            batch.send_to_all_neighbors(outgoing, mask=senders)
        else:
            batch.vote_to_halt()

    def embeddings(self, values: dict[int, list[float]]) -> np.ndarray:
        """Extract the ``(n, dim)`` embedding block from final values."""
        return np.stack(
            [np.asarray(values[v][: self.dim]) for v in sorted(values)]
        )


def reference_random_walk_embeddings(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    program: RandomWalkEmbeddings,
) -> np.ndarray:
    """Dense-matrix oracle for the ``(n, 2 * dim)`` final vertex state
    (same recurrence, independent arithmetic — compare with allclose)."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    walk = np.stack(
        [
            np.asarray(program.initial_value(v, 0, num_vertices))[program.dim :]
            for v in range(num_vertices)
        ]
    )
    embedding = np.zeros_like(walk)
    degrees = np.bincount(src, minlength=num_vertices).astype(np.float64)
    for step in range(1, program.iterations + 1):
        outgoing = walk / np.where(degrees > 0, degrees, 1.0)[:, None]
        incoming = np.zeros_like(walk)
        np.add.at(incoming, dst, outgoing[src])
        walk = incoming
        embedding = embedding + (program.decay**step) * walk
    return np.concatenate([embedding, walk], axis=1)
