"""GNN-style feature propagation over width-k feature vectors.

The smoothing layer at the core of graph neural networks (SGC / APPNP
style): every vertex carries a width-``k`` feature vector, and each
round mixes it with the degree-normalized sum of its in-neighbors'
features::

    x'_v = (1 - alpha) * x_v + alpha * sum_{u -> v} x_u / out_degree(u)

The neighbor sum is exactly an element-wise ``SUM`` combiner, so the
data plane can collapse a vertex's whole inbox into one routed row.
Every reduction site — the SQL GROUP BY, the shard-plane combine, and
the batch kernel (:meth:`~repro.core.program.VertexBatch.sum_messages`)
— runs the same float64 ``reduceat`` arithmetic, which keeps combined
runs bit-identical to uncombined runs across both planes and all
executors (and the Giraph baseline with one worker, where sender-side
combining sees whole inboxes).
"""

from __future__ import annotations

import numpy as np

from repro.core.api import Vertex
from repro.core.codecs import vector_codec
from repro.core.program import BatchVertexProgram, VertexBatch

__all__ = ["FeaturePropagation", "reference_feature_propagation"]


class FeaturePropagation(BatchVertexProgram):
    """Iterative degree-normalized feature smoothing.

    Args:
        iterations: propagation rounds (supersteps after the initial
            feature exchange).
        width: feature-vector dimensionality.
        alpha: mixing weight of the aggregated neighbor features.
        seed: seeds the deterministic per-vertex initial features.
    """

    combiner = "SUM"

    def __init__(
        self,
        iterations: int = 5,
        width: int = 8,
        alpha: float = 0.5,
        seed: int = 11,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if width < 1:
            raise ValueError("width must be >= 1")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        self.iterations = iterations
        self.width = width
        self.alpha = alpha
        self.seed = seed
        self.vertex_codec = vector_codec(width)
        self.message_codec = vector_codec(width)
        self.max_supersteps = iterations + 1

    def initial_value(
        self, vertex_id: int, out_degree: int, num_vertices: int
    ) -> list[float]:
        rng = np.random.default_rng(self.seed * 1_000_003 + vertex_id)
        return rng.standard_normal(self.width).tolist()

    def compute(self, vertex: Vertex) -> None:
        features = np.asarray(vertex.value, dtype=np.float64)
        if vertex.superstep > 0 and vertex.messages:
            # The same reduceat call the combiner and sum_messages run —
            # combined and uncombined inboxes reduce identically.
            block = np.asarray(vertex.messages, dtype=np.float64)
            incoming = np.add.reduceat(block, [0], axis=0)[0]
            features = (1.0 - self.alpha) * features + self.alpha * incoming
            vertex.modify_vertex_value(features.tolist())
        if vertex.superstep < self.iterations:
            degree = len(vertex.out_edges)
            if degree:
                vertex.send_message_to_all_neighbors((features / degree).tolist())
        else:
            vertex.vote_to_halt()

    def compute_batch(self, batch: VertexBatch) -> None:
        features = batch.values
        if batch.superstep > 0:
            has_messages = batch.message_counts > 0
            incoming = batch.sum_messages()
            mixed = (1.0 - self.alpha) * features + self.alpha * incoming
            features = np.where(has_messages[:, None], mixed, features)
            batch.set_values(features, mask=has_messages)
        if batch.superstep < self.iterations:
            degrees = batch.out_degrees
            senders = degrees > 0
            outgoing = features / np.where(senders, degrees, 1)[:, None]
            batch.send_to_all_neighbors(outgoing, mask=senders)
        else:
            batch.vote_to_halt()


def reference_feature_propagation(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    program: FeaturePropagation,
) -> np.ndarray:
    """Dense-matrix oracle for :class:`FeaturePropagation` semantics
    (same recurrence, independent arithmetic — compare with allclose)."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    features = np.stack(
        [
            np.asarray(program.initial_value(v, 0, num_vertices))
            for v in range(num_vertices)
        ]
    )
    degrees = np.bincount(src, minlength=num_vertices).astype(np.float64)
    for _ in range(program.iterations):
        outgoing = features / np.where(degrees > 0, degrees, 1.0)[:, None]
        incoming = np.zeros_like(features)
        np.add.at(incoming, dst, outgoing[src])
        received = np.bincount(dst, minlength=num_vertices) > 0
        mixed = (1.0 - program.alpha) * features + program.alpha * incoming
        features = np.where(received[:, None], mixed, features)
    return features
