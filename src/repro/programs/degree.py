"""Degree-counting programs — the "hello world" of message passing.

``OutDegree`` needs no messages at all; ``InDegree`` is the minimal
demonstration of why messages exist: a vertex cannot see its in-edges, so
every vertex sends ``1`` along its out-edges in superstep 0 and receivers
sum their inbox in superstep 1.
"""

from __future__ import annotations

from repro.core.api import Vertex
from repro.core.program import VertexProgram

__all__ = ["OutDegree", "InDegree"]


class OutDegree(VertexProgram):
    """Stores each vertex's out-degree as its value; one superstep."""

    combiner = "SUM"

    def initial_value(self, vertex_id: int, out_degree: int, num_vertices: int) -> float:
        return 0.0

    def compute(self, vertex: Vertex) -> None:
        vertex.modify_vertex_value(float(vertex.out_degree))
        vertex.vote_to_halt()


class InDegree(VertexProgram):
    """Stores each vertex's in-degree as its value; two supersteps."""

    combiner = "SUM"

    def initial_value(self, vertex_id: int, out_degree: int, num_vertices: int) -> float:
        return 0.0

    def compute(self, vertex: Vertex) -> None:
        if vertex.superstep == 0:
            vertex.send_message_to_all_neighbors(1.0)
        else:
            vertex.modify_vertex_value(float(sum(vertex.messages)))
        vertex.vote_to_halt()
