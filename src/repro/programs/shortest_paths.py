"""Vertex-centric single-source shortest paths.

Pregel's classic SSSP: the source starts at distance 0 and relaxes its
neighbors; every other vertex starts at infinity, updates to the minimum
incoming candidate, and relaxes onward only when it improved.  Every
vertex votes to halt each superstep — message arrival re-activates it —
so the run terminates exactly when no distance can improve, matching the
paper's "runs as long as there is any message" coordinator loop.
"""

from __future__ import annotations

import heapq
from typing import Iterable

import numpy as np

from repro.core.api import Vertex
from repro.core.program import BatchVertexProgram, VertexBatch

__all__ = ["ShortestPaths", "reference_sssp"]

INFINITY = float("inf")


class ShortestPaths(BatchVertexProgram):
    """Single-source shortest paths from ``source``.

    Final vertex values are path distances; unreachable vertices keep
    ``float('inf')``.
    """

    combiner = "MIN"

    def __init__(self, source: int) -> None:
        if source < 0:
            raise ValueError("source vertex id must be non-negative")
        self.source = source

    def initial_value(self, vertex_id: int, out_degree: int, num_vertices: int) -> float:
        return 0.0 if vertex_id == self.source else INFINITY

    def compute(self, vertex: Vertex) -> None:
        if vertex.superstep == 0:
            if vertex.id == self.source:
                for edge in vertex.out_edges:
                    vertex.send_message(edge.target, edge.weight)
        else:
            best = min(vertex.messages)
            if best < vertex.value:
                vertex.modify_vertex_value(best)
                for edge in vertex.out_edges:
                    vertex.send_message(edge.target, best + edge.weight)
        vertex.vote_to_halt()

    def compute_batch(self, batch: VertexBatch) -> None:
        if batch.superstep == 0:
            batch.send_along_edges(batch.edge_weights, mask=batch.ids == self.source)
        else:
            best = batch.min_messages()
            improved = (batch.message_counts > 0) & (best < batch.values)
            batch.set_values(np.where(improved, best, batch.values))
            relaxed = (
                np.repeat(np.where(improved, best, 0.0), batch.out_degrees)
                + batch.edge_weights
            )
            batch.send_along_edges(relaxed, mask=improved)
        batch.vote_to_halt()


def reference_sssp(
    num_vertices: int,
    src: Iterable[int],
    dst: Iterable[int],
    weights: Iterable[float],
    source: int,
) -> np.ndarray:
    """Dijkstra oracle (non-negative weights) matching
    :class:`ShortestPaths` semantics; unreachable = ``inf``."""
    adjacency: list[list[tuple[int, float]]] = [[] for _ in range(num_vertices)]
    for s, d, w in zip(src, dst, weights):
        adjacency[int(s)].append((int(d), float(w)))
    dist = np.full(num_vertices, INFINITY)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist[node]:
            continue
        for target, weight in adjacency[node]:
            candidate = d + weight
            if candidate < dist[target]:
                dist[target] = candidate
                heapq.heappush(heap, (candidate, target))
    return dist
