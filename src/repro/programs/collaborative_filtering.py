"""Vertex-centric collaborative filtering (latent-factor SGD).

The paper lists collaborative filtering as a vertex-centric workload: "a
recommendation technique to predict the edge weights in a bipartite
graph".  The standard Pregel formulation models users and items as
vertices of a bipartite graph whose edge weights are ratings; each vertex
holds a latent-factor vector, and each superstep performs one gradient
step against the vectors received from its neighbors.

The factor vector is *structured* vertex state.  Two storage codecs are
supported (the ``codec`` argument):

* ``"vector"`` (default) — the dense typed path: rank-``k`` factor
  vectors live in ``k`` FLOAT columns via
  :func:`~repro.core.codecs.vector_codec`, and each message payload is
  the bare factor vector (the sender arrives through the message table's
  ``src`` column, surfaced as ``vertex.message_senders``).  No
  serialization anywhere on the superstep hot path.
* ``"json"`` — the legacy ablation: vectors serialized through the JSON
  codec into a VARCHAR column, paying ``json.dumps``/``loads`` per row
  per superstep.

Both paths run the same ``compute`` and produce bit-identical factors
(the parity suite holds them to it); only the storage layout differs.

The rating a vertex needs for neighbor ``s`` is the weight of its own
out-edge to ``s``, so the graph must contain both edge directions with the
rating as the weight (load with ``symmetrize=True``).
"""

from __future__ import annotations

import numpy as np

from repro.core.api import Vertex
from repro.core.codecs import JSON_CODEC, vector_codec
from repro.core.program import VertexProgram

__all__ = ["CollaborativeFiltering"]


class CollaborativeFiltering(VertexProgram):
    """Latent-factor SGD for rating prediction on a bipartite graph.

    Args:
        iterations: gradient rounds (each round = one superstep after the
            initial vector exchange).
        rank: latent-vector dimensionality.
        learning_rate: SGD step size.
        regularization: L2 penalty.
        seed: seeds the deterministic per-vertex initial vectors.
        codec: ``"vector"`` (dense typed columns, default) or ``"json"``
            (the VARCHAR serialization ablation).
    """

    combiner = None  # SGD consumes each neighbor vector; not reducible

    def __init__(
        self,
        iterations: int = 10,
        rank: int = 8,
        learning_rate: float = 0.05,
        regularization: float = 0.02,
        seed: int = 7,
        codec: str = "vector",
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if rank < 1:
            raise ValueError("rank must be >= 1")
        if codec not in ("vector", "json"):
            raise ValueError(f"codec must be 'vector' or 'json', got {codec!r}")
        self.iterations = iterations
        self.rank = rank
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.seed = seed
        self.codec = codec
        if codec == "vector":
            self.vertex_codec = vector_codec(rank)
            self.message_codec = vector_codec(rank)
        else:
            self.vertex_codec = JSON_CODEC
            self.message_codec = JSON_CODEC
        self.max_supersteps = iterations + 1

    # ------------------------------------------------------------------
    def initial_value(self, vertex_id: int, out_degree: int, num_vertices: int) -> list[float]:
        rng = np.random.default_rng(self.seed * 1_000_003 + vertex_id)
        return (rng.random(self.rank) * 0.1).tolist()

    def checkpoint_state(self) -> dict:
        # SGD here is order-sensitive but RNG-free per superstep: the only
        # randomness is the seed-derived per-vertex initial vectors, so
        # resuming bit-identically needs exactly the seed back.
        return {"rng_seed": self.seed}

    def restore_state(self, state: dict) -> None:
        self.seed = int(state.get("rng_seed", self.seed))

    def compute(self, vertex: Vertex) -> None:
        if vertex.superstep > 0:
            ratings = {edge.target: edge.weight for edge in vertex.out_edges}
            factors = np.asarray(vertex.value, dtype=np.float64)
            lr = self.learning_rate
            reg = self.regularization
            # The sender is the message relation's src column — not part
            # of the payload, which is the bare factor vector.
            for sender, their_factors in zip(vertex.message_senders, vertex.messages):
                rating = ratings.get(sender)
                if rating is None:  # message from a non-neighbor; ignore
                    continue
                theirs = np.asarray(their_factors, dtype=np.float64)
                error = rating - float(factors @ theirs)
                factors = factors + lr * (error * theirs - reg * factors)
            vertex.modify_vertex_value(factors.tolist())
        if vertex.superstep < self.iterations:
            vertex.send_message_to_all_neighbors(vertex.value)
        else:
            vertex.vote_to_halt()

    # ------------------------------------------------------------------
    @staticmethod
    def predict(values: dict[int, list[float]], user: int, item: int) -> float:
        """Predicted rating = dot product of the two latent vectors."""
        return float(
            np.asarray(values[user], dtype=np.float64)
            @ np.asarray(values[item], dtype=np.float64)
        )

    @staticmethod
    def rmse(
        values: dict[int, list[float]],
        ratings: list[tuple[int, int, float]],
    ) -> float:
        """Root-mean-squared error over ``(user, item, rating)`` triples."""
        if not ratings:
            return 0.0
        errors = [
            (rating - CollaborativeFiltering.predict(values, user, item)) ** 2
            for user, item, rating in ratings
        ]
        return float(np.sqrt(np.mean(errors)))
