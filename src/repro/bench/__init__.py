"""``repro.bench`` — the benchmark harness behind ``benchmarks/``.

Builds the Figure 2 grid (4 systems x 3 graphs x 2 algorithms) and the
§2.3 ablation sweeps, with scale controlled by the ``REPRO_BENCH_SCALE``
environment variable so the same code runs as a quick smoke or a full
reproduction.
"""

from repro.bench.harness import (
    BenchGraphs,
    SystemTiming,
    bench_graphs,
    bench_scale,
    format_figure2_table,
    pagerank_iterations,
)
from repro.bench.figure2 import figure2_rows, run_system

__all__ = [
    "BenchGraphs",
    "SystemTiming",
    "bench_graphs",
    "bench_scale",
    "format_figure2_table",
    "pagerank_iterations",
    "figure2_rows",
    "run_system",
]
