"""Figure 2 runners: one prepared (setup, timed-run) pair per system.

Each ``prepare_*`` function performs all loading/setup work and returns a
zero-argument callable executing only what the paper times: the query.
The callable returns a result fingerprint so the harness can assert all
systems agree before trusting any timing.

The graph database runs only the smallest graph, mirroring the paper
("the graph database runs only for the smallest graph"); on the larger
ones it reports DNF.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from repro.baselines.giraph import GiraphConfig, GiraphEngine
from repro.baselines.graphdb import (
    PropertyGraphStore,
    graphdb_pagerank,
    graphdb_shortest_paths,
)
from repro.bench.harness import SystemTiming, pagerank_iterations
from repro.core import Vertexica, VertexicaConfig
from repro.datasets.generators import Graph
from repro.programs import PageRank, ShortestPaths
from repro.sql_graph import pagerank_sql, shortest_paths_sql

__all__ = [
    "prepare_system",
    "run_system",
    "figure2_rows",
    "sssp_source",
    "GRAPHDB_ONLY_SMALLEST",
]

#: Mirrors the paper: the transactional graph DB handles only the smallest
#: dataset.  Set False to force it to run everything (it will, slowly).
GRAPHDB_ONLY_SMALLEST = True

Runner = Callable[[], float]


def sssp_source(graph: Graph) -> int:
    """A deterministic, well-connected SSSP source: the max-out-degree
    vertex (smallest id on ties)."""
    degrees = graph.degree_sequence()
    return int(np.argmax(degrees))


def _fingerprint(values: dict[int, Any]) -> float:
    """Order-independent sum of finite values — cheap cross-system check."""
    total = 0.0
    for value in values.values():
        if isinstance(value, (int, float)) and np.isfinite(value):
            total += float(value)
    return total


def _program_for(algorithm: str, graph: Graph) -> Any:
    if algorithm == "pagerank":
        return PageRank(iterations=pagerank_iterations())
    return ShortestPaths(source=sssp_source(graph))


# ---------------------------------------------------------------------------
# Per-system preparation.  Setup is NOT timed; the returned runner is.
# ---------------------------------------------------------------------------
def _prepare_vertexica(graph: Graph, algorithm: str) -> Runner:
    vx = Vertexica(config=VertexicaConfig(n_partitions=8))
    handle = vx.load_graph(
        graph.name, graph.src, graph.dst, num_vertices=graph.num_vertices
    )

    def run() -> float:
        result = vx.run(handle, _program_for(algorithm, graph))
        return _fingerprint(result.values)

    return run


def _prepare_vertexica_sql(graph: Graph, algorithm: str) -> Runner:
    vx = Vertexica()
    handle = vx.load_graph(
        graph.name, graph.src, graph.dst, num_vertices=graph.num_vertices
    )

    def run() -> float:
        if algorithm == "pagerank":
            values = pagerank_sql(vx.db, handle, iterations=pagerank_iterations())
        else:
            values = shortest_paths_sql(vx.db, handle, sssp_source(graph))
        return _fingerprint(values)

    return run


def _prepare_giraph(graph: Graph, algorithm: str) -> Runner:
    engine = GiraphEngine(
        graph.num_vertices, graph.src, graph.dst, config=GiraphConfig()
    )

    def run() -> float:
        result = engine.run(_program_for(algorithm, graph), graph_name=graph.name)
        return _fingerprint(result.values)

    return run


def _prepare_graphdb(graph: Graph, algorithm: str) -> Runner:
    store = PropertyGraphStore()
    store.load_edge_list(graph.src, graph.dst)
    with store.transaction() as tx:
        for vertex in range(graph.num_vertices):
            if not store.has_node(vertex):
                tx.create_node(vertex)

    def run() -> float:
        if algorithm == "pagerank":
            values: dict[int, float] = graphdb_pagerank(
                store, iterations=pagerank_iterations()
            )
        else:
            values = graphdb_shortest_paths(store, sssp_source(graph))
        return _fingerprint(values)

    return run


_PREPARERS: dict[str, Callable[[Graph, str], Runner]] = {
    "vertexica": _prepare_vertexica,
    "vertexica_sql": _prepare_vertexica_sql,
    "giraph": _prepare_giraph,
    "graphdb": _prepare_graphdb,
}


def prepare_system(system: str, graph: Graph, algorithm: str) -> Runner:
    """Set up one grid cell (untimed); the returned callable is the timed
    region and yields the result fingerprint."""
    return _PREPARERS[system](graph, algorithm)


def run_system(system: str, graph: Graph, algorithm: str) -> tuple[float, float]:
    """Run one cell; returns ``(seconds, fingerprint)``."""
    runner = prepare_system(system, graph, algorithm)
    started = time.perf_counter()
    fingerprint = runner()
    return time.perf_counter() - started, fingerprint


def figure2_rows(
    algorithm: str,
    graphs: list[Graph],
    systems: tuple[str, ...] = ("graphdb", "giraph", "vertexica", "vertexica_sql"),
    check_agreement: bool = True,
) -> list[SystemTiming]:
    """The full grid for one algorithm.

    When ``check_agreement`` is set, systems that produced results on the
    same graph must agree on the fingerprint to 1e-6 relative tolerance —
    a guard against benchmarking two different computations.
    """
    rows: list[SystemTiming] = []
    smallest = min(graphs, key=lambda g: g.num_edges).name
    fingerprints: dict[str, list[float]] = {}
    for graph in graphs:
        for system in systems:
            if system == "graphdb" and GRAPHDB_ONLY_SMALLEST and graph.name != smallest:
                rows.append(
                    SystemTiming(system, graph.name, None, note="exceeds capacity")
                )
                continue
            seconds, fingerprint = run_system(system, graph, algorithm)
            rows.append(SystemTiming(system, graph.name, seconds))
            fingerprints.setdefault(graph.name, []).append(fingerprint)
    if check_agreement:
        for graph_name, prints in fingerprints.items():
            base = prints[0]
            for other in prints[1:]:
                if not np.isclose(base, other, rtol=1e-6):
                    raise AssertionError(
                        f"systems disagree on {algorithm}@{graph_name}: {prints}"
                    )
    return rows
