"""Shared benchmark plumbing: graphs, scale, result formatting.

Scale semantics: ``REPRO_BENCH_SCALE`` (float, default 0.25) multiplies
the preset graph sizes from :mod:`repro.datasets.generators`.  At the
default scale the full Figure 2 grid runs in a couple of minutes on a
laptop; scale 1.0 is the "full" reproduction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from repro.datasets.generators import (
    Graph,
    gplus_like,
    livejournal_like,
    twitter_like,
)

__all__ = [
    "SystemTiming",
    "BenchGraphs",
    "bench_scale",
    "bench_graphs",
    "pagerank_iterations",
    "format_figure2_table",
    "GRAPH_ORDER",
    "SYSTEM_ORDER",
]

GRAPH_ORDER = ("twitter", "gplus", "livejournal")
SYSTEM_ORDER = ("graphdb", "giraph", "vertexica", "vertexica_sql")

_SYSTEM_LABELS = {
    "graphdb": "Graph Database",
    "giraph": "Apache Giraph (sim)",
    "vertexica": "Vertexica",
    "vertexica_sql": "Vertexica (SQL)",
}


@dataclass(frozen=True)
class SystemTiming:
    """One cell of the Figure 2 grid.

    ``seconds is None`` means DNF — the paper's graph database only runs
    the smallest graph; the harness mirrors that.
    """

    system: str
    graph: str
    seconds: float | None
    note: str = ""

    @property
    def display(self) -> str:
        """Rendered cell value (notes go to the table footnote)."""
        if self.seconds is None:
            return "DNF"
        return f"{self.seconds:.3f}s"


def bench_scale() -> float:
    """The configured scale factor (``REPRO_BENCH_SCALE``, default 0.25)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "0.25")
    try:
        scale = float(raw)
    except ValueError:
        scale = 0.25
    return max(scale, 0.01)


def pagerank_iterations() -> int:
    """Fixed PageRank horizon used across every system in the grid."""
    return int(os.environ.get("REPRO_BENCH_PR_ITERS", "5"))


@dataclass(frozen=True)
class BenchGraphs:
    """The three Figure 2 graphs at the configured scale."""

    twitter: Graph
    gplus: Graph
    livejournal: Graph

    def ordered(self) -> list[Graph]:
        """Graphs in the paper's presentation order (small -> large)."""
        return [self.twitter, self.gplus, self.livejournal]

    def by_name(self, name: str) -> Graph:
        """Lookup by preset name."""
        return {g.name: g for g in self.ordered()}[name]


@lru_cache(maxsize=4)
def bench_graphs(scale: float | None = None) -> BenchGraphs:
    """Generate (and cache) the three benchmark graphs."""
    s = bench_scale() if scale is None else scale
    return BenchGraphs(
        twitter=twitter_like(scale=s),
        gplus=gplus_like(scale=s),
        livejournal=livejournal_like(scale=s),
    )


def format_figure2_table(title: str, rows: list[SystemTiming]) -> str:
    """Render the grid the way the paper's Figure 2 tabulates it:
    one row per system, one column per graph."""
    cells: dict[tuple[str, str], SystemTiming] = {
        (row.system, row.graph): row for row in rows
    }
    graphs = [g for g in GRAPH_ORDER if any(r.graph == g for r in rows)]
    header = f"{'System':<22}" + "".join(f"{g:>16}" for g in graphs)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for system in SYSTEM_ORDER:
        if not any(r.system == system for r in rows):
            continue
        label = _SYSTEM_LABELS.get(system, system)
        line = f"{label:<22}"
        for graph in graphs:
            cell = cells.get((system, graph))
            line += f"{cell.display if cell else '-':>16}"
        lines.append(line)
    lines.append("=" * len(header))
    notes = sorted({row.note for row in rows if row.seconds is None and row.note})
    for note in notes:
        lines.append(f"DNF: {note}")
    return "\n".join(lines)
