"""The paper's hybrid analyses, composed from SQL + vertex-centric pieces.

Each function is one of the §3.2 / §4.2.2 examples:

* :func:`important_bridges` — "find all nodes which act as ties between
  otherwise disconnected nodes and have PageRank greater than a
  threshold";
* :func:`sssp_from_most_clustered` — "compute the single source shortest
  path with the source node being the node with the maximum local
  clustering coefficient";
* :func:`near_or_important` — "emit nodes which are either very near
  (path distance less than a threshold) or are relatively very important
  (PageRank greater than a threshold)";
* :func:`pagerank_on_subgraph` — localized PageRank: relational selection
  first, graph algorithm on the resulting subgraph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runner import Vertexica
from repro.core.storage import GraphHandle
from repro.engine.database import Database
from repro.sql_graph.clustering import local_clustering_coefficients
from repro.sql_graph.pagerank import pagerank_sql
from repro.sql_graph.shortest_paths import shortest_paths_sql
from repro.sql_graph.weak_ties import weak_ties_sql

__all__ = [
    "important_bridges",
    "sssp_from_most_clustered",
    "near_or_important",
    "pagerank_on_subgraph",
]


def important_bridges(
    db: Database,
    graph: GraphHandle,
    rank_percentile: float = 0.9,
    min_bridged_pairs: int = 1,
    pagerank_iterations: int = 10,
) -> list[tuple[int, float, int]]:
    """Sufficiently important nodes that bridge disconnected neighbors.

    Combines weak ties (1-hop SQL) with PageRank; the rank threshold is
    taken as a percentile of the rank distribution so the query is
    meaningful on any graph size.

    Returns:
        ``[(vertex_id, rank, bridged_pairs)]`` sorted by rank descending.
    """
    ranks = pagerank_sql(db, graph, iterations=pagerank_iterations)
    ties = weak_ties_sql(db, graph, min_pairs=min_bridged_pairs)
    ordered = sorted(ranks.values())
    cutoff_index = min(int(len(ordered) * rank_percentile), len(ordered) - 1)
    threshold = ordered[cutoff_index]
    out = [
        (vertex_id, ranks[vertex_id], pairs)
        for vertex_id, pairs in ties.items()
        if ranks.get(vertex_id, 0.0) > threshold
    ]
    out.sort(key=lambda item: (-item[1], item[0]))
    return out


def sssp_from_most_clustered(
    db: Database, graph: GraphHandle
) -> tuple[int, dict[int, float]]:
    """Distances from the vertex with the maximum local clustering
    coefficient (ties broken toward the smallest id).

    Returns:
        ``(source_vertex, distances)``.
    """
    coefficients = local_clustering_coefficients(db, graph)
    source = min(coefficients, key=lambda v: (-coefficients[v], v))
    return source, shortest_paths_sql(db, graph, source)


def near_or_important(
    db: Database,
    graph: GraphHandle,
    source: int,
    distance_threshold: float,
    rank_percentile: float = 0.95,
    pagerank_iterations: int = 10,
) -> list[tuple[int, str]]:
    """Nodes near ``source`` or globally important (§4.2.2).

    Returns:
        ``[(vertex_id, reason)]`` with reason ``"near"``, ``"important"``,
        or ``"both"``, ordered by vertex id.
    """
    distances = shortest_paths_sql(db, graph, source)
    ranks = pagerank_sql(db, graph, iterations=pagerank_iterations)
    ordered = sorted(ranks.values())
    cutoff_index = min(int(len(ordered) * rank_percentile), len(ordered) - 1)
    threshold = ordered[cutoff_index]
    out: list[tuple[int, str]] = []
    for vertex_id in sorted(distances):
        near = distances[vertex_id] < distance_threshold
        important = ranks.get(vertex_id, 0.0) > threshold
        if near and important:
            out.append((vertex_id, "both"))
        elif near:
            out.append((vertex_id, "near"))
        elif important:
            out.append((vertex_id, "important"))
    return out


def pagerank_on_subgraph(
    vx: Vertexica,
    graph: GraphHandle,
    edge_predicate: str,
    iterations: int = 10,
    subgraph_name: str | None = None,
) -> dict[int, float]:
    """Localized PageRank: select a subgraph relationally, then rank it.

    Args:
        vx: the Vertexica instance holding the graph.
        edge_predicate: SQL boolean over the edge table's columns
            (``src``, ``dst``, ``weight``) or any joined attribute table —
            the predicate is spliced into a WHERE clause, e.g.
            ``"weight > 2.5"``.
        subgraph_name: name for the materialized subgraph tables
            (default ``{graph}_sub``).

    Returns:
        PageRank over the selected subgraph only.
    """
    name = subgraph_name or f"{graph.name}_sub"
    rows = vx.db.execute(
        f"SELECT src, dst, weight FROM {graph.edge_table} WHERE {edge_predicate}"
    ).rows()
    src = [r[0] for r in rows]
    dst = [r[1] for r in rows]
    weights = [r[2] for r in rows]
    sub = vx.load_graph(name, src, dst, weights=weights)
    return pagerank_sql(vx.db, sub, iterations=iterations)
