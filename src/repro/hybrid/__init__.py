"""``repro.hybrid`` — hybrid graph queries (§3.2).

Queries that combine vertex-centric analysis, 1-hop SQL algorithms, and
plain relational operators inside one database — the analyses the paper
calls "very difficult or even not possible on traditional graph
processing systems".
"""

from repro.hybrid.queries import (
    important_bridges,
    near_or_important,
    pagerank_on_subgraph,
    sssp_from_most_clustered,
)

__all__ = [
    "important_bridges",
    "sssp_from_most_clustered",
    "near_or_important",
    "pagerank_on_subgraph",
]
