"""Stored tables: named, constrained, versioned record batches.

A :class:`Table` owns the current :class:`~repro.engine.batch.RecordBatch`
for a name in the catalog plus its constraints (NOT NULL, PRIMARY KEY).
Mutations never modify batches in place — they produce a new batch and bump
the table's version counter.  That gives us three things the paper leans on:

* cheap transaction snapshots (copy the name->batch mapping, not the data);
* the "update vs replace" optimization — replacing a table is a pointer
  swap (:meth:`Table.replace_data`), in-place-style updates rebuild only
  the touched columns (:meth:`Table.update_rows`);
* a version counter that temporal analysis can hang snapshots off.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.engine.batch import RecordBatch
from repro.engine.changelog import ChangeLog, TableDelta, next_table_uid
from repro.engine.column import Column, concat_columns
from repro.engine.schema import Schema
from repro.errors import ConstraintError, TypeMismatchError

__all__ = ["Table"]


class Table:
    """A named stored table.

    Attributes:
        name: catalog name.
        schema: the declared schema (unqualified).
        primary_key: optional column name enforced unique + NOT NULL.
        version: bumped on every mutation; starts at 0.
        uid: process-unique identity — survives nothing, so derived state
            recorded against a dropped/recreated table never matches the
            replacement object (see :mod:`repro.engine.changelog`).
        changelog: row-delta capture for incremental view maintenance.
    """

    __slots__ = ("name", "schema", "primary_key", "version", "uid", "changelog", "_batch")

    def __init__(
        self,
        name: str,
        schema: Schema,
        batch: RecordBatch | None = None,
        primary_key: str | None = None,
    ) -> None:
        self.name = name
        self.schema = schema.unqualified()
        self.primary_key = primary_key
        self.version = 0
        self.uid = next_table_uid()
        self.changelog = ChangeLog()
        if batch is None:
            batch = RecordBatch.empty(self.schema)
        self._batch = batch.with_schema(self.schema)
        if primary_key is not None and primary_key not in schema.names():
            raise ConstraintError(
                f"primary key column {primary_key!r} not in table {name!r}"
            )
        self._check_constraints(self._batch)

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Current row count."""
        return self._batch.num_rows

    def data(self) -> RecordBatch:
        """The current contents.  Treat as immutable."""
        return self._batch

    def snapshot(self) -> RecordBatch:
        """Alias of :meth:`data` that reads better at transaction call
        sites; batches are immutable so no copy is needed."""
        return self._batch

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, rows={self.num_rows}, version={self.version})"

    # ------------------------------------------------------------------
    # Constraint checking
    # ------------------------------------------------------------------
    def _check_constraints(self, batch: RecordBatch) -> None:
        for coldef, column in zip(self.schema, batch.columns):
            if not coldef.nullable and column.has_nulls():
                raise ConstraintError(
                    f"NULL in NOT NULL column {self.name}.{coldef.name}"
                )
        if self.primary_key is not None:
            column = batch.column(self.primary_key)
            if column.has_nulls():
                raise ConstraintError(
                    f"NULL in primary key {self.name}.{self.primary_key}"
                )
            values = column.values
            if len(values) != len(np.unique(values)):
                raise ConstraintError(
                    f"duplicate value in primary key {self.name}.{self.primary_key}"
                )

    # ------------------------------------------------------------------
    # Mutations (each produces a fresh batch and bumps the version)
    # ------------------------------------------------------------------
    def insert_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append Python row tuples; returns the number inserted."""
        new = RecordBatch.from_rows(self.schema, rows)
        return self.insert_batch(new)

    def insert_batch(self, batch: RecordBatch) -> int:
        """Append a record batch (types must match the table schema)."""
        if not self.schema.union_compatible_with(batch.schema):
            raise TypeMismatchError(
                f"insert into {self.name!r}: incompatible batch schema"
            )
        normalized = batch.with_schema(self.schema)
        merged = RecordBatch.concat([self._batch, normalized])
        self._check_constraints(merged)
        self._batch = merged
        self.version += 1
        self.changelog.record(self.version, inserted=normalized)
        return batch.num_rows

    def delete_rows(self, mask: np.ndarray) -> int:
        """Delete rows where ``mask`` is True; returns the number deleted."""
        if len(mask) != self.num_rows:
            raise TypeMismatchError("delete mask length mismatch")
        deleted = int(np.count_nonzero(mask))
        if deleted:
            # Materializing the removed rows is only worth it when some
            # consumer armed change capture on this table.
            removed = self._batch.filter(mask) if self.changelog.enabled else None
            self._batch = self._batch.filter(~mask)
            self.version += 1
            self.changelog.record(self.version, deleted=removed)
        return deleted

    def update_rows(
        self,
        mask: np.ndarray,
        assignments: dict[str, Callable[[RecordBatch], Column]],
    ) -> int:
        """In-place-style update: for rows where ``mask`` is True, replace
        each assigned column with values computed *over the full batch* by
        the given builder (only masked positions are taken from it).

        This is the engine's "Update" path from the paper's Update-vs-Replace
        optimization — it rewrites only the touched columns but must merge
        old and new values position by position.

        Returns the number of rows updated.
        """
        if len(mask) != self.num_rows:
            raise TypeMismatchError("update mask length mismatch")
        touched = int(np.count_nonzero(mask))
        if touched == 0:
            return 0
        new_columns = list(self._batch.columns)
        for name, builder in assignments.items():
            index = self.schema.index_of(name)
            fresh = builder(self._batch)
            if fresh.dtype is not self.schema[index].dtype:
                raise TypeMismatchError(
                    f"update of {self.name}.{name}: type mismatch "
                    f"({fresh.dtype.name} vs {self.schema[index].dtype.name})"
                )
            old = new_columns[index]
            values = old.values.copy()
            valid = old.valid.copy()
            values[mask] = fresh.values[mask]
            valid[mask] = fresh.valid[mask]
            new_columns[index] = Column(old.dtype, values, valid)
        candidate = RecordBatch(self._batch.schema, new_columns)
        self._check_constraints(candidate)
        before = self._batch
        self._batch = candidate
        self.version += 1
        if self.changelog.enabled:
            # An in-place update is delete-old-rows + insert-new-rows to
            # any delta consumer.
            self.changelog.record(
                self.version,
                inserted=candidate.filter(mask),
                deleted=before.filter(mask),
            )
        return touched

    def replace_data(self, batch: RecordBatch) -> None:
        """The "Replace" path: swap in an entirely new batch (constraints
        re-checked).  This models Vertexica's create-new-table-and-swap
        trick — O(1) beyond building the batch itself."""
        if not self.schema.union_compatible_with(batch.schema):
            raise TypeMismatchError(
                f"replace of {self.name!r}: incompatible batch schema"
            )
        normalized = batch.with_schema(self.schema)
        self._check_constraints(normalized)
        self._batch = normalized
        self.version += 1
        # Wholesale swap: no row diff is computed, the delta window resets.
        self.changelog.reset(self.version)

    def truncate(self) -> None:
        """Remove all rows."""
        self._batch = RecordBatch.empty(self.schema)
        self.version += 1
        self.changelog.reset(self.version)

    # ------------------------------------------------------------------
    # Change capture
    # ------------------------------------------------------------------
    def changes_since(self, version: int) -> TableDelta | None:
        """Row deltas between ``version`` and the current version, or
        ``None`` when the window is no longer reconstructable (wholesale
        swap, rollback, eviction, or a rewound/foreign version)."""
        return self.changelog.changes_since(version, self.version, self.schema)

    # ------------------------------------------------------------------
    # Restore (used by transactions / checkpoint recovery)
    # ------------------------------------------------------------------
    def restore(self, batch: RecordBatch, version: int) -> None:
        """Reset contents and version — only transactions and recovery call
        this; it bypasses the version bump on purpose (and resets change
        capture: a rewind cannot be expressed as a forward delta).  Tables
        that were not actually touched since the snapshot keep their delta
        window — rollback of an unrelated transaction must not force full
        recomputation of every derived view.

        A genuine rewind also assigns a fresh :attr:`uid`: version numbers
        repeat after a rollback (the rewound version will be re-bumped by
        different mutations), so bookmarks taken against the old lineage
        must stop matching instead of silently reading the wrong delta."""
        if batch is self._batch and version == self.version:
            return
        self._batch = batch
        self.version = version
        self.uid = next_table_uid()
        self.changelog.reset(version)
