"""Type system of the columnar engine.

The engine supports four scalar SQL types, each mapped to a numpy storage
dtype.  NULLs are represented out-of-band by a boolean validity mask (see
:mod:`repro.engine.column`), so the storage arrays never hold sentinel
values that a user could observe.

Types intentionally mirror what the Vertexica paper needs: 64-bit integers
for vertex ids, doubles for vertex values / PageRank scores, strings for
metadata and serialized state, and booleans for flags such as the Pregel
"halted" bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import TypeMismatchError

__all__ = [
    "DataType",
    "INTEGER",
    "FLOAT",
    "VARCHAR",
    "BOOLEAN",
    "ALL_TYPES",
    "type_from_name",
    "infer_literal_type",
    "common_type",
    "coerce_python_value",
]


@dataclass(frozen=True)
class DataType:
    """A scalar SQL type.

    Attributes:
        name: upper-case SQL spelling, e.g. ``"INTEGER"``.
        numpy_dtype: dtype used for the values array of a column.
        python_type: canonical Python type accepted for literals.
    """

    name: str
    numpy_dtype: Any
    python_type: type

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @property
    def is_numeric(self) -> bool:
        """True for INTEGER and FLOAT."""
        return self.name in ("INTEGER", "FLOAT")

    def default_value(self) -> Any:
        """Storage filler used under a null mask (never user visible)."""
        if self.name == "INTEGER":
            return 0
        if self.name == "FLOAT":
            return 0.0
        if self.name == "BOOLEAN":
            return False
        return ""

    def __reduce__(self) -> tuple:
        """Unpickle to the canonical singleton — the engine compares types
        with ``is`` throughout, so a schema shipped to a worker process
        must resolve back to the same four instances."""
        return (type_from_name, (self.name,))


INTEGER = DataType("INTEGER", np.int64, int)
FLOAT = DataType("FLOAT", np.float64, float)
VARCHAR = DataType("VARCHAR", object, str)
BOOLEAN = DataType("BOOLEAN", np.bool_, bool)

ALL_TYPES = (INTEGER, FLOAT, VARCHAR, BOOLEAN)

_NAME_ALIASES = {
    "INT": INTEGER,
    "INTEGER": INTEGER,
    "BIGINT": INTEGER,
    "SMALLINT": INTEGER,
    "TINYINT": INTEGER,
    "FLOAT": FLOAT,
    "DOUBLE": FLOAT,
    "REAL": FLOAT,
    "NUMERIC": FLOAT,
    "DECIMAL": FLOAT,
    "VARCHAR": VARCHAR,
    "TEXT": VARCHAR,
    "STRING": VARCHAR,
    "CHAR": VARCHAR,
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
}


def type_from_name(name: str) -> DataType:
    """Resolve a SQL type name (case-insensitive, common aliases) to a
    :class:`DataType`.

    Raises:
        TypeMismatchError: if the name is not a supported type.
    """
    dtype = _NAME_ALIASES.get(name.upper())
    if dtype is None:
        raise TypeMismatchError(f"unknown SQL type: {name!r}")
    return dtype


def infer_literal_type(value: Any) -> DataType:
    """Infer the SQL type of a Python literal.

    ``bool`` is checked before ``int`` because ``bool`` is a subclass of
    ``int`` in Python.

    Raises:
        TypeMismatchError: for unsupported Python types (``None`` has no
            type of its own; callers handle NULL literals separately).
    """
    if isinstance(value, bool) or isinstance(value, np.bool_):
        return BOOLEAN
    if isinstance(value, (int, np.integer)):
        return INTEGER
    if isinstance(value, (float, np.floating)):
        return FLOAT
    if isinstance(value, str):
        return VARCHAR
    raise TypeMismatchError(f"unsupported literal type: {type(value).__name__}")


def common_type(left: DataType, right: DataType) -> DataType:
    """Numeric promotion used by arithmetic and comparisons.

    INTEGER combined with FLOAT widens to FLOAT; identical types pass
    through.  Everything else is a type error — the engine performs no
    implicit string/number conversion, matching strict SQL engines.
    """
    if left is right:
        return left
    if {left, right} == {INTEGER, FLOAT}:
        return FLOAT
    raise TypeMismatchError(f"incompatible types: {left.name} and {right.name}")


def coerce_python_value(value: Any, dtype: DataType) -> Any:
    """Coerce one Python value for storage in a column of ``dtype``.

    Accepts ints where floats are expected (SQL-style widening) and numpy
    scalars of a matching kind.  Returns the coerced value; ``None`` passes
    through untouched (it becomes a NULL).

    Raises:
        TypeMismatchError: if the value cannot represent the type losslessly.
    """
    if value is None:
        return None
    if dtype is INTEGER:
        if isinstance(value, bool) or isinstance(value, np.bool_):
            raise TypeMismatchError("BOOLEAN value given for INTEGER column")
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, (float, np.floating)) and float(value).is_integer():
            return int(value)
        raise TypeMismatchError(f"cannot store {value!r} in INTEGER column")
    if dtype is FLOAT:
        if isinstance(value, bool) or isinstance(value, np.bool_):
            raise TypeMismatchError("BOOLEAN value given for FLOAT column")
        if isinstance(value, (int, float, np.integer, np.floating)):
            return float(value)
        raise TypeMismatchError(f"cannot store {value!r} in FLOAT column")
    if dtype is BOOLEAN:
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        raise TypeMismatchError(f"cannot store {value!r} in BOOLEAN column")
    if dtype is VARCHAR:
        if isinstance(value, str):
            return value
        raise TypeMismatchError(f"cannot store {value!r} in VARCHAR column")
    raise TypeMismatchError(f"unknown column type {dtype!r}")  # pragma: no cover
