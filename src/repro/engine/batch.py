"""Record batches: the unit of data flowing between physical operators.

A :class:`RecordBatch` is a schema plus one :class:`~repro.engine.column.Column`
per schema entry.  All operators consume and produce batches; a stored table
is just a named batch plus constraints (see :mod:`repro.engine.table`).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.engine.column import Column, concat_columns
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import DataType
from repro.errors import ExecutionError, TypeMismatchError

__all__ = ["RecordBatch"]


class RecordBatch:
    """An immutable table fragment: a schema and aligned columns.

    Invariant: every column has exactly ``num_rows`` entries and the i-th
    column's dtype equals the i-th schema entry's dtype.
    """

    __slots__ = ("schema", "columns", "num_rows")

    def __init__(self, schema: Schema, columns: Sequence[Column]) -> None:
        if len(schema) != len(columns):
            raise TypeMismatchError(
                f"schema has {len(schema)} columns but {len(columns)} were given"
            )
        num_rows = len(columns[0]) if columns else 0
        for coldef, col in zip(schema, columns):
            if col.dtype is not coldef.dtype:
                raise TypeMismatchError(
                    f"column {coldef.qualified_name!r} declared {coldef.dtype.name} "
                    f"but holds {col.dtype.name}"
                )
            if len(col) != num_rows:
                raise TypeMismatchError("ragged record batch: column lengths differ")
        self.schema = schema
        self.columns = tuple(columns)
        self.num_rows = num_rows

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, schema: Schema) -> "RecordBatch":
        """A zero-row batch of ``schema``."""
        return cls(schema, [Column.empty(col.dtype) for col in schema])

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Any]]) -> "RecordBatch":
        """Build a batch from Python row tuples (``None`` entries are NULL)."""
        rows = list(rows)
        width = len(schema)
        for row in rows:
            if len(row) != width:
                raise TypeMismatchError(
                    f"row has {len(row)} values, schema has {width} columns"
                )
        columns = [
            Column.from_values(coldef.dtype, [row[i] for row in rows])
            for i, coldef in enumerate(schema)
        ]
        return cls(schema, columns)

    @classmethod
    def from_pydict(cls, data: dict[str, tuple[DataType, Sequence[Any]]]) -> "RecordBatch":
        """Build a batch from ``{name: (dtype, values)}`` — a test/helper
        convenience mirroring Arrow's ``from_pydict``."""
        schema = Schema(ColumnDef(name, dtype) for name, (dtype, _) in data.items())
        columns = [Column.from_values(dtype, values) for dtype, values in data.values()]
        return cls(schema, columns)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RecordBatch({self.schema!r}, rows={self.num_rows})"

    def column(self, name: str, qualifier: str | None = None) -> Column:
        """The column for a (possibly qualified) name reference."""
        return self.columns[self.schema.index_of(name, qualifier)]

    def column_at(self, index: int) -> Column:
        """The column at a position."""
        return self.columns[index]

    def to_rows(self) -> list[tuple[Any, ...]]:
        """Materialize as Python row tuples (``None`` for NULL)."""
        if self.num_rows == 0:
            return []
        lists = [col.to_list() for col in self.columns]
        return [tuple(col[i] for col in lists) for i in range(self.num_rows)]

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate row tuples without building the whole list twice."""
        return iter(self.to_rows())

    def to_pydict(self) -> dict[str, list[Any]]:
        """``{bare name: values}`` — convenient in tests; raises if bare
        names collide (use qualified access instead)."""
        names = self.schema.names()
        if len(set(names)) != len(names):
            raise ExecutionError("to_pydict on a batch with duplicate bare names")
        return {name: col.to_list() for name, col in zip(names, self.columns)}

    # ------------------------------------------------------------------
    # Vectorized transforms
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "RecordBatch":
        """Gather rows by position into a new batch."""
        return RecordBatch(self.schema, [col.take(indices) for col in self.columns])

    def filter(self, mask: np.ndarray) -> "RecordBatch":
        """Keep rows where ``mask`` is True."""
        return RecordBatch(self.schema, [col.filter(mask) for col in self.columns])

    def select(self, indices: Sequence[int]) -> "RecordBatch":
        """Keep only the columns at ``indices`` (projection by position)."""
        return RecordBatch(
            self.schema.project(indices), [self.columns[i] for i in indices]
        )

    def slice(self, start: int, stop: int) -> "RecordBatch":
        """Rows in ``[start, stop)`` — used by LIMIT/OFFSET."""
        indices = np.arange(start, min(stop, self.num_rows))
        return self.take(indices)

    def with_schema(self, schema: Schema) -> "RecordBatch":
        """The same columns under a different (type-identical) schema;
        used for aliasing and UNION name unification."""
        if not self.schema.union_compatible_with(schema):
            raise TypeMismatchError("with_schema requires identical column types")
        return RecordBatch(schema, self.columns)

    def append_column(self, coldef: ColumnDef, column: Column) -> "RecordBatch":
        """A new batch with one extra column on the right."""
        return RecordBatch(
            Schema(tuple(self.schema.columns) + (coldef,)),
            list(self.columns) + [column],
        )

    @staticmethod
    def concat(batches: Sequence["RecordBatch"]) -> "RecordBatch":
        """Vertical concatenation (UNION ALL).  The first batch's schema
        wins; all batches must be union-compatible with it."""
        if not batches:
            raise ExecutionError("cannot concatenate zero batches")
        head = batches[0]
        for batch in batches[1:]:
            if not head.schema.union_compatible_with(batch.schema):
                raise TypeMismatchError("UNION ALL between incompatible schemas")
        if len(batches) == 1:
            return head
        columns = [
            concat_columns([batch.columns[i] for batch in batches])
            for i in range(len(head.schema))
        ]
        return RecordBatch(head.schema, columns)
