"""Checkpoint and recovery for the engine.

The paper motivates running graph analytics *inside* an RDBMS partly via
durability features ("checkpointing and recovery, fault tolerance").  This
module provides an explicit, pickle-free checkpoint format:

* ``<dir>/manifest.json`` — table names, schemas, constraints, versions;
* ``<dir>/<table>.npz``   — one compressed numpy archive per table with a
  values array and a validity array per column (VARCHAR values are stored
  as JSON inside the archive so no arbitrary code is ever deserialized).
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np

from repro.engine.batch import RecordBatch
from repro.engine.catalog import Catalog
from repro.engine.column import Column
from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Table
from repro.engine.types import VARCHAR, type_from_name
from repro.errors import EngineError

__all__ = ["checkpoint_catalog", "restore_catalog", "read_checkpoint_metadata"]

_MANIFEST = "manifest.json"
_FORMAT_VERSION = 1


def checkpoint_catalog(
    catalog: Catalog, directory: str, metadata: dict[str, Any] | None = None
) -> None:
    """Write every table in ``catalog`` to ``directory`` atomically enough
    for tests: manifest last, so a torn checkpoint is detectable.

    ``metadata`` is persisted verbatim inside the manifest (so it shares
    the manifest's torn-checkpoint guarantee): a higher layer's catalog —
    the graph-view registry — rides along with the tables it describes.
    """
    os.makedirs(directory, exist_ok=True)
    manifest: dict[str, Any] = {"format": _FORMAT_VERSION, "tables": {}}
    if metadata is not None:
        manifest["metadata"] = metadata
    for name in catalog.table_names():
        table = catalog.get(name)
        _write_table(table, os.path.join(directory, f"{name}.npz"))
        manifest["tables"][name] = {
            "columns": [
                {
                    "name": c.name,
                    "type": c.dtype.name,
                    "nullable": c.nullable,
                }
                for c in table.schema
            ],
            "primary_key": table.primary_key,
            "version": table.version,
            "rows": table.num_rows,
        }
    with open(os.path.join(directory, _MANIFEST), "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)


def _write_table(table: Table, path: str) -> None:
    arrays: dict[str, np.ndarray] = {}
    batch = table.data()
    for i, (coldef, column) in enumerate(zip(table.schema, batch.columns)):
        if coldef.dtype is VARCHAR:
            payload = json.dumps(column.to_list())
            arrays[f"col{i}_values"] = np.frombuffer(payload.encode("utf-8"), dtype=np.uint8)
        else:
            arrays[f"col{i}_values"] = column.values
        arrays[f"col{i}_valid"] = column.valid
    np.savez_compressed(path, **arrays)


def read_checkpoint_metadata(directory: str) -> dict[str, Any]:
    """The ``metadata`` dict a checkpoint was written with (``{}`` when
    none was supplied).

    Raises:
        EngineError: missing or unsupported manifest.
    """
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise EngineError(f"no checkpoint manifest at {manifest_path!r}")
    with open(manifest_path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    if manifest.get("format") != _FORMAT_VERSION:
        raise EngineError(f"unsupported checkpoint format: {manifest.get('format')!r}")
    return manifest.get("metadata", {})


def restore_catalog(directory: str) -> Catalog:
    """Rebuild a catalog from a checkpoint directory.

    Raises:
        EngineError: missing/garbled manifest or table files.
    """
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise EngineError(f"no checkpoint manifest at {manifest_path!r}")
    with open(manifest_path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    if manifest.get("format") != _FORMAT_VERSION:
        raise EngineError(f"unsupported checkpoint format: {manifest.get('format')!r}")
    catalog = Catalog()
    for name, meta in manifest["tables"].items():
        schema = Schema(
            ColumnDef(c["name"], type_from_name(c["type"]), nullable=c["nullable"])
            for c in meta["columns"]
        )
        batch = _read_table(os.path.join(directory, f"{name}.npz"), schema, meta["rows"])
        table = Table(name, schema, batch, primary_key=meta["primary_key"])
        table.restore(table.data(), meta["version"])
        catalog.register(table)
    return catalog


def _read_table(path: str, schema: Schema, expected_rows: int) -> RecordBatch:
    if not os.path.exists(path):
        raise EngineError(f"checkpoint table file missing: {path!r}")
    with np.load(path, allow_pickle=False) as archive:
        columns: list[Column] = []
        for i, coldef in enumerate(schema):
            valid = archive[f"col{i}_valid"]
            raw = archive[f"col{i}_values"]
            if coldef.dtype is VARCHAR:
                items = json.loads(raw.tobytes().decode("utf-8"))
                values = np.empty(len(items), dtype=object)
                values[:] = ["" if item is None else item for item in items]
                columns.append(Column(VARCHAR, values, valid))
            else:
                columns.append(Column(coldef.dtype, raw.astype(coldef.dtype.numpy_dtype), valid))
        batch = RecordBatch(schema, columns)
    if batch.num_rows != expected_rows:
        raise EngineError(
            f"checkpoint row-count mismatch for {path!r}: "
            f"manifest says {expected_rows}, file has {batch.num_rows}"
        )
    return batch
