"""Checkpoint and recovery for the engine.

The paper motivates running graph analytics *inside* an RDBMS partly via
durability features ("checkpointing and recovery, fault tolerance").  This
module provides an explicit, pickle-free checkpoint format:

* ``<dir>/manifest.json`` — table names, schemas, constraints, versions;
* ``<dir>/<table>.npz``   — one compressed numpy archive per table with a
  values array and a validity array per column (VARCHAR values are stored
  as JSON inside the archive so no arbitrary code is ever deserialized).
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np

from repro.engine.batch import RecordBatch
from repro.engine.catalog import Catalog
from repro.engine.column import Column
from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Table
from repro.engine.types import VARCHAR, type_from_name
from repro.errors import EngineError

__all__ = [
    "checkpoint_catalog",
    "restore_catalog",
    "read_checkpoint_metadata",
    "write_table_file",
    "read_table_file",
]

_MANIFEST = "manifest.json"
_FORMAT_VERSION = 1


def checkpoint_catalog(
    catalog: Catalog, directory: str, metadata: dict[str, Any] | None = None
) -> None:
    """Write every table in ``catalog`` to ``directory`` atomically enough
    for tests: manifest last, so a torn checkpoint is detectable.

    ``metadata`` is persisted verbatim inside the manifest (so it shares
    the manifest's torn-checkpoint guarantee): a higher layer's catalog —
    the graph-view registry — rides along with the tables it describes.
    """
    os.makedirs(directory, exist_ok=True)
    manifest: dict[str, Any] = {"format": _FORMAT_VERSION, "tables": {}}
    if metadata is not None:
        manifest["metadata"] = metadata
    for name in catalog.table_names():
        table = catalog.get(name)
        write_table_file(table, os.path.join(directory, f"{name}.npz"))
        manifest["tables"][name] = {
            "columns": [
                {
                    "name": c.name,
                    "type": c.dtype.name,
                    "nullable": c.nullable,
                }
                for c in table.schema
            ],
            "primary_key": table.primary_key,
            "version": table.version,
            "rows": table.num_rows,
        }
    with open(os.path.join(directory, _MANIFEST), "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)


def _table_arrays(table: Table) -> list[np.ndarray]:
    """A table's checkpoint payload: ``[values, valid]`` per schema column
    in schema order (VARCHAR values as JSON bytes — never pickled)."""
    arrays: list[np.ndarray] = []
    for coldef, column in zip(table.schema, table.data().columns):
        if coldef.dtype is VARCHAR:
            payload = json.dumps(column.to_list())
            arrays.append(np.frombuffer(payload.encode("utf-8"), dtype=np.uint8))
        else:
            arrays.append(column.values)
        arrays.append(column.valid)
    return arrays


def write_table_file(table: Table, path: str, compress: bool = True) -> None:
    """Write one table's data to a checkpoint table file: a values +
    validity array per column, VARCHAR as JSON bytes.

    ``compress=True`` (engine catalog checkpoints) writes a
    ``np.savez_compressed`` archive.  ``compress=False`` trades disk for
    speed — used by the run-recovery layer, whose per-superstep
    checkpoints sit on the hot loop: the same arrays are streamed as a
    raw ``.npy`` stack into one file, skipping the zipfile layer
    entirely.  :func:`read_table_file` dispatches on the file magic, so
    both variants read back transparently.
    """
    if compress:
        arrays = _table_arrays(table)
        named = {
            f"col{i // 2}_{'values' if i % 2 == 0 else 'valid'}": array
            for i, array in enumerate(arrays)
        }
        np.savez_compressed(path, **named)
        return
    with open(path, "wb") as fh:
        for array in _table_arrays(table):
            np.lib.format.write_array(
                fh, np.ascontiguousarray(array), allow_pickle=False
            )


def read_checkpoint_metadata(directory: str) -> dict[str, Any]:
    """The ``metadata`` dict a checkpoint was written with (``{}`` when
    none was supplied).

    Raises:
        EngineError: missing or unsupported manifest.
    """
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise EngineError(f"no checkpoint manifest at {manifest_path!r}")
    with open(manifest_path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    if manifest.get("format") != _FORMAT_VERSION:
        raise EngineError(f"unsupported checkpoint format: {manifest.get('format')!r}")
    return manifest.get("metadata", {})


def restore_catalog(directory: str) -> Catalog:
    """Rebuild a catalog from a checkpoint directory.

    Raises:
        EngineError: missing/garbled manifest or table files.
    """
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise EngineError(f"no checkpoint manifest at {manifest_path!r}")
    with open(manifest_path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    if manifest.get("format") != _FORMAT_VERSION:
        raise EngineError(f"unsupported checkpoint format: {manifest.get('format')!r}")
    catalog = Catalog()
    for name, meta in manifest["tables"].items():
        schema = Schema(
            ColumnDef(c["name"], type_from_name(c["type"]), nullable=c["nullable"])
            for c in meta["columns"]
        )
        batch = read_table_file(os.path.join(directory, f"{name}.npz"), schema, meta["rows"])
        table = Table(name, schema, batch, primary_key=meta["primary_key"])
        table.restore(table.data(), meta["version"])
        catalog.register(table)
    return catalog


def _decode_column(coldef: ColumnDef, raw: np.ndarray, valid: np.ndarray) -> Column:
    if coldef.dtype is VARCHAR:
        items = json.loads(raw.tobytes().decode("utf-8"))
        values = np.empty(len(items), dtype=object)
        values[:] = ["" if item is None else item for item in items]
        return Column(VARCHAR, values, valid)
    return Column(coldef.dtype, raw.astype(coldef.dtype.numpy_dtype), valid)


def read_table_file(path: str, schema: Schema, expected_rows: int) -> RecordBatch:
    """Read a :func:`write_table_file` file back into a batch — either
    variant (zip archive or raw ``.npy`` stack), told apart by magic.

    Raises:
        EngineError: missing or truncated file, or row-count mismatch vs
            the manifest.
    """
    if not os.path.exists(path):
        raise EngineError(f"checkpoint table file missing: {path!r}")
    with open(path, "rb") as probe:
        magic = probe.read(4)
    columns: list[Column] = []
    if magic.startswith(b"PK"):  # zip archive (compressed variant)
        with np.load(path, allow_pickle=False) as archive:
            for i, coldef in enumerate(schema):
                columns.append(
                    _decode_column(
                        coldef, archive[f"col{i}_values"], archive[f"col{i}_valid"]
                    )
                )
            batch = RecordBatch(schema, columns)
    else:  # raw .npy stack (uncompressed variant)
        try:
            with open(path, "rb") as fh:
                for coldef in schema:
                    raw = np.lib.format.read_array(fh, allow_pickle=False)
                    valid = np.lib.format.read_array(fh, allow_pickle=False)
                    columns.append(_decode_column(coldef, raw, valid))
        except ValueError as exc:
            raise EngineError(f"checkpoint table file truncated: {path!r} ({exc})") from exc
        batch = RecordBatch(schema, columns)
    if batch.num_rows != expected_rows:
        raise EngineError(
            f"checkpoint row-count mismatch for {path!r}: "
            f"manifest says {expected_rows}, file has {batch.num_rows}"
        )
    return batch
