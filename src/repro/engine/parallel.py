"""Worker-execution strategies for transform UDFs and shard tasks.

The paper runs "as many workers as the number of cores".  In CPython the
GIL caps what threads buy us for pure-Python vertex programs, so the engine
offers three strategies with identical semantics:

* :func:`serial_executor` — deterministic, zero overhead; the default.
* :class:`ThreadExecutor` (via :func:`make_thread_executor`) — a real
  thread pool; useful when tasks release the GIL (numpy-heavy compute)
  and for exercising the parallel code path in the workers ablation
  benchmark.
* :class:`ProcessExecutor` — persistent **spawned worker processes**, the
  strategy that actually escapes the GIL.  Task functions and items must
  be picklable; heavyweight per-run state crosses the boundary exactly
  once through :meth:`ProcessExecutor.install` (the sharded data plane
  installs a bootstrap that attaches shared-memory segments and unpickles
  the program closure at pool start, not per superstep).

All three receive ``(fn, tasks)`` where tasks are ``(item, index)`` pairs —
record-batch partitions for transform UDFs, resident shards for the
sharded data plane — and must return outputs in task order so results
stay deterministic regardless of scheduling.

Pool-backed executors hold one pool for their whole lifetime: the
coordinator creates one per run and reuses it every superstep
(constructing and tearing down a pool per superstep costs thread/process
spawns on the hot loop).  Both are context managers; exiting (or
``close()``) shuts the pool down.

Failure contract (shared): the earliest failed task's exception
propagates with a note naming the task; when sibling tasks also failed,
a second note enumerates them so secondary failures never vanish
silently.  A raised ``BaseException`` that is not an ``Exception`` (e.g.
an injected kill) takes priority — it must tear through the caller's
``except Exception`` handlers no matter which task slot it came from.

The seam is deliberately scheduler-shaped: ``install()`` broadcasts
immutable run context, ``__call__`` submits small picklable task
descriptors and gathers ordered results — exactly the shape a Ray-style
distributed scheduler needs (``install`` ≙ put-object/actor-init,
``__call__`` ≙ task submission + gather), so a remote backend can slot
in behind the same ``PartitionExecutor`` contract later.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import traceback
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import Any, Callable, Sequence

__all__ = [
    "serial_executor",
    "make_thread_executor",
    "PartitionExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "WorkerProcessDied",
    "RemoteTaskError",
]

PartitionExecutor = Callable[
    [Callable[[Any, int], Any], Sequence[tuple[Any, int]]],
    list[Any],
]


def serial_executor(
    fn: Callable[[Any, int], Any],
    tasks: Sequence[tuple[Any, int]],
) -> list[Any]:
    """Run tasks one after another on the calling thread."""
    return [fn(item, index) for item, index in tasks]


def _raise_with_task_context(
    failures: list[tuple[int, BaseException]], primary_note: str
) -> None:
    """Raise the primary failure from ``failures`` (task-index ordered).

    The primary is the earliest non-``Exception`` failure if any (kills
    must win), else the earliest failure.  Sibling failures are attached
    as an ``add_note`` so they never vanish silently.
    """
    index, exc = next(
        ((i, e) for i, e in failures if not isinstance(e, Exception)),
        failures[0],
    )
    exc.add_note(f"raised by parallel task {index}{primary_note}")
    siblings = [(i, e) for i, e in failures if e is not exc]
    if siblings:
        details = "; ".join(
            f"task {i}: {type(e).__name__}: {e}" for i, e in siblings
        )
        exc.add_note(f"{len(siblings)} sibling task(s) also failed: {details}")
    raise exc


class ThreadExecutor:
    """A pool-backed executor that preserves task order in its output.

    The pool is created lazily on the first multi-task call and then
    reused for every subsequent call until :meth:`close` — one thread
    spawn per run, not per superstep.

    Args:
        n_threads: pool size; values below 1 are clamped to 1.
    """

    __slots__ = ("n_threads", "_pool", "_lock")

    def __init__(self, n_threads: int) -> None:
        self.n_threads = max(1, int(n_threads))
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def __call__(
        self,
        fn: Callable[[Any, int], Any],
        tasks: Sequence[tuple[Any, int]],
    ) -> list[Any]:
        if len(tasks) <= 1 or self.n_threads == 1:
            return serial_executor(fn, tasks)
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item, index) for item, index in tasks]
        # Short-circuit on the first failure instead of draining every
        # result: cancel still-queued siblings (running ones finish — a
        # thread cannot be preempted), settle the rest, then gather
        # *every* settled failure so none is lost.
        done, _ = wait(futures, return_when=FIRST_EXCEPTION)
        if not any(
            future in done
            and not future.cancelled()
            and future.exception() is not None
            for future in futures
        ):
            return [future.result() for future in futures]
        for future in futures:
            future.cancel()
        wait(futures)
        failures = [
            (index, future.exception())
            for (_, index), future in zip(tasks, futures)
            if not future.cancelled() and future.exception() is not None
        ]
        _raise_with_task_context(failures, " (siblings cancelled)")

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.n_threads)
            return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent and exception-safe: the pool
        reference is detached under the lock first, so a concurrent or
        repeated close sees ``None`` and returns; queued work is
        cancelled rather than drained).  Later calls fall back to a fresh
        lazily-created pool, so a closed executor stays usable."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ThreadExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def make_thread_executor(n_threads: int) -> ThreadExecutor:
    """A persistent pool-backed executor (see :class:`ThreadExecutor`)."""
    return ThreadExecutor(n_threads)


# ---------------------------------------------------------------------------
# Process-parallel execution
# ---------------------------------------------------------------------------
class WorkerProcessDied(RuntimeError):
    """A worker process exited without delivering its task results.

    Classified transient: a dead worker is the single-machine analogue of
    a lost cluster node, which the Giraph contract answers with rollback
    and replay (the pool respawns and re-installs its bootstrap on the
    next call).
    """

    transient = True


class RemoteTaskError(RuntimeError):
    """A worker-process task failure whose original exception could not
    be pickled back; carries its ``repr`` and remote traceback instead."""

    def __init__(self, message: str, transient: bool = False) -> None:
        super().__init__(message)
        self.transient = transient


def _encode_exception(exc: BaseException) -> tuple:
    """Pickle-safe wire form of a task failure: the exception itself when
    it round-trips, else enough context to rebuild a faithful proxy.
    ``__notes__`` and the remote traceback travel out-of-band (pickling
    drops notes)."""
    notes = list(getattr(exc, "__notes__", ()))
    tb = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    try:
        payload = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        pickle.loads(payload)  # some exceptions pickle but fail to rebuild
        return ("pickled", payload, notes, tb)
    except Exception:
        transient = bool(getattr(exc, "transient", False))
        return ("repr", f"{type(exc).__name__}: {exc}", notes, tb, transient)


def _decode_exception(encoded: tuple) -> BaseException:
    """Rebuild a task failure shipped by :func:`_encode_exception`."""
    if encoded[0] == "pickled":
        _, payload, notes, tb = encoded
        exc = pickle.loads(payload)
    else:
        _, message, notes, tb, transient = encoded
        exc = RemoteTaskError(message, transient=transient)
    for note in notes:
        exc.add_note(note)
    exc.add_note(f"remote traceback:\n{tb.rstrip()}")
    return exc


def _process_worker_main(conn) -> None:
    """Worker-process loop: serve ``setup``/``run``/``exit`` requests.

    Module-level so it is importable in a *spawned* child (no fork
    state).  Every reply is pickled over the pipe; task exceptions —
    including ``BaseException`` kills — are captured and shipped rather
    than crashing the worker, so one poisoned task cannot take the pool
    down with it.
    """
    try:
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "exit":
                return
            if tag == "setup":
                try:
                    setup = pickle.loads(message[1])
                    setup()
                    conn.send(("ok", None))
                except BaseException as exc:  # noqa: BLE001 — shipped, not dropped
                    conn.send(("err", _encode_exception(exc)))
            elif tag == "run":
                fn_payload, batch = message[1], message[2]
                try:
                    fn = pickle.loads(fn_payload)
                except BaseException as exc:  # noqa: BLE001
                    encoded = _encode_exception(exc)
                    for _ in batch:
                        conn.send(("err", encoded))
                    continue
                for item, index in batch:
                    try:
                        conn.send(("ok", fn(item, index)))
                    except BaseException as exc:  # noqa: BLE001
                        conn.send(("err", _encode_exception(exc)))
    except (EOFError, OSError, KeyboardInterrupt):
        return  # parent went away (or interactive interrupt): just exit
    finally:
        conn.close()


class ProcessExecutor:
    """Persistent spawned worker processes behind the executor seam.

    Workers are spawned lazily on the first multi-task call and reused
    for every subsequent call until :meth:`close` — one process spawn
    (plus one interpreter import) per run, not per superstep.  Tasks are
    round-robin assigned in task order and each worker streams its
    results back in submission order, so output order is deterministic.

    ``fn`` and task items must be picklable for multi-task calls; ``fn``
    is pickled once per call (keep it a small descriptor — heavyweight
    run state belongs in :meth:`install`).  Single-task calls and
    single-process pools run serially in-process, where nothing needs to
    pickle.

    Args:
        n_processes: pool size; values below 1 are clamped to 1.
        mp_context: multiprocessing start method (default ``"spawn"`` —
            fork would drag arbitrary parent state into the workers and
            is unavailable on several platforms).
    """

    __slots__ = ("n_processes", "_ctx", "_workers", "_setup", "_lock")

    def __init__(self, n_processes: int, mp_context: str = "spawn") -> None:
        self.n_processes = max(1, int(n_processes))
        self._ctx = multiprocessing.get_context(mp_context)
        self._workers: list[tuple[Any, Any]] = []  # (Process, Connection)
        self._setup: bytes | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def install(self, setup: Callable[[], Any]) -> None:
        """Broadcast a zero-arg bootstrap to every worker, pickled ONCE.

        ``setup()`` runs in each worker before any subsequent task (and
        again in any worker respawned later); the sharded data plane uses
        it to unpickle the program closure, attach shared-memory
        segments, and arm the fault plan.  Raises whatever the bootstrap
        raised in a worker.

        Installing also spawns the pool eagerly when it does not exist
        yet: interpreter start-up and imports are run *setup* cost, and
        paying them here keeps them off the first superstep's clock.
        """
        payload = pickle.dumps(setup, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._setup = payload
            workers = list(self._workers)
        if not workers and self.n_processes > 1:
            self._ensure_workers()  # spawns and replays the stored setup
            return
        for _, conn in workers:
            conn.send(("setup", payload))
        for _, conn in workers:
            self._expect_ack(conn)

    def __call__(
        self,
        fn: Callable[[Any, int], Any],
        tasks: Sequence[tuple[Any, int]],
    ) -> list[Any]:
        if len(tasks) <= 1 or self.n_processes == 1:
            return serial_executor(fn, tasks)
        workers = self._ensure_workers()
        fn_payload = pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL)
        batches: list[list[tuple[Any, int]]] = [[] for _ in workers]
        positions: list[list[int]] = [[] for _ in workers]
        for pos, (item, index) in enumerate(tasks):
            w = pos % len(workers)
            batches[w].append((item, index))
            positions[w].append(pos)
        for (_, conn), batch in zip(workers, batches):
            if batch:
                conn.send(("run", fn_payload, batch))

        results: list[Any] = [None] * len(tasks)
        failures: list[tuple[int, BaseException]] = []
        lost_worker = False
        for (proc, conn), batch, slots in zip(workers, batches, positions):
            alive = True
            for slot_no, (pos, (_, index)) in enumerate(zip(slots, batch)):
                if alive:
                    try:
                        tag, payload = conn.recv()
                    except (EOFError, OSError):
                        alive = False
                        lost_worker = True
                if not alive:
                    code = proc.exitcode
                    failures.append(
                        (index, WorkerProcessDied(
                            f"worker process pid={proc.pid} died "
                            f"(exitcode={code}) before finishing its tasks"
                        ))
                    )
                    continue
                if tag == "ok":
                    results[pos] = payload
                else:
                    failures.append((index, _decode_exception(payload)))
        if lost_worker:
            # The pool's pipes are no longer trustworthy; tear it down.
            # The next call respawns and replays the stored bootstrap.
            self.close()
        if failures:
            failures.sort(key=lambda pair: pair[0])
            _raise_with_task_context(failures, " (in a worker process)")
        return results

    # ------------------------------------------------------------------
    def _ensure_workers(self) -> list[tuple[Any, Any]]:
        with self._lock:
            if self._workers:
                return list(self._workers)
            setup = self._setup
            spawned: list[tuple[Any, Any]] = []
            for _ in range(self.n_processes):
                parent_conn, child_conn = self._ctx.Pipe(duplex=True)
                proc = self._ctx.Process(
                    target=_process_worker_main,
                    args=(child_conn,),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                spawned.append((proc, parent_conn))
            self._workers = spawned
        if setup is not None:
            for _, conn in spawned:
                conn.send(("setup", setup))
            for _, conn in spawned:
                self._expect_ack(conn)
        return list(spawned)

    @staticmethod
    def _expect_ack(conn) -> None:
        tag, payload = conn.recv()
        if tag == "err":
            raise _decode_exception(payload)

    def close(self) -> None:
        """Shut the pool down (idempotent; a closed executor stays
        usable — the next multi-task call spawns a fresh pool and
        re-installs the last bootstrap)."""
        with self._lock:
            workers, self._workers = self._workers, []
        for _, conn in workers:
            try:
                conn.send(("exit",))
            except (OSError, ValueError):
                pass
        for proc, conn in workers:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
            conn.close()

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort: don't leak children
        try:
            self.close()
        except Exception:
            pass


def recommended_process_count() -> int:
    """Usable CPU count for sizing a process pool (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1
