"""Worker-execution strategies for transform UDFs and shard tasks.

The paper runs "as many workers as the number of cores".  In CPython the
GIL caps what threads buy us for pure-Python vertex programs, so the engine
offers two strategies with identical semantics:

* :func:`serial_executor` — deterministic, zero overhead; the default.
* :class:`ThreadExecutor` (via :func:`make_thread_executor`) — a real
  thread pool; useful when tasks release the GIL (numpy-heavy compute)
  and for exercising the parallel code path in the workers ablation
  benchmark.

Both receive ``(fn, tasks)`` where tasks are ``(item, index)`` pairs —
record-batch partitions for transform UDFs, resident shards for the
sharded data plane — and must return outputs in task order so results
stay deterministic regardless of scheduling.

:class:`ThreadExecutor` holds one pool for its whole lifetime: the
coordinator creates it once per run and reuses it every superstep
(constructing and tearing down a ``ThreadPoolExecutor`` per superstep
costs thread spawns on the hot loop).  It is a context manager; exiting
(or :meth:`~ThreadExecutor.close`) shuts the pool down.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import Any, Callable, Sequence

__all__ = ["serial_executor", "make_thread_executor", "PartitionExecutor", "ThreadExecutor"]

PartitionExecutor = Callable[
    [Callable[[Any, int], Any], Sequence[tuple[Any, int]]],
    list[Any],
]


def serial_executor(
    fn: Callable[[Any, int], Any],
    tasks: Sequence[tuple[Any, int]],
) -> list[Any]:
    """Run tasks one after another on the calling thread."""
    return [fn(item, index) for item, index in tasks]


class ThreadExecutor:
    """A pool-backed executor that preserves task order in its output.

    The pool is created lazily on the first multi-task call and then
    reused for every subsequent call until :meth:`close` — one thread
    spawn per run, not per superstep.

    Args:
        n_threads: pool size; values below 1 are clamped to 1.
    """

    __slots__ = ("n_threads", "_pool", "_lock")

    def __init__(self, n_threads: int) -> None:
        self.n_threads = max(1, int(n_threads))
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def __call__(
        self,
        fn: Callable[[Any, int], Any],
        tasks: Sequence[tuple[Any, int]],
    ) -> list[Any]:
        if len(tasks) <= 1 or self.n_threads == 1:
            return serial_executor(fn, tasks)
        pool = self._ensure_pool()
        futures = [pool.submit(fn, item, index) for item, index in tasks]
        # Short-circuit on the first failure instead of draining every
        # result: cancel still-queued siblings (running ones finish — a
        # thread cannot be preempted), settle the rest, and propagate the
        # earliest failed task's exception with its task context attached.
        done, _ = wait(futures, return_when=FIRST_EXCEPTION)
        failed = next(
            (
                (future, index)
                for (_, index), future in zip(tasks, futures)
                if future in done
                and not future.cancelled()
                and future.exception() is not None
            ),
            None,
        )
        if failed is None:
            return [future.result() for future in futures]
        for future in futures:
            future.cancel()
        wait(futures)
        future, index = failed
        exc = future.exception()
        exc.add_note(f"raised by parallel task {index} (siblings cancelled)")
        raise exc

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.n_threads)
            return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent and exception-safe: the pool
        reference is detached under the lock first, so a concurrent or
        repeated close sees ``None`` and returns; queued work is
        cancelled rather than drained).  Later calls fall back to a fresh
        lazily-created pool, so a closed executor stays usable."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ThreadExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def make_thread_executor(n_threads: int) -> ThreadExecutor:
    """A persistent pool-backed executor (see :class:`ThreadExecutor`)."""
    return ThreadExecutor(n_threads)
