"""Worker-execution strategies for transform UDFs.

The paper runs "as many workers as the number of cores".  In CPython the
GIL caps what threads buy us for pure-Python vertex programs, so the engine
offers two strategies with identical semantics:

* :func:`serial_executor` — deterministic, zero overhead; the default.
* :func:`make_thread_executor` — a real thread pool; useful when vertex
  programs release the GIL (numpy-heavy compute) and for exercising the
  parallel code path in the workers ablation benchmark.

Both receive ``(fn, tasks)`` where tasks are ``(batch, partition_index)``
pairs, and must return outputs in task order so results stay deterministic
regardless of scheduling.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.engine.batch import RecordBatch

__all__ = ["serial_executor", "make_thread_executor", "PartitionExecutor"]

PartitionExecutor = Callable[
    [Callable[[RecordBatch, int], RecordBatch], Sequence[tuple[RecordBatch, int]]],
    list[RecordBatch],
]


def serial_executor(
    fn: Callable[[RecordBatch, int], RecordBatch],
    tasks: Sequence[tuple[RecordBatch, int]],
) -> list[RecordBatch]:
    """Run partitions one after another on the calling thread."""
    return [fn(batch, index) for batch, index in tasks]


def make_thread_executor(n_threads: int) -> PartitionExecutor:
    """A pool-backed executor that preserves task order in its output.

    Args:
        n_threads: pool size; values below 1 are clamped to 1.
    """
    n_threads = max(1, int(n_threads))

    def execute(
        fn: Callable[[RecordBatch, int], RecordBatch],
        tasks: Sequence[tuple[RecordBatch, int]],
    ) -> list[RecordBatch]:
        if len(tasks) <= 1 or n_threads == 1:
            return serial_executor(fn, tasks)
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            futures = [pool.submit(fn, batch, index) for batch, index in tasks]
            return [future.result() for future in futures]

    return execute
