"""Planner: statement AST -> physical operator tree.

Responsibilities:

* FROM-clause planning with equi-key extraction for hash joins (non-equi
  inner joins fall back to cross join + filter);
* two-phase aggregation — aggregate calls and group keys are computed by
  an :class:`~repro.engine.operators.AggregateOp` under generated names,
  and the SELECT/HAVING/ORDER BY expressions are rewritten to reference
  them;
* ``*`` expansion, alias binding, ORDER BY resolution against both output
  aliases and hidden pre-projection expressions;
* set operations (UNION / UNION ALL).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.engine.batch import RecordBatch
from repro.engine.catalog import Catalog
from repro.engine.column import Column
from repro.engine.expressions import (
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    Star,
    expression_name,
)
from repro.engine.functions import FunctionRegistry
from repro.engine.operators import (
    AggregateOp,
    AggregateSpec,
    AliasOp,
    BatchSourceOp,
    CrossJoinOp,
    DistinctOp,
    FilterOp,
    HashJoinOp,
    LimitOp,
    Operator,
    ProjectOp,
    SortOp,
    TableScanOp,
    UnionAllOp,
)
from repro.engine.schema import ColumnDef, Schema
from repro.engine.sql.ast import (
    DerivedTable,
    Join,
    NamedTable,
    OrderItem,
    SelectItem,
    SelectLike,
    SelectStatement,
    SetOperation,
    TableRef,
)
from repro.engine.types import INTEGER
from repro.errors import CatalogError, PlanError

__all__ = ["Planner"]


def _split_conjuncts(expr: Expression | None) -> list[Expression]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _conjoin(conjuncts: Sequence[Expression]) -> Expression | None:
    """Rebuild a predicate from conjuncts (None when empty)."""
    result: Expression | None = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("AND", result, conjunct)
    return result


def _column_refs(expr: Expression) -> list[ColumnRef]:
    """Every ColumnRef in the tree (pre-order)."""
    refs: list[ColumnRef] = []
    if isinstance(expr, ColumnRef):
        refs.append(expr)
    for child in expr.children():
        refs.extend(_column_refs(child))
    return refs


def _refs_resolvable(expr: Expression, schema: Schema) -> bool:
    """True if the expression references at least one column and every
    reference resolves in ``schema``."""
    refs = _column_refs(expr)
    if not refs:
        return False
    return all(schema.has_column(ref.name, ref.qualifier) for ref in refs)


def _rewrite(expr: Expression, mapping: dict[Expression, Expression]) -> Expression:
    """Replace subtrees (structural equality) per ``mapping``, bottom-out on
    exact matches first so ``SUM(x)`` is replaced before ``x`` is visited."""
    replacement = mapping.get(expr)
    if replacement is not None:
        return replacement
    if isinstance(expr, CaseExpr):
        return CaseExpr(
            whens=tuple(
                (_rewrite(c, mapping), _rewrite(r, mapping)) for c, r in expr.whens
            ),
            default=None if expr.default is None else _rewrite(expr.default, mapping),
            operand=None if expr.operand is None else _rewrite(expr.operand, mapping),
        )
    updates: dict[str, object] = {}
    for field in dataclasses.fields(expr):
        value = getattr(expr, field.name)
        if isinstance(value, Expression):
            updates[field.name] = _rewrite(value, mapping)
        elif isinstance(value, tuple) and value and isinstance(value[0], Expression):
            updates[field.name] = tuple(_rewrite(item, mapping) for item in value)
    if not updates:
        return expr
    return dataclasses.replace(expr, **updates)


class Planner:
    """Plans statements against one catalog + function registry."""

    def __init__(
        self, catalog: Catalog, registry: FunctionRegistry, pushdown: bool = True
    ) -> None:
        self.catalog = catalog
        self.registry = registry
        #: When True, WHERE conjuncts are pushed beneath joins / unions /
        #: projections toward the scans.  The rewrite is row-identical —
        #: see :meth:`_apply_where`.
        self.pushdown = pushdown

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def plan_select(self, stmt: SelectLike) -> Operator:
        """Plan a SELECT block or a set-operation chain."""
        if isinstance(stmt, SetOperation):
            return self._plan_set_operation(stmt)
        return self._plan_select_core(stmt)

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def _plan_set_operation(self, stmt: SetOperation) -> Operator:
        left = self.plan_select(stmt.left)
        right = self.plan_select(stmt.right)
        plan: Operator = UnionAllOp([left, right])
        if stmt.op == "union":
            plan = DistinctOp(plan)
        if stmt.order_by:
            plan = self._sort_on_output(plan, stmt.order_by)
        if stmt.limit is not None or stmt.offset:
            plan = LimitOp(plan, stmt.limit, stmt.offset)
        return plan

    def _sort_on_output(self, plan: Operator, order_by: tuple[OrderItem, ...]) -> Operator:
        keys: list[Expression] = []
        ascending: list[bool] = []
        for item in order_by:
            keys.append(self._resolve_output_key(item.expr, plan.schema))
            ascending.append(item.ascending)
        return SortOp(plan, keys, ascending, self.registry)

    def _resolve_output_key(self, expr: Expression, schema: Schema) -> Expression:
        if isinstance(expr, Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(schema):
                raise PlanError(f"ORDER BY position {position} out of range")
            coldef = schema[position - 1]
            return ColumnRef(coldef.name, coldef.qualifier)
        return expr

    # ------------------------------------------------------------------
    # Core SELECT
    # ------------------------------------------------------------------
    def _plan_select_core(self, stmt: SelectStatement) -> Operator:
        source = self._plan_from(stmt.from_clause)
        if stmt.where is not None:
            source = self._apply_where(source, stmt.where)

        items = self._expand_stars(stmt.items, source.schema)
        visible_names = _uniquified(
            [item.alias or expression_name(item.expr) for item in items]
        )
        visible_quals = self._output_qualifiers(items, visible_names)
        visible_exprs = [item.expr for item in items]
        having = stmt.having

        aggregate_names = self.registry.aggregate_names
        order_exprs = [item.expr for item in stmt.order_by]
        group_by = self._resolve_group_aliases(stmt.group_by, items, source.schema)
        has_aggs = any(
            self._find_aggregates(e, aggregate_names)
            for e in (*visible_exprs, *( [having] if having is not None else [] ), *order_exprs)
        )
        if group_by or has_aggs:
            source, mapping = self._plan_aggregation(
                source, group_by, visible_exprs, having, order_exprs, aggregate_names
            )
            visible_exprs = [
                self._validated_rewrite(e, mapping, "SELECT") for e in visible_exprs
            ]
            if having is not None:
                having = self._validated_rewrite(having, mapping, "HAVING")
            order_exprs = [_rewrite(e, mapping) for e in order_exprs]

        if having is not None:
            source = FilterOp(source, having, self.registry)

        # ORDER BY: prefer output aliases, fall back to hidden pre-projection
        # expressions computed alongside the visible ones.
        hidden_exprs: list[Expression] = []
        hidden_names: list[str] = []
        sort_keys: list[Expression] = []
        for item, rewritten in zip(stmt.order_by, order_exprs):
            key = self._resolve_output_key(item.expr, self._output_schema_preview(
                source, visible_exprs, visible_names, visible_quals))
            if isinstance(key, ColumnRef) and self._matches_output(key, visible_names, visible_quals):
                sort_keys.append(key)
                continue
            name = f"__s{len(hidden_exprs)}"
            hidden_exprs.append(rewritten)
            hidden_names.append(name)
            sort_keys.append(ColumnRef(name))

        if hidden_exprs and stmt.distinct:
            raise PlanError("ORDER BY with DISTINCT must reference selected columns")

        plan: Operator = ProjectOp(
            source,
            visible_exprs + hidden_exprs,
            visible_names + hidden_names,
            self.registry,
            qualifiers=visible_quals + [None] * len(hidden_names),
        )
        if stmt.distinct:
            plan = DistinctOp(plan)
        if stmt.order_by:
            ascending = [item.ascending for item in stmt.order_by]
            plan = SortOp(plan, sort_keys, ascending, self.registry)
        if hidden_exprs:
            plan = plan_select_columns(plan, list(range(len(visible_names))))
        if stmt.limit is not None or stmt.offset:
            plan = LimitOp(plan, stmt.limit, stmt.offset)
        return plan

    def _output_schema_preview(
        self,
        source: Operator,
        exprs: list[Expression],
        names: list[str],
        quals: list[str | None],
    ) -> Schema:
        from repro.engine.expressions import infer_type

        return Schema(
            ColumnDef(name, infer_type(expr, source.schema, self.registry), qualifier=qual)
            for expr, name, qual in zip(exprs, names, quals)
        )

    @staticmethod
    def _matches_output(ref: ColumnRef, names: list[str], quals: list[str | None]) -> bool:
        hits = [
            i
            for i, (name, qual) in enumerate(zip(names, quals))
            if name == ref.name and (ref.qualifier is None or ref.qualifier == qual)
        ]
        return len(hits) == 1

    @staticmethod
    def _output_qualifiers(items: list[SelectItem], names: list[str]) -> list[str | None]:
        """Keep source qualifiers only where bare names would collide."""
        quals = [
            item.expr.qualifier if isinstance(item.expr, ColumnRef) and item.alias is None else None
            for item in items
        ]
        keep: list[str | None] = []
        for i, name in enumerate(names):
            collides = any(other == name for j, other in enumerate(names) if j != i)
            keep.append(quals[i] if collides else None)
        return keep

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _plan_from(self, ref: TableRef | None) -> Operator:
        if ref is None:
            dummy = RecordBatch(
                Schema([ColumnDef("__dummy", INTEGER)]),
                [Column.from_values(INTEGER, [0])],
            )
            return BatchSourceOp(dummy)
        return self._plan_table_ref(ref)

    def _plan_table_ref(self, ref: TableRef) -> Operator:
        if isinstance(ref, NamedTable):
            table = self.catalog.get(ref.name)
            return TableScanOp(table, ref.binding)
        if isinstance(ref, DerivedTable):
            return AliasOp(self.plan_select(ref.select), ref.alias)
        if isinstance(ref, Join):
            return self._plan_join(ref)
        raise PlanError(f"unsupported table reference: {ref!r}")  # pragma: no cover

    def _plan_join(self, ref: Join) -> Operator:
        left = self._plan_table_ref(ref.left)
        right = self._plan_table_ref(ref.right)
        if ref.kind == "cross":
            return CrossJoinOp(left, right)
        if ref.condition is None:
            raise PlanError(f"{ref.kind.upper()} JOIN requires an ON condition")
        left_keys: list[Expression] = []
        right_keys: list[Expression] = []
        residual: list[Expression] = []
        for conjunct in _split_conjuncts(ref.condition):
            pair = self._equi_key_pair(conjunct, left.schema, right.schema)
            if pair is not None:
                left_keys.append(pair[0])
                right_keys.append(pair[1])
            else:
                residual.append(conjunct)
        if left_keys:
            return HashJoinOp(
                left, right, left_keys, right_keys, ref.kind,
                _conjoin(residual), self.registry,
            )
        if ref.kind == "inner":
            return FilterOp(CrossJoinOp(left, right), ref.condition, self.registry)
        raise PlanError("LEFT JOIN requires at least one equality condition")

    @staticmethod
    def _equi_key_pair(
        conjunct: Expression, left_schema: Schema, right_schema: Schema
    ) -> tuple[Expression, Expression] | None:
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            return None
        a, b = conjunct.left, conjunct.right
        if _refs_resolvable(a, left_schema) and _refs_resolvable(b, right_schema):
            return a, b
        if _refs_resolvable(b, left_schema) and _refs_resolvable(a, right_schema):
            return b, a
        return None

    # ------------------------------------------------------------------
    # Predicate pushdown
    # ------------------------------------------------------------------
    def _apply_where(self, source: Operator, where: Expression) -> Operator:
        """Attach the WHERE clause, pushing conjuncts toward the scans when
        :attr:`pushdown` is enabled.

        The rewrite is row-identical, not just multiset-identical: every
        operator a conjunct crosses is row-wise (filter, project, alias) or
        preserves the relative order of surviving rows (hash and cross
        joins emit pairs in left-major order with right indices increasing,
        UNION ALL concatenates children in order, DISTINCT keeps first
        occurrences of rows that are bit-identical to their duplicates), so
        pushed plans return bit-identical batches to unpushed ones.
        """
        if not self.pushdown:
            return FilterOp(source, where, self.registry)
        source, refused = self._sink_conjuncts(source, _split_conjuncts(where))
        residual = _conjoin(refused)
        if residual is not None:
            source = FilterOp(source, residual, self.registry)
        return source

    def _sink_conjuncts(
        self, op: Operator, conjuncts: list[Expression]
    ) -> tuple[Operator, list[Expression]]:
        """Sink ``conjuncts`` as deep into ``op`` as the safety rules allow.

        Returns ``(new_op, refused)`` where refused conjuncts were applied
        nowhere inside ``op`` and must be filtered above it.  Rules:

        * scans / batch sources absorb any conjunct they can resolve;
        * filters and DISTINCT are transparent (row predicates commute);
        * joins route single-side conjuncts into that side — except the
          right side of a LEFT JOIN (a filter there would turn NULL-padded
          rows into drops) and conjuncts resolvable on *both* sides (the
          unpushed plan raises an ambiguity error; keep that behavior);
        * UNION ALL copies a conjunct into every child with column refs
          rewritten positionally (set operations match by position);
        * aliases strip the alias qualifier and recurse into the child;
        * projections substitute output expressions into the conjunct
          (expression evaluation is total — errors mask to NULL — so
          evaluating a predicate on pre-filter rows is safe);
        * aggregates / sorts / limits / unknown operators absorb nothing.
        """
        if not conjuncts:
            return op, []
        if isinstance(op, (TableScanOp, BatchSourceOp)):
            take: list[Expression] = []
            refused: list[Expression] = []
            for conjunct in conjuncts:
                bucket = take if _refs_resolvable(conjunct, op.schema) else refused
                bucket.append(conjunct)
            predicate = _conjoin(take)
            if predicate is not None:
                op = FilterOp(op, predicate, self.registry)
            return op, refused
        if isinstance(op, FilterOp):
            child, refused = self._sink_conjuncts(op.child, conjuncts)
            return FilterOp(child, op.predicate, self.registry), refused
        if isinstance(op, DistinctOp):
            child, refused = self._sink_conjuncts(op.child, conjuncts)
            return DistinctOp(child), refused
        if isinstance(op, (HashJoinOp, CrossJoinOp)):
            return self._sink_into_join(op, conjuncts)
        if isinstance(op, UnionAllOp):
            return self._sink_into_union(op, conjuncts)
        if isinstance(op, AliasOp):
            return self._sink_into_alias(op, conjuncts)
        if isinstance(op, ProjectOp):
            return self._sink_into_project(op, conjuncts)
        return op, list(conjuncts)

    def _absorb(self, op: Operator, conjuncts: list[Expression]) -> Operator:
        """Sink into ``op``; whatever comes back refused is filtered right
        above it (callers guarantee each conjunct resolves in ``op.schema``)."""
        op, refused = self._sink_conjuncts(op, conjuncts)
        residual = _conjoin(refused)
        if residual is not None:
            op = FilterOp(op, residual, self.registry)
        return op

    def _sink_into_join(
        self, op: Operator, conjuncts: list[Expression]
    ) -> tuple[Operator, list[Expression]]:
        left, right = op.children()
        protect_right = isinstance(op, HashJoinOp) and op.kind == "left"
        left_take: list[Expression] = []
        right_take: list[Expression] = []
        refused: list[Expression] = []
        for conjunct in conjuncts:
            on_left = _refs_resolvable(conjunct, left.schema)
            on_right = _refs_resolvable(conjunct, right.schema)
            if on_left and not on_right:
                left_take.append(conjunct)
            elif on_right and not on_left and not protect_right:
                right_take.append(conjunct)
            else:
                refused.append(conjunct)
        if not left_take and not right_take:
            return op, refused
        new_left = self._absorb(left, left_take)
        new_right = self._absorb(right, right_take)
        if isinstance(op, HashJoinOp):
            rebuilt: Operator = HashJoinOp(
                new_left, new_right, op.left_keys, op.right_keys,
                op.kind, op.residual, self.registry,
            )
        else:
            rebuilt = CrossJoinOp(new_left, new_right)
        return rebuilt, refused

    def _sink_into_union(
        self, op: UnionAllOp, conjuncts: list[Expression]
    ) -> tuple[Operator, list[Expression]]:
        children = list(op.children())
        refused: list[Expression] = []
        per_child: list[list[Expression]] = [[] for _ in children]
        for conjunct in conjuncts:
            rewrites = self._union_rewrites(conjunct, op.schema, children)
            if rewrites is None:
                refused.append(conjunct)
            else:
                for bucket, rewritten in zip(per_child, rewrites):
                    bucket.append(rewritten)
        if all(not bucket for bucket in per_child):
            return op, refused
        new_children = [
            self._absorb(child, bucket)
            for child, bucket in zip(children, per_child)
        ]
        return UnionAllOp(new_children), refused

    def _union_rewrites(
        self, conjunct: Expression, schema: Schema, children: list[Operator]
    ) -> list[Expression] | None:
        """Positional per-child rewrites of a union-level conjunct, or None
        if any ref fails to resolve uniquely in the union or any child."""
        positions = self._ref_positions(conjunct, schema)
        if positions is None:
            return None
        out: list[Expression] = []
        for child in children:
            mapping: dict[Expression, Expression] = {
                ref: ColumnRef(child.schema[pos].name, child.schema[pos].qualifier)
                for ref, pos in positions.items()
            }
            rewritten = _rewrite(conjunct, mapping)
            if not _refs_resolvable(rewritten, child.schema):
                return None
            out.append(rewritten)
        return out

    def _sink_into_alias(
        self, op: AliasOp, conjuncts: list[Expression]
    ) -> tuple[Operator, list[Expression]]:
        refused: list[Expression] = []
        pushed: list[Expression] = []
        for conjunct in conjuncts:
            positions = self._ref_positions(conjunct, op.schema)
            if positions is None:
                refused.append(conjunct)
                continue
            mapping: dict[Expression, Expression] = {
                ref: ColumnRef(op.child.schema[pos].name, op.child.schema[pos].qualifier)
                for ref, pos in positions.items()
            }
            rewritten = _rewrite(conjunct, mapping)
            if _refs_resolvable(rewritten, op.child.schema):
                pushed.append(rewritten)
            else:
                refused.append(conjunct)
        if not pushed:
            return op, refused
        return AliasOp(self._absorb(op.child, pushed), op.alias), refused

    def _sink_into_project(
        self, op: ProjectOp, conjuncts: list[Expression]
    ) -> tuple[Operator, list[Expression]]:
        refused: list[Expression] = []
        pushed: list[Expression] = []
        for conjunct in conjuncts:
            positions = self._ref_positions(conjunct, op.schema)
            if positions is None:
                refused.append(conjunct)
                continue
            mapping = {ref: op.exprs[pos] for ref, pos in positions.items()}
            rewritten = _rewrite(conjunct, mapping)
            if _refs_resolvable(rewritten, op.child.schema):
                pushed.append(rewritten)
            else:
                refused.append(conjunct)
        if not pushed:
            return op, refused
        child = self._absorb(op.child, pushed)
        return (
            ProjectOp(
                child,
                op.exprs,
                [coldef.name for coldef in op.schema],
                self.registry,
                qualifiers=[coldef.qualifier for coldef in op.schema],
            ),
            refused,
        )

    @staticmethod
    def _ref_positions(
        conjunct: Expression, schema: Schema
    ) -> dict[ColumnRef, int] | None:
        """Map each column ref in ``conjunct`` to its unique position in
        ``schema``, or None when refless / unresolvable / ambiguous."""
        refs = _column_refs(conjunct)
        if not refs:
            return None
        try:
            return {ref: schema.index_of(ref.name, ref.qualifier) for ref in refs}
        except CatalogError:
            return None

    # ------------------------------------------------------------------
    # Star expansion
    # ------------------------------------------------------------------
    def _expand_stars(
        self, items: tuple[SelectItem, ...], schema: Schema
    ) -> list[SelectItem]:
        out: list[SelectItem] = []
        for item in items:
            if isinstance(item.expr, Star):
                matched = False
                for coldef in schema:
                    if coldef.name == "__dummy":
                        continue
                    if item.expr.qualifier is not None and coldef.qualifier != item.expr.qualifier:
                        continue
                    matched = True
                    out.append(SelectItem(ColumnRef(coldef.name, coldef.qualifier)))
                if item.expr.qualifier is not None and not matched:
                    raise PlanError(f"unknown table alias in {item.expr.qualifier}.*")
            else:
                out.append(item)
        if not out:
            raise PlanError("SELECT list is empty after * expansion")
        return out

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _resolve_group_aliases(
        self,
        group_by: tuple[Expression, ...],
        items: list[SelectItem],
        schema: Schema,
    ) -> list[Expression]:
        """GROUP BY may name a SELECT alias or an output position."""
        alias_map = {
            item.alias: item.expr for item in items if item.alias is not None
        }
        resolved: list[Expression] = []
        for expr in group_by:
            if isinstance(expr, Literal) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(items):
                    raise PlanError(f"GROUP BY position {position} out of range")
                resolved.append(items[position - 1].expr)
                continue
            if (
                isinstance(expr, ColumnRef)
                and expr.qualifier is None
                and expr.name in alias_map
                and not schema.has_column(expr.name)
            ):
                resolved.append(alias_map[expr.name])
                continue
            resolved.append(expr)
        return resolved

    def _find_aggregates(
        self, expr: Expression, aggregate_names: frozenset[str]
    ) -> list[FunctionCall]:
        found: list[FunctionCall] = []
        if isinstance(expr, FunctionCall) and expr.name.upper() in aggregate_names:
            for arg in expr.args:
                if self._find_aggregates(arg, aggregate_names):
                    raise PlanError("nested aggregate calls are not allowed")
            found.append(expr)
            return found
        for child in expr.children():
            found.extend(self._find_aggregates(child, aggregate_names))
        return found

    def _plan_aggregation(
        self,
        source: Operator,
        group_by: list[Expression],
        visible_exprs: list[Expression],
        having: Expression | None,
        order_exprs: list[Expression],
        aggregate_names: frozenset[str],
    ) -> tuple[Operator, dict[Expression, Expression]]:
        agg_calls: list[FunctionCall] = []
        seen: set[FunctionCall] = set()
        roots = list(visible_exprs) + ([having] if having is not None else []) + order_exprs
        for root in roots:
            for call in self._find_aggregates(root, aggregate_names):
                if call not in seen:
                    seen.add(call)
                    agg_calls.append(call)

        specs: list[AggregateSpec] = []
        names: list[str] = []
        mapping: dict[Expression, Expression] = {}
        for i, expr in enumerate(group_by):
            names.append(f"__g{i}")
            mapping[expr] = ColumnRef(f"__g{i}")
        for i, call in enumerate(agg_calls):
            func = call.name.upper()
            if func == "COUNT" and len(call.args) == 1 and isinstance(call.args[0], Star):
                specs.append(AggregateSpec("COUNT", None, distinct=False))
            else:
                if len(call.args) != 1:
                    raise PlanError(f"{func} expects exactly one argument")
                specs.append(AggregateSpec(func, call.args[0], call.distinct))
            name = f"__a{i}"
            names.append(name)
            mapping[call] = ColumnRef(name)
        plan = AggregateOp(source, group_by, specs, names, self.registry)
        return plan, mapping

    def _validated_rewrite(
        self, expr: Expression, mapping: dict[Expression, Expression], clause: str
    ) -> Expression:
        rewritten = _rewrite(expr, mapping)
        for ref in _column_refs(rewritten):
            if not ref.name.startswith("__"):
                raise PlanError(
                    f"column {ref.display!r} in {clause} must appear in GROUP BY "
                    "or be inside an aggregate"
                )
        return rewritten


def _uniquified(names: list[str]) -> list[str]:
    """Disambiguate duplicate output names (``expr`` -> ``expr_1``, ...);
    SQL allows duplicate result names but the engine's schemas do not, so
    repeats get a positional suffix, as DuckDB does."""
    seen: dict[str, int] = {}
    out: list[str] = []
    for name in names:
        count = seen.get(name, 0)
        seen[name] = count + 1
        out.append(name if count == 0 else f"{name}_{count}")
    return out


def plan_select_columns(plan: Operator, indices: list[int]) -> Operator:
    """Project a plan down to the columns at ``indices`` (by position)."""

    class _SelectColumns(Operator):
        def __init__(self, child: Operator) -> None:
            self.child = child
            self.schema = child.schema.project(indices)

        def children(self) -> tuple[Operator, ...]:
            return (self.child,)

        def describe(self) -> str:
            return f"SelectColumns({indices})"

        def execute(self) -> RecordBatch:
            return self.child.execute().select(indices)

    return _SelectColumns(plan)
