"""Statement execution: DML, DDL, and query dispatch.

The :class:`StatementExecutor` turns parsed statements into effects against
a catalog (via the planner for queries) and wraps query output in
:class:`Result`, the row-oriented boundary object handed back to callers.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.engine.batch import RecordBatch
from repro.engine.catalog import Catalog
from repro.engine.column import Column
from repro.engine.expressions import ColumnRef, Expression, evaluate, infer_type
from repro.engine.functions import FunctionRegistry
from repro.engine.planner import Planner
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import FLOAT, INTEGER, DataType, type_from_name
from repro.errors import (
    CatalogError,
    ExecutionError,
    PlanError,
    TypeMismatchError,
)
from repro.engine.sql.ast import (
    CreateGraphViewStatement,
    CreateTableAsStatement,
    CreateTableStatement,
    DeleteStatement,
    DropGraphViewStatement,
    DropTableStatement,
    InsertStatement,
    RefreshGraphViewStatement,
    SelectStatement,
    SetOperation,
    Statement,
    TruncateStatement,
    UpdateStatement,
)

__all__ = ["Result", "StatementExecutor"]


class Result:
    """Output of one statement.

    For queries, carries the result batch; for DML/DDL, carries the
    affected-row count.  Iterating a Result yields row tuples.
    """

    def __init__(self, batch: RecordBatch | None = None, row_count: int = 0) -> None:
        self._batch = batch
        self.row_count = batch.num_rows if batch is not None else row_count

    # -- query-side accessors ------------------------------------------
    @property
    def is_query(self) -> bool:
        """True when the statement produced rows."""
        return self._batch is not None

    @property
    def batch(self) -> RecordBatch:
        """The underlying record batch (queries only)."""
        if self._batch is None:
            raise ExecutionError("statement did not produce rows")
        return self._batch

    @property
    def schema(self) -> Schema:
        """Result schema (queries only)."""
        return self.batch.schema

    def rows(self) -> list[tuple[Any, ...]]:
        """All rows as Python tuples (``None`` for NULL)."""
        return self.batch.to_rows()

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows())

    def __len__(self) -> int:
        return self.row_count

    def column(self, name: str) -> list[Any]:
        """One output column as a Python list."""
        return self.batch.column(name).to_list()

    def scalar(self) -> Any:
        """The single value of a 1x1 result.

        Raises:
            ExecutionError: when the result is not exactly one row/column.
        """
        if self.batch.num_rows != 1 or len(self.batch.schema) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got "
                f"{self.batch.num_rows}x{len(self.batch.schema)}"
            )
        return self.batch.columns[0].value_at(0)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as dicts keyed by bare column name."""
        names = self.schema.names()
        return [dict(zip(names, row)) for row in self.rows()]


class StatementExecutor:
    """Executes parsed statements against a catalog."""

    def __init__(
        self, catalog: Catalog, registry: FunctionRegistry, pushdown: bool = True
    ) -> None:
        self.catalog = catalog
        self.registry = registry
        self.planner = Planner(catalog, registry, pushdown=pushdown)

    def run(self, stmt: Statement) -> Result:
        """Execute one statement and return its :class:`Result`."""
        if isinstance(stmt, (SelectStatement, SetOperation)):
            plan = self.planner.plan_select(stmt)
            return Result(batch=plan.execute())
        if isinstance(stmt, InsertStatement):
            return self._run_insert(stmt)
        if isinstance(stmt, UpdateStatement):
            return self._run_update(stmt)
        if isinstance(stmt, DeleteStatement):
            return self._run_delete(stmt)
        if isinstance(stmt, CreateTableStatement):
            return self._run_create(stmt)
        if isinstance(stmt, CreateTableAsStatement):
            return self._run_ctas(stmt)
        if isinstance(stmt, DropTableStatement):
            self.catalog.drop(stmt.name, if_exists=stmt.if_exists)
            return Result(row_count=0)
        if isinstance(stmt, TruncateStatement):
            table = self.catalog.get(stmt.name)
            removed = table.num_rows
            table.truncate()
            return Result(row_count=removed)
        if isinstance(
            stmt,
            (
                CreateGraphViewStatement,
                DropGraphViewStatement,
                RefreshGraphViewStatement,
            ),
        ):
            raise PlanError(
                "graph view statements need the Vertexica layer; construct "
                "a Vertexica over this database and run the statement "
                "through it"
            )
        raise PlanError(f"unsupported statement: {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # INSERT
    # ------------------------------------------------------------------
    def _run_insert(self, stmt: InsertStatement) -> Result:
        table = self.catalog.get(stmt.table)
        target_columns = list(stmt.columns) if stmt.columns is not None else table.schema.names()
        for name in target_columns:
            if name not in table.schema.names():
                raise CatalogError(f"unknown column {name!r} in INSERT into {stmt.table!r}")
        if stmt.select is not None:
            plan = self.planner.plan_select(stmt.select)
            incoming = plan.execute()
        else:
            incoming = self._values_batch(stmt.rows, table.schema, target_columns)
        if len(incoming.schema) != len(target_columns):
            raise TypeMismatchError(
                f"INSERT provides {len(incoming.schema)} columns for "
                f"{len(target_columns)} targets"
            )
        aligned = self._align_to_table(incoming, table.schema, target_columns)
        count = table.insert_batch(aligned)
        return Result(row_count=count)

    def _values_batch(
        self,
        rows: tuple[tuple[Expression, ...], ...],
        table_schema: Schema,
        target_columns: list[str],
    ) -> RecordBatch:
        """Evaluate VALUES expressions (constants / functions of constants)."""
        dummy = RecordBatch(
            Schema([ColumnDef("__dummy", INTEGER)]),
            [Column.from_values(INTEGER, [0])],
        )
        value_rows: list[list[Any]] = []
        for row in rows:
            if len(row) != len(target_columns):
                raise TypeMismatchError(
                    f"VALUES row has {len(row)} entries, expected {len(target_columns)}"
                )
            value_rows.append([evaluate(e, dummy, self.registry).value_at(0) for e in row])
        schema = Schema(
            table_schema.column(name).with_qualifier(None) for name in target_columns
        )
        return RecordBatch.from_rows(schema, value_rows)

    def _align_to_table(
        self, incoming: RecordBatch, table_schema: Schema, target_columns: list[str]
    ) -> RecordBatch:
        """Reorder/pad an incoming batch to the table's full column list;
        unmentioned columns become NULL."""
        by_target = dict(zip(target_columns, incoming.columns))
        columns: list[Column] = []
        for coldef in table_schema:
            col = by_target.get(coldef.name)
            if col is None:
                columns.append(Column.constant(coldef.dtype, None, incoming.num_rows))
            else:
                columns.append(self._coerce_column(col, coldef.dtype, coldef.name))
        return RecordBatch(table_schema, columns)

    @staticmethod
    def _coerce_column(col: Column, dtype: DataType, name: str) -> Column:
        if col.dtype is dtype:
            return col
        if col.dtype is INTEGER and dtype is FLOAT:
            return col.cast(FLOAT)
        if not col.valid.any():  # all-NULL column can adopt any type
            return Column.constant(dtype, None, len(col))
        raise TypeMismatchError(
            f"cannot insert {col.dtype.name} into {dtype.name} column {name!r}"
        )

    # ------------------------------------------------------------------
    # UPDATE / DELETE
    # ------------------------------------------------------------------
    def _where_mask(self, table_batch: RecordBatch, where: Expression | None) -> np.ndarray:
        if where is None:
            return np.ones(table_batch.num_rows, dtype=bool)
        if infer_type(where, table_batch.schema, self.registry).name != "BOOLEAN":
            raise TypeMismatchError("WHERE predicate must be BOOLEAN")
        flags = evaluate(where, table_batch, self.registry)
        return flags.values.astype(bool) & flags.valid

    def _run_update(self, stmt: UpdateStatement) -> Result:
        table = self.catalog.get(stmt.table)
        batch = table.data()
        mask = self._where_mask(batch, stmt.where)
        assignments: dict[str, Any] = {}
        for name, expr in stmt.assignments:
            coldef = table.schema.column(name)
            expr_type = infer_type(expr, table.schema, self.registry)
            if expr_type is not coldef.dtype and not (
                expr_type is INTEGER and coldef.dtype is FLOAT
            ):
                # Allow the NULL literal (typeless) into any column.
                from repro.engine.expressions import Literal

                if not (isinstance(expr, Literal) and expr.value is None):
                    raise TypeMismatchError(
                        f"cannot assign {expr_type.name} to {coldef.dtype.name} "
                        f"column {name!r}"
                    )

            def build(current: RecordBatch, expr=expr, dtype=coldef.dtype) -> Column:
                col = evaluate(expr, current, self.registry)
                if col.dtype is not dtype:
                    if not col.valid.any():
                        return Column.constant(dtype, None, len(col))
                    col = col.cast(dtype)
                return col

            assignments[name] = build
        count = table.update_rows(mask, assignments)
        return Result(row_count=count)

    def _run_delete(self, stmt: DeleteStatement) -> Result:
        table = self.catalog.get(stmt.table)
        mask = self._where_mask(table.data(), stmt.where)
        return Result(row_count=table.delete_rows(mask))

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def _run_create(self, stmt: CreateTableStatement) -> Result:
        primary_key: str | None = None
        defs: list[ColumnDef] = []
        for spec in stmt.columns:
            if spec.primary_key:
                if primary_key is not None:
                    raise CatalogError("multiple PRIMARY KEY columns")
                primary_key = spec.name
            defs.append(
                ColumnDef(spec.name, type_from_name(spec.type_name), nullable=not spec.not_null)
            )
        self.catalog.create(
            stmt.name, Schema(defs), primary_key=primary_key, if_not_exists=stmt.if_not_exists
        )
        return Result(row_count=0)

    def _run_ctas(self, stmt: CreateTableAsStatement) -> Result:
        if stmt.name.lower() in self.catalog and stmt.if_not_exists:
            return Result(row_count=0)
        plan = self.planner.plan_select(stmt.select)
        batch = plan.execute()
        names = batch.schema.names()
        if len(set(names)) != len(names):
            raise CatalogError(
                "CREATE TABLE AS result has duplicate column names; alias them"
            )
        from repro.engine.table import Table

        table = Table(stmt.name.lower(), batch.schema.unqualified(), batch.with_schema(batch.schema.unqualified()))
        self.catalog.register(table, if_not_exists=stmt.if_not_exists)
        return Result(row_count=batch.num_rows)
