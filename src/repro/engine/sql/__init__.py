"""SQL front end: lexer, statement AST, and recursive-descent parser.

The dialect is the subset of SQL-92 (plus a few column-store conveniences)
that the paper's workloads need: SELECT with joins / GROUP BY / HAVING /
ORDER BY / LIMIT / UNION [ALL], derived tables, CASE, CAST, IN / BETWEEN /
LIKE / IS NULL, INSERT (VALUES and SELECT), UPDATE, DELETE, CREATE TABLE
[AS], DROP TABLE, and TRUNCATE.
"""

from repro.engine.sql.lexer import Lexer, Token, TokenKind, tokenize
from repro.engine.sql.parser import Parser, parse_statement, parse_statements

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "tokenize",
    "Parser",
    "parse_statement",
    "parse_statements",
]
