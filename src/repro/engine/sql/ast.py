"""Statement-level AST nodes produced by the SQL parser.

Expression-level nodes live in :mod:`repro.engine.expressions`; this module
holds the statement shapes (SELECT, INSERT, ...) plus table references.
All nodes are frozen dataclasses: parsing is pure, planning never mutates.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Union

from repro.engine.expressions import Expression

__all__ = [
    "Statement",
    "SelectItem",
    "TableRef",
    "NamedTable",
    "DerivedTable",
    "Join",
    "SelectStatement",
    "SetOperation",
    "InsertStatement",
    "UpdateStatement",
    "DeleteStatement",
    "ColumnSpec",
    "CreateTableStatement",
    "CreateTableAsStatement",
    "DropTableStatement",
    "TruncateStatement",
    "OrderItem",
    "NodeClause",
    "EdgeClause",
    "ConnectClause",
    "CreateGraphViewStatement",
    "DropGraphViewStatement",
    "RefreshGraphViewStatement",
    "referenced_tables",
]


@dataclass(frozen=True)
class Statement:
    """Base class for all statements."""


@dataclass(frozen=True)
class SelectItem:
    """One SELECT-list entry: an expression with an optional alias.

    ``*`` and ``alias.*`` arrive as a :class:`~repro.engine.expressions.Star`
    expression with no alias.
    """

    expr: Expression
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key with direction."""

    expr: Expression
    ascending: bool = True


@dataclass(frozen=True)
class TableRef:
    """Base class for FROM-clause items."""


@dataclass(frozen=True)
class NamedTable(TableRef):
    """A catalog table, optionally aliased: ``edge AS e``."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name this table is visible under in the enclosing scope."""
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTable(TableRef):
    """A parenthesized subquery in FROM: ``(SELECT ...) AS d``."""

    select: "SelectLike"
    alias: str


@dataclass(frozen=True)
class Join(TableRef):
    """A binary join; ``kind`` is ``"inner"``, ``"left"``, or ``"cross"``.

    CROSS joins carry no condition; the planner rejects a missing condition
    for the other kinds.
    """

    left: TableRef
    right: TableRef
    kind: str
    condition: Expression | None


@dataclass(frozen=True)
class SelectStatement(Statement):
    """A single SELECT block (no set operations)."""

    items: tuple[SelectItem, ...]
    from_clause: TableRef | None = None
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int = 0
    distinct: bool = False


@dataclass(frozen=True)
class SetOperation(Statement):
    """``left UNION [ALL] right``; chains left-associatively."""

    op: str  # "union" | "union_all"
    left: "SelectLike"
    right: "SelectLike"
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int = 0


SelectLike = Union[SelectStatement, SetOperation]


@dataclass(frozen=True)
class InsertStatement(Statement):
    """INSERT from VALUES rows or from a SELECT."""

    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple[Expression, ...], ...] = ()
    select: SelectLike | None = None


@dataclass(frozen=True)
class UpdateStatement(Statement):
    """``UPDATE t SET c = e, ... [WHERE p]``."""

    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Expression | None = None


@dataclass(frozen=True)
class DeleteStatement(Statement):
    """``DELETE FROM t [WHERE p]``."""

    table: str
    where: Expression | None = None


@dataclass(frozen=True)
class ColumnSpec(Statement):
    """One column in CREATE TABLE: name, type name, constraints."""

    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False


@dataclass(frozen=True)
class CreateTableStatement(Statement):
    """``CREATE TABLE [IF NOT EXISTS] t (col TYPE [NOT NULL] [PRIMARY KEY], ...)``."""

    name: str
    columns: tuple[ColumnSpec, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateTableAsStatement(Statement):
    """``CREATE TABLE [IF NOT EXISTS] t AS SELECT ...``."""

    name: str
    select: SelectLike
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropTableStatement(Statement):
    """``DROP TABLE [IF EXISTS] t``."""

    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class TruncateStatement(Statement):
    """``TRUNCATE [TABLE] t`` — delete all rows, keep the schema."""

    name: str


# ---------------------------------------------------------------------------
# Graph views (CREATE GRAPH VIEW ... AS NODES(...) EDGES(...))
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class NodeClause:
    """One NODES entry: ``table KEY id_col [WHERE expr]``."""

    table: str
    key: str
    where: Expression | None = None


@dataclass(frozen=True)
class EdgeClause:
    """One EDGES entry over an edge-per-row table:
    ``table SRC col DST col [WEIGHT expr] [WHERE expr] [UNDIRECTED]``."""

    table: str
    src: str
    dst: str
    weight: Expression | None = None
    where: Expression | None = None
    directed: bool = True


@dataclass(frozen=True)
class ConnectClause:
    """One join-derived EDGES entry (co-occurrence through a shared key):
    ``table CONNECT member_col VIA via_col [WEIGHT expr] [WHERE expr]``."""

    table: str
    member: str
    via: str
    weight: Expression | None = None
    where: Expression | None = None


@dataclass(frozen=True)
class CreateGraphViewStatement(Statement):
    """``CREATE [MATERIALIZED] GRAPH VIEW name AS NODES (...) EDGES (...)``.

    Executed by the Vertexica layer (registered as a statement handler on
    the database); the bare engine rejects it.
    """

    name: str
    nodes: tuple[NodeClause, ...]
    edges: tuple["EdgeClause | ConnectClause", ...]
    materialized: bool = False
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropGraphViewStatement(Statement):
    """``DROP GRAPH VIEW [IF EXISTS] name``."""

    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class RefreshGraphViewStatement(Statement):
    """``REFRESH GRAPH VIEW name [FULL | INCREMENTAL]``.

    ``mode`` is ``None`` (auto: incremental when deltas allow, else full),
    ``"full"``, or ``"incremental"`` — mirroring
    ``GraphViewHandle.refresh(incremental=...)``.  Executed by the
    Vertexica layer like the other graph-view statements.
    """

    name: str
    mode: str | None = None


def referenced_tables(statement: object) -> set[str]:
    """Every catalog table name a parsed statement reads or writes.

    Walks the statement tree generically (every AST and expression node
    is a frozen dataclass), collecting :class:`NamedTable` FROM items
    plus the target-table fields of DML/DDL nodes.  The serving tier
    uses this to pin exactly the tables a query depends on and to key
    its result cache by their versions.  Names come back lower-cased —
    the catalog's canonical spelling.
    """
    names: set[str] = set()
    _collect_tables(statement, names)
    return names


#: DML targets name their table via ``.table``; DDL targets via ``.name``.
_TABLE_FIELD_NODES = (InsertStatement, UpdateStatement, DeleteStatement)
_NAME_FIELD_NODES = (
    CreateTableStatement,
    CreateTableAsStatement,
    DropTableStatement,
    TruncateStatement,
)


def _collect_tables(node: object, names: set[str]) -> None:
    if isinstance(node, NamedTable):
        names.add(node.name.lower())
    elif isinstance(node, _TABLE_FIELD_NODES):
        names.add(node.table.lower())
    elif isinstance(node, _NAME_FIELD_NODES):
        names.add(node.name.lower())
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        for f in dataclasses.fields(node):
            _collect_tables(getattr(node, f.name), names)
    elif isinstance(node, (list, tuple)):
        for item in node:
            _collect_tables(item, names)
