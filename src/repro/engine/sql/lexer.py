"""SQL tokenizer.

Produces a flat token stream with positions so the parser can report
errors precisely.  Supports ``--`` line comments, ``/* */`` block comments,
single-quoted strings with ``''`` escaping, integer/float/scientific
numeric literals, and ``?`` parameter placeholders.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import SqlSyntaxError

__all__ = ["TokenKind", "Token", "Lexer", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
        "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "UNION", "ALL",
        "JOIN", "INNER", "LEFT", "OUTER", "CROSS", "ON", "AS",
        "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS", "NULL",
        "TRUE", "FALSE", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST",
        "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
        "CREATE", "TABLE", "DROP", "IF", "EXISTS", "PRIMARY", "KEY",
        "TRUNCATE",
    }
)

_MULTI_CHAR_OPS = ("<>", "!=", "<=", ">=", "||")
_SINGLE_CHAR_OPS = "+-*/%<>=(),.;?"


class TokenKind(Enum):
    """Lexical category of a token."""

    KEYWORD = auto()
    IDENT = auto()
    INTEGER = auto()
    FLOAT = auto()
    STRING = auto()
    OPERATOR = auto()
    PARAM = auto()
    EOF = auto()


@dataclass(frozen=True)
class Token:
    """One token: kind, normalized text, and source location."""

    kind: TokenKind
    text: str
    position: int
    line: int

    def matches(self, kind: TokenKind, text: str | None = None) -> bool:
        """True when kind (and, if given, text) match."""
        return self.kind is kind and (text is None or self.text == text)


class Lexer:
    """Single-pass tokenizer over SQL text."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.pos = 0
        self.line = 1

    def error(self, message: str) -> SqlSyntaxError:
        """Build a positioned syntax error."""
        return SqlSyntaxError(message, position=self.pos, line=self.line)

    def tokens(self) -> list[Token]:
        """Tokenize the whole input, ending with one EOF token."""
        out: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.sql):
                out.append(Token(TokenKind.EOF, "", self.pos, self.line))
                return out
            out.append(self._next_token())

    # ------------------------------------------------------------------
    def _skip_whitespace_and_comments(self) -> None:
        sql = self.sql
        while self.pos < len(sql):
            ch = sql[self.pos]
            if ch == "\n":
                self.line += 1
                self.pos += 1
            elif ch.isspace():
                self.pos += 1
            elif sql.startswith("--", self.pos):
                end = sql.find("\n", self.pos)
                self.pos = len(sql) if end == -1 else end
            elif sql.startswith("/*", self.pos):
                end = sql.find("*/", self.pos + 2)
                if end == -1:
                    raise self.error("unterminated block comment")
                self.line += sql.count("\n", self.pos, end)
                self.pos = end + 2
            else:
                return

    def _next_token(self) -> Token:
        sql = self.sql
        start, line = self.pos, self.line
        ch = sql[start]
        if ch == "'":
            return self._string(start, line)
        if ch.isdigit() or (ch == "." and start + 1 < len(sql) and sql[start + 1].isdigit()):
            return self._number(start, line)
        if ch.isalpha() or ch == "_":
            return self._word(start, line)
        if ch == '"':
            return self._quoted_identifier(start, line)
        for op in _MULTI_CHAR_OPS:
            if sql.startswith(op, start):
                self.pos += len(op)
                text = "<>" if op == "!=" else op
                return Token(TokenKind.OPERATOR, text, start, line)
        if ch == "?":
            self.pos += 1
            return Token(TokenKind.PARAM, "?", start, line)
        if ch in _SINGLE_CHAR_OPS:
            self.pos += 1
            return Token(TokenKind.OPERATOR, ch, start, line)
        raise self.error(f"unexpected character {ch!r}")

    def _string(self, start: int, line: int) -> Token:
        sql = self.sql
        i = start + 1
        pieces: list[str] = []
        while i < len(sql):
            if sql[i] == "'":
                if i + 1 < len(sql) and sql[i + 1] == "'":  # escaped quote
                    pieces.append("'")
                    i += 2
                    continue
                self.pos = i + 1
                return Token(TokenKind.STRING, "".join(pieces), start, line)
            if sql[i] == "\n":
                self.line += 1
            pieces.append(sql[i])
            i += 1
        self.pos = start
        raise self.error("unterminated string literal")

    def _number(self, start: int, line: int) -> Token:
        sql = self.sql
        i = start
        seen_dot = False
        seen_exp = False
        while i < len(sql):
            ch = sql[i]
            if ch.isdigit():
                i += 1
            elif ch == "." and not seen_dot and not seen_exp:
                seen_dot = True
                i += 1
            elif ch in "eE" and not seen_exp and i > start:
                nxt = i + 1
                if nxt < len(sql) and sql[nxt] in "+-":
                    nxt += 1
                if nxt < len(sql) and sql[nxt].isdigit():
                    seen_exp = True
                    i = nxt
                else:
                    break
            else:
                break
        text = sql[start:i]
        self.pos = i
        kind = TokenKind.FLOAT if (seen_dot or seen_exp) else TokenKind.INTEGER
        return Token(kind, text, start, line)

    def _word(self, start: int, line: int) -> Token:
        sql = self.sql
        i = start
        while i < len(sql) and (sql[i].isalnum() or sql[i] == "_"):
            i += 1
        text = sql[start:i]
        self.pos = i
        upper = text.upper()
        if upper in KEYWORDS:
            return Token(TokenKind.KEYWORD, upper, start, line)
        return Token(TokenKind.IDENT, text.lower(), start, line)

    def _quoted_identifier(self, start: int, line: int) -> Token:
        sql = self.sql
        end = sql.find('"', start + 1)
        if end == -1:
            raise self.error("unterminated quoted identifier")
        self.pos = end + 1
        return Token(TokenKind.IDENT, sql[start + 1 : end], start, line)


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` (convenience wrapper over :class:`Lexer`)."""
    return Lexer(sql).tokens()
