"""Recursive-descent SQL parser.

Parameters (``?``) are bound at parse time: the caller passes the Python
values and each placeholder becomes a :class:`Literal` in the AST, so the
planner never sees an unbound parameter.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache
from typing import Any, Sequence

from repro.engine.expressions import (
    Between,
    BinaryOp,
    CaseExpr,
    CastExpr,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LikeExpr,
    Literal,
    Star,
    UnaryOp,
)
from repro.engine.sql.ast import (
    ColumnSpec,
    ConnectClause,
    CreateGraphViewStatement,
    CreateTableAsStatement,
    CreateTableStatement,
    DeleteStatement,
    DerivedTable,
    DropGraphViewStatement,
    DropTableStatement,
    EdgeClause,
    InsertStatement,
    Join,
    NamedTable,
    NodeClause,
    OrderItem,
    RefreshGraphViewStatement,
    SelectItem,
    SelectLike,
    SelectStatement,
    SetOperation,
    Statement,
    TableRef,
    TruncateStatement,
    UpdateStatement,
)
from repro.engine.sql.lexer import Token, TokenKind, tokenize
from repro.errors import SqlSyntaxError

__all__ = ["Parser", "parse_statement", "parse_statements"]

_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


class Parser:
    """Parses one token stream into statements."""

    def __init__(self, tokens: list[Token], params: Sequence[Any] | None = None) -> None:
        self.tokens = tokens
        self.index = 0
        self.params = list(params) if params is not None else None
        self.param_cursor = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def error(self, message: str) -> SqlSyntaxError:
        token = self.current
        shown = token.text or "<end of input>"
        return SqlSyntaxError(
            f"{message} (near {shown!r})", position=token.position, line=token.line
        )

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def check_keyword(self, *words: str) -> bool:
        return self.current.kind is TokenKind.KEYWORD and self.current.text in words

    def accept_keyword(self, *words: str) -> bool:
        if self.check_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word}")

    def check_operator(self, *ops: str) -> bool:
        return self.current.kind is TokenKind.OPERATOR and self.current.text in ops

    def accept_operator(self, *ops: str) -> bool:
        if self.check_operator(*ops):
            self.advance()
            return True
        return False

    def expect_operator(self, op: str) -> None:
        if not self.accept_operator(op):
            raise self.error(f"expected {op!r}")

    def expect_identifier(self) -> str:
        if self.current.kind is not TokenKind.IDENT:
            raise self.error("expected identifier")
        return self.advance().text

    # Contextual words: identifiers with grammatical meaning only inside
    # graph-view clauses (SRC, DST, WEIGHT, ... stay usable as ordinary
    # column/table names everywhere else).
    def check_word(self, *words: str) -> bool:
        return self.current.kind is TokenKind.IDENT and self.current.text in words

    def accept_word(self, *words: str) -> bool:
        if self.check_word(*words):
            self.advance()
            return True
        return False

    def expect_word(self, word: str) -> None:
        if not self.accept_word(word):
            raise self.error(f"expected {word.upper()}")

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def parse_script(self) -> list[Statement]:
        """Parse zero or more ';'-separated statements until EOF."""
        statements: list[Statement] = []
        while True:
            while self.accept_operator(";"):
                pass
            if self.current.kind is TokenKind.EOF:
                return statements
            statements.append(self.parse_one())

    def parse_one(self) -> Statement:
        """Parse exactly one statement (trailing ';' consumed)."""
        if self.check_keyword("SELECT"):
            stmt: Statement = self.parse_select_like()
        elif self.check_keyword("INSERT"):
            stmt = self._parse_insert()
        elif self.check_keyword("UPDATE"):
            stmt = self._parse_update()
        elif self.check_keyword("DELETE"):
            stmt = self._parse_delete()
        elif self.check_keyword("CREATE"):
            stmt = self._parse_create()
        elif self.check_keyword("DROP"):
            stmt = self._parse_drop()
        elif self.check_keyword("TRUNCATE"):
            stmt = self._parse_truncate()
        elif self._starts_refresh_graph_view():
            stmt = self._parse_refresh_graph_view()
        else:
            raise self.error("expected a statement")
        self.accept_operator(";")
        return stmt

    # ------------------------------------------------------------------
    # SELECT and set operations
    # ------------------------------------------------------------------
    def parse_select_like(self) -> SelectLike:
        """A SELECT block possibly chained with UNION [ALL]; trailing
        ORDER BY / LIMIT bind to the whole set operation (standard SQL)."""
        left: SelectLike = self._parse_select_block()
        while self.check_keyword("UNION"):
            self.advance()
            op = "union_all" if self.accept_keyword("ALL") else "union"
            right = self._parse_select_block()
            left = SetOperation(op=op, left=left, right=right)
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit_offset()
        if order_by or limit is not None or offset:
            left = dataclasses.replace(
                left, order_by=order_by, limit=limit, offset=offset
            )
        return left

    def _parse_select_block(self) -> SelectStatement:
        """One SELECT ... HAVING block, *without* ORDER BY/LIMIT (those are
        parsed by the caller so they bind to whole union chains)."""
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = [self._parse_select_item()]
        while self.accept_operator(","):
            items.append(self._parse_select_item())
        from_clause: TableRef | None = None
        if self.accept_keyword("FROM"):
            from_clause = self._parse_table_ref()
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        group_by: tuple[Expression, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            keys = [self.parse_expression()]
            while self.accept_operator(","):
                keys.append(self.parse_expression())
            group_by = tuple(keys)
        having = self.parse_expression() if self.accept_keyword("HAVING") else None
        return SelectStatement(
            items=tuple(items),
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _parse_order_by(self) -> tuple[OrderItem, ...]:
        if not self.check_keyword("ORDER"):
            return ()
        self.advance()
        self.expect_keyword("BY")
        items = [self._parse_order_item()]
        while self.accept_operator(","):
            items.append(self._parse_order_item())
        return tuple(items)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expression()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr, ascending)

    def _parse_limit_offset(self) -> tuple[int | None, int]:
        limit: int | None = None
        offset = 0
        if self.accept_keyword("LIMIT"):
            limit = self._parse_nonnegative_int("LIMIT")
        if self.accept_keyword("OFFSET"):
            offset = self._parse_nonnegative_int("OFFSET")
        return limit, offset

    def _parse_nonnegative_int(self, clause: str) -> int:
        if self.current.kind is not TokenKind.INTEGER:
            raise self.error(f"{clause} expects an integer literal")
        return int(self.advance().text)

    def _parse_select_item(self) -> SelectItem:
        if self.check_operator("*"):
            self.advance()
            return SelectItem(Star())
        # alias.* needs two-token lookahead
        if (
            self.current.kind is TokenKind.IDENT
            and self.tokens[self.index + 1].matches(TokenKind.OPERATOR, ".")
            and self.tokens[self.index + 2].matches(TokenKind.OPERATOR, "*")
        ):
            qualifier = self.advance().text
            self.advance()
            self.advance()
            return SelectItem(Star(qualifier=qualifier))
        expr = self.parse_expression()
        alias: str | None = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self.current.kind is TokenKind.IDENT:
            alias = self.advance().text
        return SelectItem(expr, alias)

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _parse_table_ref(self) -> TableRef:
        left = self._parse_table_primary()
        while True:
            if self.accept_keyword("CROSS"):
                self.expect_keyword("JOIN")
                right = self._parse_table_primary()
                left = Join(left, right, "cross", None)
                continue
            kind: str | None = None
            if self.accept_keyword("INNER"):
                kind = "inner"
            elif self.accept_keyword("LEFT"):
                self.accept_keyword("OUTER")
                kind = "left"
            if kind is None and self.check_keyword("JOIN"):
                kind = "inner"
            if kind is None:
                if self.check_operator(","):
                    # Comma join == CROSS JOIN; WHERE supplies the predicate.
                    self.advance()
                    right = self._parse_table_primary()
                    left = Join(left, right, "cross", None)
                    continue
                return left
            self.expect_keyword("JOIN")
            right = self._parse_table_primary()
            self.expect_keyword("ON")
            condition = self.parse_expression()
            left = Join(left, right, kind, condition)

    def _parse_table_primary(self) -> TableRef:
        if self.accept_operator("("):
            select = self.parse_select_like()
            self.expect_operator(")")
            self.accept_keyword("AS")
            alias = self.expect_identifier()
            return DerivedTable(select, alias)
        name = self.expect_identifier()
        alias: str | None = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier()
        elif self.current.kind is TokenKind.IDENT:
            alias = self.advance().text
        return NamedTable(name, alias)

    # ------------------------------------------------------------------
    # Other statements
    # ------------------------------------------------------------------
    def _parse_insert(self) -> InsertStatement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier()
        columns: tuple[str, ...] | None = None
        if self.check_operator("("):
            # Distinguish a column list from INSERT INTO t (SELECT ...)
            if not self.tokens[self.index + 1].matches(TokenKind.KEYWORD, "SELECT"):
                self.advance()
                names = [self.expect_identifier()]
                while self.accept_operator(","):
                    names.append(self.expect_identifier())
                self.expect_operator(")")
                columns = tuple(names)
        if self.accept_keyword("VALUES"):
            rows = [self._parse_values_row()]
            while self.accept_operator(","):
                rows.append(self._parse_values_row())
            return InsertStatement(table=table, columns=columns, rows=tuple(rows))
        wrapped = self.accept_operator("(")
        select = self.parse_select_like()
        if wrapped:
            self.expect_operator(")")
        return InsertStatement(table=table, columns=columns, select=select)

    def _parse_values_row(self) -> tuple[Expression, ...]:
        self.expect_operator("(")
        values = [self.parse_expression()]
        while self.accept_operator(","):
            values.append(self.parse_expression())
        self.expect_operator(")")
        return tuple(values)

    def _parse_update(self) -> UpdateStatement:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier()
        self.expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self.accept_operator(","):
            assignments.append(self._parse_assignment())
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return UpdateStatement(table=table, assignments=tuple(assignments), where=where)

    def _parse_assignment(self) -> tuple[str, Expression]:
        name = self.expect_identifier()
        self.expect_operator("=")
        return name, self.parse_expression()

    def _parse_delete(self) -> DeleteStatement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier()
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return DeleteStatement(table=table, where=where)

    def _parse_create(self) -> Statement:
        self.expect_keyword("CREATE")
        # GRAPH/VIEW/MATERIALIZED are contextual: only the token right
        # after CREATE/DROP decides, so they stay valid table names.
        if self._starts_graph_view():
            return self._parse_create_graph_view()
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_identifier()
        if self.accept_keyword("AS"):
            select = self.parse_select_like()
            return CreateTableAsStatement(name=name, select=select, if_not_exists=if_not_exists)
        self.expect_operator("(")
        columns = [self._parse_column_spec()]
        while self.accept_operator(","):
            columns.append(self._parse_column_spec())
        self.expect_operator(")")
        return CreateTableStatement(name=name, columns=tuple(columns), if_not_exists=if_not_exists)

    def _parse_column_spec(self) -> ColumnSpec:
        name = self.expect_identifier()
        if self.current.kind is not TokenKind.IDENT:
            raise self.error("expected a type name")
        type_name = self.advance().text
        not_null = False
        primary_key = False
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                not_null = True
            elif self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                primary_key = True
                not_null = True
            else:
                break
        return ColumnSpec(name=name, type_name=type_name, not_null=not_null, primary_key=primary_key)

    def _parse_drop(self) -> Statement:
        self.expect_keyword("DROP")
        if self._starts_graph_view():
            self.expect_word("graph")
            self.expect_word("view")
            if_exists = False
            if self.accept_keyword("IF"):
                self.expect_keyword("EXISTS")
                if_exists = True
            return DropGraphViewStatement(name=self.expect_identifier(), if_exists=if_exists)
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return DropTableStatement(name=self.expect_identifier(), if_exists=if_exists)

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------
    def _starts_graph_view(self) -> bool:
        """Two-token lookahead after CREATE/DROP: ``GRAPH VIEW`` (or
        ``MATERIALIZED`` after CREATE, which only graph views accept)."""
        if self.check_word("materialized"):
            return True
        return (
            self.check_word("graph")
            and self.tokens[self.index + 1].matches(TokenKind.IDENT, "view")
        )

    def _parse_create_graph_view(self) -> CreateGraphViewStatement:
        """``CREATE [MATERIALIZED] GRAPH VIEW [IF NOT EXISTS] name AS
        NODES (node_clause, ...) EDGES (edge_clause, ...)``.

        Clause grammars (SRC/DST/WEIGHT/... are contextual words, so they
        remain legal column names in ordinary statements):

        * node clause: ``table KEY id_col [WHERE expr]``
        * edge clause: ``table SRC col DST col [WEIGHT expr] [WHERE expr]
          [UNDIRECTED]``
        * connect clause (join-derived co-occurrence edges):
          ``table CONNECT member_col VIA via_col [WEIGHT expr] [WHERE expr]``
        """
        materialized = self.accept_word("materialized")
        self.expect_word("graph")
        self.expect_word("view")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_identifier()
        self.expect_keyword("AS")
        self.expect_word("nodes")
        nodes = self._parse_clause_list(self._parse_node_clause)
        self.expect_word("edges")
        edges = self._parse_clause_list(self._parse_edge_clause)
        return CreateGraphViewStatement(
            name=name,
            nodes=nodes,
            edges=edges,
            materialized=materialized,
            if_not_exists=if_not_exists,
        )

    def _starts_refresh_graph_view(self) -> bool:
        """Three-token lookahead: ``REFRESH GRAPH VIEW`` — all contextual
        words, so REFRESH stays a legal identifier everywhere else."""
        return (
            self.check_word("refresh")
            and self.tokens[self.index + 1].matches(TokenKind.IDENT, "graph")
            and self.tokens[self.index + 2].matches(TokenKind.IDENT, "view")
        )

    def _parse_refresh_graph_view(self) -> RefreshGraphViewStatement:
        """``REFRESH GRAPH VIEW name [FULL | INCREMENTAL]``."""
        self.expect_word("refresh")
        self.expect_word("graph")
        self.expect_word("view")
        name = self.expect_identifier()
        mode: str | None = None
        if self.accept_word("full"):
            mode = "full"
        elif self.accept_word("incremental"):
            mode = "incremental"
        return RefreshGraphViewStatement(name=name, mode=mode)

    def _parse_clause_list(self, parse_clause) -> tuple:
        self.expect_operator("(")
        clauses = [parse_clause()]
        while self.accept_operator(","):
            clauses.append(parse_clause())
        self.expect_operator(")")
        return tuple(clauses)

    def _parse_node_clause(self) -> NodeClause:
        table = self.expect_identifier()
        self.expect_keyword("KEY")
        key = self.expect_identifier()
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return NodeClause(table=table, key=key, where=where)

    def _parse_edge_clause(self) -> "EdgeClause | ConnectClause":
        table = self.expect_identifier()
        if self.accept_word("connect"):
            member = self.expect_identifier()
            self.expect_word("via")
            via = self.expect_identifier()
            weight, where = self._parse_weight_where()
            return ConnectClause(
                table=table, member=member, via=via, weight=weight, where=where
            )
        self.expect_word("src")
        src = self.expect_identifier()
        self.expect_word("dst")
        dst = self.expect_identifier()
        weight, where = self._parse_weight_where()
        directed = not self.accept_word("undirected")
        return EdgeClause(
            table=table, src=src, dst=dst, weight=weight, where=where, directed=directed
        )

    def _parse_weight_where(self) -> tuple[Expression | None, Expression | None]:
        weight = self.parse_expression() if self.accept_word("weight") else None
        where = self.parse_expression() if self.accept_keyword("WHERE") else None
        return weight, where

    def _parse_truncate(self) -> TruncateStatement:
        self.expect_keyword("TRUNCATE")
        self.accept_keyword("TABLE")
        return TruncateStatement(name=self.expect_identifier())

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expression(self) -> Expression:
        """Entry point: lowest precedence is OR."""
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self.accept_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        if self.check_operator(*_COMPARISONS):
            op = self.advance().text
            return BinaryOp(op, left, self._parse_additive())
        negated = False
        if self.check_keyword("NOT"):
            nxt = self.tokens[self.index + 1]
            if nxt.kind is TokenKind.KEYWORD and nxt.text in ("IN", "BETWEEN", "LIKE"):
                self.advance()
                negated = True
        if self.accept_keyword("IS"):
            is_not = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNull(left, negated=is_not)
        if self.accept_keyword("IN"):
            self.expect_operator("(")
            items = [self.parse_expression()]
            while self.accept_operator(","):
                items.append(self.parse_expression())
            self.expect_operator(")")
            return InList(left, tuple(items), negated=negated)
        if self.accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self.expect_keyword("AND")
            high = self._parse_additive()
            return Between(left, low, high, negated=negated)
        if self.accept_keyword("LIKE"):
            return LikeExpr(left, self._parse_additive(), negated=negated)
        if negated:  # pragma: no cover - lookahead guarantees a match
            raise self.error("dangling NOT")
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self.check_operator("+", "-", "||"):
            op = self.advance().text
            left = BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while self.check_operator("*", "/", "%"):
            op = self.advance().text
            left = BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expression:
        if self.accept_operator("-"):
            operand = self._parse_unary()
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            return UnaryOp("-", operand)
        if self.accept_operator("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.current
        if token.kind is TokenKind.INTEGER:
            self.advance()
            return Literal(int(token.text))
        if token.kind is TokenKind.FLOAT:
            self.advance()
            return Literal(float(token.text))
        if token.kind is TokenKind.STRING:
            self.advance()
            return Literal(token.text)
        if token.kind is TokenKind.PARAM:
            self.advance()
            return self._bind_parameter()
        if token.kind is TokenKind.KEYWORD:
            if token.text == "NULL":
                self.advance()
                return Literal(None)
            if token.text == "TRUE":
                self.advance()
                return Literal(True)
            if token.text == "FALSE":
                self.advance()
                return Literal(False)
            if token.text == "CASE":
                return self._parse_case()
            if token.text == "CAST":
                return self._parse_cast()
            raise self.error("unexpected keyword in expression")
        if token.kind is TokenKind.OPERATOR and token.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect_operator(")")
            return expr
        if token.kind is TokenKind.IDENT:
            return self._parse_name_or_call()
        raise self.error("expected an expression")

    def _bind_parameter(self) -> Literal:
        if self.params is None:
            raise self.error("statement contains ? but no parameters were supplied")
        if self.param_cursor >= len(self.params):
            raise self.error("not enough parameters for ? placeholders")
        value = self.params[self.param_cursor]
        self.param_cursor += 1
        return Literal(value)

    def _parse_name_or_call(self) -> Expression:
        name = self.expect_identifier()
        if self.check_operator("("):
            self.advance()
            distinct = self.accept_keyword("DISTINCT")
            args: list[Expression] = []
            if self.check_operator("*"):
                self.advance()
                args.append(Star())
            elif not self.check_operator(")"):
                args.append(self.parse_expression())
                while self.accept_operator(","):
                    args.append(self.parse_expression())
            self.expect_operator(")")
            return FunctionCall(name=name, args=tuple(args), distinct=distinct)
        if self.accept_operator("."):
            column = self.expect_identifier()
            return ColumnRef(column, qualifier=name)
        return ColumnRef(name)

    def _parse_case(self) -> Expression:
        self.expect_keyword("CASE")
        operand: Expression | None = None
        if not self.check_keyword("WHEN"):
            operand = self.parse_expression()
        whens: list[tuple[Expression, Expression]] = []
        while self.accept_keyword("WHEN"):
            cond = self.parse_expression()
            self.expect_keyword("THEN")
            whens.append((cond, self.parse_expression()))
        if not whens:
            raise self.error("CASE requires at least one WHEN branch")
        default = self.parse_expression() if self.accept_keyword("ELSE") else None
        self.expect_keyword("END")
        return CaseExpr(whens=tuple(whens), default=default, operand=operand)

    def _parse_cast(self) -> Expression:
        self.expect_keyword("CAST")
        self.expect_operator("(")
        operand = self.parse_expression()
        self.expect_keyword("AS")
        if self.current.kind is not TokenKind.IDENT:
            raise self.error("expected a type name in CAST")
        type_name = self.advance().text
        self.expect_operator(")")
        return CastExpr(operand, type_name)

    def finish(self) -> None:
        """Assert every supplied parameter was consumed."""
        if self.params is not None and self.param_cursor != len(self.params):
            raise SqlSyntaxError(
                f"{len(self.params)} parameters supplied but only "
                f"{self.param_cursor} ? placeholders found"
            )


@lru_cache(maxsize=512)
def _cached_tokens(sql: str) -> list[Token]:
    """Memoized lexing — parameterized statements (e.g. the tuple-at-a-time
    UPDATE path) re-parse the same text with different params, and the
    Parser never mutates the token list, so sharing it is safe."""
    return tokenize(sql)


def parse_statement(sql: str, params: Sequence[Any] | None = None) -> Statement:
    """Parse exactly one statement; raises on trailing garbage."""
    parser = Parser(_cached_tokens(sql), params)
    statement = parser.parse_one()
    while parser.accept_operator(";"):
        pass
    if parser.current.kind is not TokenKind.EOF:
        raise parser.error("unexpected trailing input")
    parser.finish()
    return statement


def parse_statements(sql: str, params: Sequence[Any] | None = None) -> list[Statement]:
    """Parse a ';'-separated script into a statement list."""
    parser = Parser(tokenize(sql), params)
    statements = parser.parse_script()
    parser.finish()
    return statements
