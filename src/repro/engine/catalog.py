"""The catalog: name -> stored table mapping.

Names are case-insensitive (the lexer lower-cases identifiers, and the
programmatic API lower-cases on entry, so both paths agree).
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.errors import CatalogError

__all__ = ["Catalog"]


class Catalog:
    """A flat namespace of tables."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._tables))

    def table_names(self) -> list[str]:
        """Sorted table names."""
        return sorted(self._tables)

    def get(self, name: str) -> Table:
        """Look up a table.

        Raises:
            CatalogError: unknown table.
        """
        table = self._tables.get(name.lower())
        if table is None:
            raise CatalogError(f"unknown table: {name!r}")
        return table

    def create(
        self,
        name: str,
        schema: Schema,
        primary_key: str | None = None,
        if_not_exists: bool = False,
    ) -> Table:
        """Create an empty table.

        Raises:
            CatalogError: name already exists and ``if_not_exists`` is False.
        """
        key = name.lower()
        existing = self._tables.get(key)
        if existing is not None:
            if if_not_exists:
                return existing
            raise CatalogError(f"table already exists: {name!r}")
        table = Table(key, schema, primary_key=primary_key)
        self._tables[key] = table
        return table

    def register(self, table: Table, if_not_exists: bool = False) -> Table:
        """Register a fully-built table object (CTAS, checkpoint restore)."""
        key = table.name.lower()
        existing = self._tables.get(key)
        if existing is not None:
            if if_not_exists:
                return existing
            raise CatalogError(f"table already exists: {table.name!r}")
        self._tables[key] = table
        return table

    def drop(self, name: str, if_exists: bool = False) -> bool:
        """Drop a table; returns True if something was dropped.

        Raises:
            CatalogError: unknown table and ``if_exists`` is False.
        """
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return False
            raise CatalogError(f"unknown table: {name!r}")
        del self._tables[key]
        return True

    # -- transaction support -------------------------------------------
    def snapshot(self) -> dict[str, tuple["object", int]]:
        """Capture (batch, version) per table; batches are immutable so
        this is O(#tables)."""
        return {
            name: (table.data(), table.version) for name, table in self._tables.items()
        }

    def restore(self, snapshot: dict[str, tuple["object", int]]) -> None:
        """Roll the catalog back to a snapshot: tables created since are
        dropped, dropped tables are *not* resurrected (the engine snapshots
        the table objects too via :class:`Database` for full rollback)."""
        for name in list(self._tables):
            if name not in snapshot:
                del self._tables[name]
        for name, (batch, version) in snapshot.items():
            table = self._tables.get(name)
            if table is not None:
                table.restore(batch, version)  # type: ignore[arg-type]

    def tables_snapshot(self) -> dict[str, Table]:
        """Shallow copy of the name->Table mapping (for DROP rollback)."""
        return dict(self._tables)

    def restore_tables(self, tables: dict[str, Table]) -> None:
        """Restore the name->Table mapping captured by
        :meth:`tables_snapshot`."""
        self._tables = dict(tables)
