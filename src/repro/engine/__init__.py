"""``repro.engine`` — a from-scratch, in-memory, column-oriented RDBMS.

This package is the substrate substituting for HP Vertica in the
reproduction (see DESIGN.md §2): typed numpy-backed columns, a SQL
front end, vectorized physical operators, scalar and transform UDFs,
stored procedures, transactions, and checkpoint/recovery.

Public entry point: :class:`~repro.engine.database.Database`.
"""

from repro.engine.batch import RecordBatch
from repro.engine.column import Column
from repro.engine.database import Database, Result
from repro.engine.schema import ColumnDef, Schema
from repro.engine.table import Table
from repro.engine.types import BOOLEAN, FLOAT, INTEGER, VARCHAR, DataType

__all__ = [
    "Database",
    "Result",
    "RecordBatch",
    "Column",
    "Schema",
    "ColumnDef",
    "Table",
    "DataType",
    "INTEGER",
    "FLOAT",
    "VARCHAR",
    "BOOLEAN",
]
