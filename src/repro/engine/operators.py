"""Physical operators: vectorized, batch-at-a-time execution.

Every operator materializes its full result as a
:class:`~repro.engine.batch.RecordBatch` — the engine is an in-memory
column store, so operator-at-a-time execution over whole columns (the
MonetDB/Vertica style) is both the simplest and the fastest model in
Python: all heavy lifting happens inside numpy.

The join, aggregation, and sort algorithms are implemented with
factorize/searchsorted/reduceat patterns rather than per-row Python loops;
string columns fall back to per-group loops only where numpy cannot help.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.engine.batch import RecordBatch
from repro.engine.column import Column
from repro.engine.expressions import (
    Expression,
    Star,
    evaluate,
    infer_type,
)
from repro.engine.functions import FunctionRegistry
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import BOOLEAN, FLOAT, INTEGER, VARCHAR, DataType
from repro.errors import ExecutionError, PlanError, TypeMismatchError

__all__ = [
    "Operator",
    "TableScanOp",
    "BatchSourceOp",
    "AliasOp",
    "FilterOp",
    "ProjectOp",
    "HashJoinOp",
    "CrossJoinOp",
    "UnionAllOp",
    "AggregateSpec",
    "AggregateOp",
    "SortOp",
    "LimitOp",
    "DistinctOp",
    "TransformOp",
    "factorize_columns",
    "hash_bucket_order",
    "explain_tree",
    "analyze_tree",
]


# ---------------------------------------------------------------------------
# Shared vectorized helpers
# ---------------------------------------------------------------------------
def _column_codes(column: Column) -> np.ndarray:
    """Dense group codes for one column; NULLs form their own group."""
    n = len(column)
    codes = np.zeros(n, dtype=np.int64)
    mask = column.valid
    if mask.any():
        _, inverse = np.unique(column.values[mask], return_inverse=True)
        codes[mask] = inverse
    if not mask.all():
        codes[~mask] = codes[mask].max(initial=-1) + 1 if mask.any() else 0
    return codes


def factorize_columns(columns: Sequence[Column]) -> tuple[np.ndarray, int]:
    """Dense group codes over rows of one or more aligned columns.

    Returns ``(codes, n_groups)`` with ``codes`` in ``[0, n_groups)``.
    Codes are *not* in value order; they are compacted via ``np.unique``.
    NULLs compare equal to each other (SQL GROUP BY semantics).
    """
    if not columns:
        raise ExecutionError("factorize_columns needs at least one column")
    combined = _column_codes(columns[0])
    for column in columns[1:]:
        nxt = _column_codes(column)
        width = int(nxt.max(initial=0)) + 1
        combined = combined * width + nxt
        # Re-compact so the product never overflows across many columns.
        _, combined = np.unique(combined, return_inverse=True)
        combined = combined.astype(np.int64)
    uniques, codes = np.unique(combined, return_inverse=True)
    return codes.astype(np.int64), len(uniques)


def hash_bucket_order(
    bucket_ids: np.ndarray,
    n_buckets: int,
    sort_keys: Sequence[np.ndarray] = (),
) -> tuple[np.ndarray, np.ndarray]:
    """Stable row order grouping by bucket, plus per-bucket slice bounds.

    One lexsort keyed on ``(bucket, *sort_keys)`` replaces filtering the
    input once per bucket; because the sort is stable, rows within a
    bucket keep their relative input order (after the optional per-bucket
    sort keys).  This is the partitioning primitive shared by
    :class:`TransformOp` and the shard-resident data plane's message
    router.

    Returns:
        ``(order, bounds)`` — bucket ``b`` owns
        ``order[bounds[b]:bounds[b + 1]]``.
    """
    order = np.lexsort(tuple(reversed(tuple(sort_keys))) + (bucket_ids,))
    bounds = np.searchsorted(
        bucket_ids[order], np.arange(n_buckets + 1), side="left"
    )
    return order, bounds


def _sort_key_ranks(column: Column, ascending: bool) -> np.ndarray:
    """A numeric key whose ascending order equals the column's SQL order.

    Equal values share a dense rank (so ties fall through to later sort
    keys under both directions).  NULLs sort after all values in ascending
    order (NULLS LAST) and before them when descending — i.e. NULL behaves
    like the largest value.
    """
    n = len(column)
    mask = column.valid
    if column.dtype is INTEGER and bool(mask.all()):
        # Fast path: non-null integers are already a valid sort key —
        # skip the np.unique rank compaction (an extra full sort).
        return column.values if ascending else -column.values
    ranks = np.zeros(n, dtype=np.int64)
    if mask.any():
        _, inverse = np.unique(column.values[mask], return_inverse=True)
        ranks[mask] = inverse
        null_rank = int(inverse.max()) + 1
    else:
        null_rank = 0
    if not mask.all():
        ranks[~mask] = null_rank
    return ranks if ascending else -ranks


# ---------------------------------------------------------------------------
# Operator base
# ---------------------------------------------------------------------------
class Operator:
    """Base physical operator: a tree node that produces a batch."""

    #: filled in by subclasses
    schema: Schema

    def execute(self) -> RecordBatch:
        """Produce the full result batch."""
        raise NotImplementedError

    def children(self) -> tuple["Operator", ...]:
        """Child operators (for EXPLAIN)."""
        return ()

    def describe(self) -> str:
        """One EXPLAIN line for this node."""
        return type(self).__name__


def explain_tree(op: Operator, indent: int = 0) -> str:
    """Render an operator tree as indented EXPLAIN text."""
    lines = ["  " * indent + op.describe()]
    for child in op.children():
        lines.append(explain_tree(child, indent + 1))
    return "\n".join(lines)


def analyze_tree(op: Operator) -> tuple[RecordBatch, str]:
    """EXPLAIN ANALYZE: execute the tree with per-operator instrumentation.

    Every node's ``execute`` is shadowed (instance attribute) with a timed
    wrapper; after the run the tree is rendered with inclusive wall time
    and output row count per operator.

    Returns:
        ``(result batch, annotated plan text)``.
    """
    import time as _time

    metrics: dict[int, tuple[float, int]] = {}

    def instrument(node: Operator) -> None:
        for child in node.children():
            instrument(child)
        original = node.execute

        def timed() -> RecordBatch:
            started = _time.perf_counter()
            batch = original()
            metrics[id(node)] = (_time.perf_counter() - started, batch.num_rows)
            return batch

        node.execute = timed  # type: ignore[method-assign]

    instrument(op)
    result = op.execute()

    def render(node: Operator, indent: int) -> list[str]:
        seconds, rows = metrics.get(id(node), (0.0, 0))
        line = (
            "  " * indent
            + f"{node.describe()}  [rows={rows}, time={seconds * 1000:.2f}ms]"
        )
        lines = [line]
        for child in node.children():
            lines.extend(render(child, indent + 1))
        return lines

    return result, "\n".join(render(op, 0))


class TableScanOp(Operator):
    """Scan a stored table (by reference, so it sees the version current
    at execution time) under an optional alias."""

    def __init__(self, table: "Table", qualifier: str | None) -> None:
        self.table = table
        self.qualifier = qualifier
        self.schema = table.schema.with_qualifier(qualifier)

    def execute(self) -> RecordBatch:
        return self.table.data().with_schema(self.schema)

    def describe(self) -> str:
        alias = f" AS {self.qualifier}" if self.qualifier else ""
        return f"TableScan({self.table.name}{alias}, rows={self.table.num_rows})"


class BatchSourceOp(Operator):
    """Wrap an already-materialized batch (derived tables, transform IO)."""

    def __init__(self, batch: RecordBatch, qualifier: str | None = None) -> None:
        self.batch = batch
        if qualifier is not None:
            self.schema = batch.schema.unqualified().with_qualifier(qualifier)
        else:
            self.schema = batch.schema

    def execute(self) -> RecordBatch:
        return self.batch.with_schema(self.schema)

    def describe(self) -> str:
        return f"BatchSource(rows={self.batch.num_rows})"


class AliasOp(Operator):
    """Re-qualify a child's output under a table alias (derived tables)."""

    def __init__(self, child: Operator, alias: str) -> None:
        self.child = child
        self.alias = alias
        self.schema = child.schema.unqualified().with_qualifier(alias)

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Alias({self.alias})"

    def execute(self) -> RecordBatch:
        return self.child.execute().with_schema(self.schema)


class FilterOp(Operator):
    """Keep rows whose predicate evaluates to exactly TRUE."""

    def __init__(self, child: Operator, predicate: Expression, registry: FunctionRegistry) -> None:
        self.child = child
        self.predicate = predicate
        self.registry = registry
        self.schema = child.schema
        if infer_type(predicate, child.schema, registry) is not BOOLEAN:
            raise TypeMismatchError("WHERE/HAVING predicate must be BOOLEAN")

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def execute(self) -> RecordBatch:
        batch = self.child.execute()
        flags = evaluate(self.predicate, batch, self.registry)
        mask = flags.values.astype(bool) & flags.valid
        return batch.filter(mask)

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"


class ProjectOp(Operator):
    """Compute one output column per expression.

    ``qualifiers`` (parallel to ``names``) lets ``SELECT *`` over a join
    keep table aliases on otherwise-colliding bare names.
    """

    def __init__(
        self,
        child: Operator,
        exprs: Sequence[Expression],
        names: Sequence[str],
        registry: FunctionRegistry,
        qualifiers: Sequence[str | None] | None = None,
    ) -> None:
        self.child = child
        self.exprs = list(exprs)
        self.registry = registry
        if qualifiers is None:
            qualifiers = [None] * len(names)
        dtypes = [infer_type(expr, child.schema, registry) for expr in self.exprs]
        self.schema = Schema(
            ColumnDef(name, dtype, qualifier=qual)
            for name, dtype, qual in zip(names, dtypes, qualifiers)
        )

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def execute(self) -> RecordBatch:
        batch = self.child.execute()
        columns = []
        for expr, coldef in zip(self.exprs, self.schema):
            column = evaluate(expr, batch, self.registry)
            if column.dtype is not coldef.dtype:
                column = column.cast(coldef.dtype)
            columns.append(column)
        return RecordBatch(self.schema, columns)

    def describe(self) -> str:
        return f"Project({', '.join(c.qualified_name for c in self.schema)})"


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------
def _join_codes(left_cols: Sequence[Column], right_cols: Sequence[Column]) -> tuple[np.ndarray, np.ndarray]:
    """Consistent group codes for the two sides of an equi-join.

    Codes are computed over the concatenation so equal keys share a code.
    Rows with any NULL key get code -1 (SQL: NULL never joins).
    """
    from repro.engine.column import concat_columns

    stacked = [
        concat_columns([lc, rc]) for lc, rc in zip(left_cols, right_cols)
    ]
    codes, _ = factorize_columns(stacked)
    null_mask = np.zeros(len(codes), dtype=bool)
    for col in stacked:
        null_mask |= ~col.valid
    codes = codes.copy()
    codes[null_mask] = -1
    n_left = len(left_cols[0])
    return codes[:n_left], codes[n_left:]


def _expand_matches(
    left_codes: np.ndarray, right_codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All matching (left_index, right_index) pairs via sort + searchsorted."""
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    start = np.searchsorted(sorted_codes, left_codes, side="left")
    end = np.searchsorted(sorted_codes, left_codes, side="right")
    matchable = left_codes >= 0
    counts = np.where(matchable, end - start, 0)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    left_idx = np.repeat(np.arange(len(left_codes)), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total) - np.repeat(offsets, counts)
    right_pos = np.repeat(start, counts) + within
    return left_idx, order[right_pos]


def _null_padded(column: Column, indices: np.ndarray, pad: int) -> Column:
    """Take ``indices`` rows then append ``pad`` NULL rows (left-join side)."""
    taken = column.take(indices)
    if pad == 0:
        return taken
    padding = Column.constant(column.dtype, None, pad)
    from repro.engine.column import concat_columns

    return concat_columns([taken, padding])


class HashJoinOp(Operator):
    """Equi-join (inner or left outer) with optional residual predicate.

    The planner extracts equality conjuncts between the two sides as hash
    keys; any remaining condition is evaluated over candidate pairs.  For
    LEFT joins the residual is part of the join condition (unmatched left
    rows still appear once, padded with NULLs), matching SQL semantics.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[Expression],
        right_keys: Sequence[Expression],
        kind: str,
        residual: Expression | None,
        registry: FunctionRegistry,
    ) -> None:
        if kind not in ("inner", "left"):
            raise PlanError(f"unsupported join kind {kind!r}")
        if not left_keys:
            raise PlanError("HashJoinOp requires at least one equi-key")
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.kind = kind
        self.residual = residual
        self.registry = registry
        self.schema = left.schema.concat(right.schema)
        for lk, rk in zip(self.left_keys, self.right_keys):
            lt = infer_type(lk, left.schema, registry)
            rt = infer_type(rk, right.schema, registry)
            if lt is not rt and not (lt.is_numeric and rt.is_numeric):
                raise TypeMismatchError(
                    f"join keys have incompatible types: {lt.name} vs {rt.name}"
                )

    def children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"HashJoin({self.kind}, keys={len(self.left_keys)}, residual={self.residual is not None})"

    def execute(self) -> RecordBatch:
        left_batch = self.left.execute()
        right_batch = self.right.execute()
        left_cols = [evaluate(k, left_batch, self.registry) for k in self.left_keys]
        right_cols = [evaluate(k, right_batch, self.registry) for k in self.right_keys]
        for i, (lc, rc) in enumerate(zip(left_cols, right_cols)):
            if lc.dtype is not rc.dtype:  # INTEGER vs FLOAT keys: widen both
                left_cols[i] = lc.cast(FLOAT)
                right_cols[i] = rc.cast(FLOAT)
        left_codes, right_codes = _join_codes(left_cols, right_cols)
        left_idx, right_idx = _expand_matches(left_codes, right_codes)

        if self.residual is not None and len(left_idx):
            candidate = self._combine(left_batch, right_batch, left_idx, right_idx, 0)
            flags = evaluate(self.residual, candidate, self.registry)
            keep = flags.values.astype(bool) & flags.valid
            left_idx = left_idx[keep]
            right_idx = right_idx[keep]

        pad = 0
        pad_indices: np.ndarray | None = None
        if self.kind == "left":
            matched = np.zeros(left_batch.num_rows, dtype=bool)
            matched[left_idx] = True
            pad_indices = np.flatnonzero(~matched)
            pad = len(pad_indices)
        return self._combine(left_batch, right_batch, left_idx, right_idx, pad, pad_indices)

    def _combine(
        self,
        left_batch: RecordBatch,
        right_batch: RecordBatch,
        left_idx: np.ndarray,
        right_idx: np.ndarray,
        pad: int,
        pad_indices: np.ndarray | None = None,
    ) -> RecordBatch:
        columns: list[Column] = []
        if pad and pad_indices is not None:
            full_left = np.concatenate([left_idx, pad_indices])
        else:
            full_left = left_idx
        for col in left_batch.columns:
            columns.append(col.take(full_left))
        for col in right_batch.columns:
            columns.append(_null_padded(col, right_idx, pad))
        return RecordBatch(self.schema, columns)


class CrossJoinOp(Operator):
    """Cartesian product (also the fallback for non-equi join conditions,
    which the planner expresses as CrossJoin + Filter)."""

    def __init__(self, left: Operator, right: Operator) -> None:
        self.left = left
        self.right = right
        self.schema = left.schema.concat(right.schema)

    def children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return "CrossJoin"

    def execute(self) -> RecordBatch:
        left_batch = self.left.execute()
        right_batch = self.right.execute()
        n_left, n_right = left_batch.num_rows, right_batch.num_rows
        left_idx = np.repeat(np.arange(n_left), n_right)
        right_idx = np.tile(np.arange(n_right), n_left)
        columns = [col.take(left_idx) for col in left_batch.columns]
        columns += [col.take(right_idx) for col in right_batch.columns]
        return RecordBatch(self.schema, columns)


class UnionAllOp(Operator):
    """Concatenate child results; the paper's Table Unions optimization is
    exactly this node feeding a TransformOp."""

    def __init__(self, children: Sequence[Operator]) -> None:
        if not children:
            raise PlanError("UNION ALL of zero inputs")
        head = children[0]
        for child in children[1:]:
            if not head.schema.union_compatible_with(child.schema):
                raise TypeMismatchError("UNION ALL between incompatible schemas")
        self._children = list(children)
        self.schema = head.schema.unqualified()

    def children(self) -> tuple[Operator, ...]:
        return tuple(self._children)

    def describe(self) -> str:
        return f"UnionAll({len(self._children)} inputs)"

    def execute(self) -> RecordBatch:
        batches = [child.execute().with_schema(self.schema) for child in self._children]
        return RecordBatch.concat(batches)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate to compute: function name, argument, DISTINCT flag."""

    func: str
    arg: Expression | None  # None encodes COUNT(*)
    distinct: bool = False


class AggregateOp(Operator):
    """Vectorized GROUP BY: factorize keys, sort once, reduceat per agg.

    Output columns are the group keys (in ``group_exprs`` order) followed
    by the aggregates (in ``specs`` order), named by ``names``.
    """

    def __init__(
        self,
        child: Operator,
        group_exprs: Sequence[Expression],
        specs: Sequence[AggregateSpec],
        names: Sequence[str],
        registry: FunctionRegistry,
    ) -> None:
        self.child = child
        self.group_exprs = list(group_exprs)
        self.specs = list(specs)
        self.registry = registry
        dtypes: list[DataType] = [
            infer_type(expr, child.schema, registry) for expr in self.group_exprs
        ]
        for spec in self.specs:
            dtypes.append(self._result_type(spec, child.schema))
        if len(names) != len(dtypes):
            raise PlanError("aggregate output names/arity mismatch")
        self.schema = Schema(ColumnDef(n, t) for n, t in zip(names, dtypes))

    def _result_type(self, spec: AggregateSpec, schema: Schema) -> DataType:
        if spec.func == "COUNT":
            return INTEGER
        assert spec.arg is not None
        arg_type = infer_type(spec.arg, schema, self.registry)
        if spec.func in ("AVG", "STDDEV"):
            return FLOAT
        return arg_type

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def describe(self) -> str:
        aggs = ", ".join(f"{s.func}" for s in self.specs)
        return f"Aggregate(groups={len(self.group_exprs)}, aggs=[{aggs}])"

    def execute(self) -> RecordBatch:
        batch = self.child.execute()
        n = batch.num_rows
        if self.group_exprs:
            key_cols = [evaluate(e, batch, self.registry) for e in self.group_exprs]
            if n == 0:
                return RecordBatch.empty(self.schema)
            codes, n_groups = factorize_columns(key_cols)
        else:
            key_cols = []
            codes = np.zeros(n, dtype=np.int64)
            n_groups = 1  # global aggregate: one output row even on empty input
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        boundaries = (
            np.flatnonzero(np.diff(sorted_codes, prepend=sorted_codes[0] - 1))
            if n
            else np.empty(0, dtype=np.int64)
        )
        group_sizes = np.diff(np.append(boundaries, n))
        present = sorted_codes[boundaries] if n else np.empty(0, dtype=np.int64)

        out_columns: list[Column] = []
        for key_col, coldef in zip(key_cols, self.schema):
            reps = order[boundaries]
            out_columns.append(key_col.take(reps))
        for spec, coldef in zip(self.specs, self.schema[len(key_cols):]):
            out_columns.append(
                self._compute(spec, coldef.dtype, batch, order, boundaries, group_sizes, n_groups, present)
            )
        return RecordBatch(self.schema, out_columns)

    # -- per-aggregate computation -------------------------------------
    def _compute(
        self,
        spec: AggregateSpec,
        out_type: DataType,
        batch: RecordBatch,
        order: np.ndarray,
        boundaries: np.ndarray,
        group_sizes: np.ndarray,
        n_groups: int,
        present: np.ndarray,
    ) -> Column:
        n_out = n_groups
        if spec.func == "COUNT" and spec.arg is None:
            counts = np.zeros(n_out, dtype=np.int64)
            counts[present] = group_sizes
            return Column(INTEGER, counts, np.ones(n_out, dtype=bool))

        assert spec.arg is not None
        arg = evaluate(spec.arg, batch, self.registry)
        sorted_valid = arg.valid[order]
        sorted_values = arg.values[order]

        if spec.distinct:
            return self._compute_distinct(spec, out_type, arg, order, boundaries, present, n_out)

        if len(boundaries) == 0:
            counts_present = np.empty(0, dtype=np.int64)
        else:
            counts_present = np.add.reduceat(sorted_valid.astype(np.int64), boundaries)
        counts = np.zeros(n_out, dtype=np.int64)
        counts[present] = counts_present

        if spec.func == "COUNT":
            return Column(INTEGER, counts, np.ones(n_out, dtype=bool))

        if spec.func in ("SUM", "AVG", "STDDEV"):
            values = sorted_values.astype(np.float64)
            values = np.where(sorted_valid, values, 0.0)
            sums = np.zeros(n_out, dtype=np.float64)
            if len(boundaries):
                sums[present] = np.add.reduceat(values, boundaries)
            if spec.func == "SUM":
                valid = counts > 0
                if out_type is INTEGER:
                    return Column(INTEGER, sums.astype(np.int64), valid)
                return Column(FLOAT, sums, valid)
            if spec.func == "AVG":
                valid = counts > 0
                safe = np.where(valid, counts, 1)
                return Column(FLOAT, sums / safe, valid)
            # STDDEV (sample)
            sq = np.where(sorted_valid, sorted_values.astype(np.float64) ** 2, 0.0)
            sumsq = np.zeros(n_out, dtype=np.float64)
            if len(boundaries):
                sumsq[present] = np.add.reduceat(sq, boundaries)
            valid = counts > 1
            safe_n = np.where(valid, counts, 2).astype(np.float64)
            var = (sumsq - sums**2 / safe_n) / (safe_n - 1.0)
            return Column(FLOAT, np.sqrt(np.maximum(var, 0.0)), valid)

        if spec.func in ("MIN", "MAX"):
            return self._compute_extremum(
                spec.func, out_type, sorted_values, sorted_valid, boundaries, present, counts, n_out
            )
        raise PlanError(f"unknown aggregate {spec.func!r}")  # pragma: no cover

    def _compute_extremum(
        self,
        func: str,
        out_type: DataType,
        sorted_values: np.ndarray,
        sorted_valid: np.ndarray,
        boundaries: np.ndarray,
        present: np.ndarray,
        counts: np.ndarray,
        n_out: int,
    ) -> Column:
        valid = counts > 0
        if out_type is VARCHAR:
            out = np.empty(n_out, dtype=object)
            out[:] = ""
            ends = np.append(boundaries, len(sorted_values))
            for g in range(len(boundaries)):
                chunk_vals = sorted_values[boundaries[g] : ends[g + 1]]
                chunk_ok = sorted_valid[boundaries[g] : ends[g + 1]]
                items = [v for v, ok in zip(chunk_vals, chunk_ok) if ok]
                if items:
                    out[present[g]] = min(items) if func == "MIN" else max(items)
            return Column(VARCHAR, out, valid)
        values = sorted_values.astype(np.float64)
        if func == "MIN":
            values = np.where(sorted_valid, values, np.inf)
            agg = np.full(n_out, np.inf)
            if len(boundaries):
                agg[present] = np.minimum.reduceat(values, boundaries)
        else:
            values = np.where(sorted_valid, values, -np.inf)
            agg = np.full(n_out, -np.inf)
            if len(boundaries):
                agg[present] = np.maximum.reduceat(values, boundaries)
        agg = np.where(valid, agg, 0.0)
        if out_type is INTEGER:
            return Column(INTEGER, agg.astype(np.int64), valid)
        if out_type is BOOLEAN:
            return Column(BOOLEAN, agg.astype(bool), valid)
        return Column(FLOAT, agg, valid)

    def _compute_distinct(
        self,
        spec: AggregateSpec,
        out_type: DataType,
        arg: Column,
        order: np.ndarray,
        boundaries: np.ndarray,
        present: np.ndarray,
        n_out: int,
    ) -> Column:
        if spec.func != "COUNT":
            raise PlanError("DISTINCT is supported only for COUNT")
        codes_in_group = np.repeat(
            np.arange(len(boundaries)), np.diff(np.append(boundaries, len(order)))
        )
        sorted_valid = arg.valid[order]
        value_codes = _column_codes(arg.take(order))
        pairs = codes_in_group * (value_codes.max(initial=0) + 1) + value_codes
        keep = sorted_valid
        uniq_pairs, idx = np.unique(pairs[keep], return_index=True)
        group_of_pair = codes_in_group[keep][idx]
        counts = np.zeros(n_out, dtype=np.int64)
        if len(group_of_pair):
            bin_counts = np.bincount(group_of_pair, minlength=len(boundaries))
            counts[present] = bin_counts
        return Column(INTEGER, counts, np.ones(n_out, dtype=bool))


# ---------------------------------------------------------------------------
# Sort / limit / distinct
# ---------------------------------------------------------------------------
class SortOp(Operator):
    """ORDER BY via rank conversion + a single stable lexsort."""

    def __init__(
        self,
        child: Operator,
        keys: Sequence[Expression],
        ascending: Sequence[bool],
        registry: FunctionRegistry,
    ) -> None:
        self.child = child
        self.keys = list(keys)
        self.ascending = list(ascending)
        self.registry = registry
        self.schema = child.schema
        for key in self.keys:
            infer_type(key, child.schema, registry)  # type check early

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def describe(self) -> str:
        dirs = ", ".join("ASC" if a else "DESC" for a in self.ascending)
        return f"Sort({dirs})"

    def execute(self) -> RecordBatch:
        batch = self.child.execute()
        if batch.num_rows <= 1:
            return batch
        rank_arrays = [
            _sort_key_ranks(evaluate(key, batch, self.registry), asc)
            for key, asc in zip(self.keys, self.ascending)
        ]
        # lexsort's last key is primary, so reverse.
        order = np.lexsort(tuple(reversed(rank_arrays)))
        return batch.take(order)


class LimitOp(Operator):
    """LIMIT/OFFSET."""

    def __init__(self, child: Operator, limit: int | None, offset: int) -> None:
        self.child = child
        self.limit = limit
        self.offset = offset
        self.schema = child.schema

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"

    def execute(self) -> RecordBatch:
        batch = self.child.execute()
        stop = batch.num_rows if self.limit is None else self.offset + self.limit
        return batch.slice(self.offset, stop)


class DistinctOp(Operator):
    """SELECT DISTINCT / UNION dedup: keep the first row of each group,
    preserving first-occurrence order."""

    def __init__(self, child: Operator) -> None:
        self.child = child
        self.schema = child.schema

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def describe(self) -> str:
        return "Distinct"

    def execute(self) -> RecordBatch:
        batch = self.child.execute()
        if batch.num_rows == 0:
            return batch
        codes, _ = factorize_columns(list(batch.columns))
        _, first_positions = np.unique(codes, return_index=True)
        return batch.take(np.sort(first_positions))


# ---------------------------------------------------------------------------
# Transform (table UDF) — the Vertexica worker container
# ---------------------------------------------------------------------------
class TransformOp(Operator):
    """Partitioned table-UDF execution, Vertica-style.

    The input batch is hash partitioned on ``partition_exprs`` into
    ``n_partitions`` buckets; each bucket is sorted by ``sort_exprs`` and
    handed to ``fn`` (one call per non-empty bucket).  Outputs are
    concatenated.  This is exactly the execution shape of the paper's
    workers: "hash partitions the table union on the vertex id into a fixed
    number of partitions; each partition is sorted on the vertex id".
    """

    def __init__(
        self,
        child: Operator,
        fn: Callable[[RecordBatch, int], RecordBatch],
        output_schema: Schema,
        partition_exprs: Sequence[Expression],
        sort_exprs: Sequence[Expression],
        n_partitions: int,
        registry: FunctionRegistry,
        executor: Callable[..., list[RecordBatch]] | None = None,
    ) -> None:
        if n_partitions < 1:
            raise PlanError("n_partitions must be >= 1")
        self.child = child
        self.fn = fn
        self.schema = output_schema
        self.partition_exprs = list(partition_exprs)
        self.sort_exprs = list(sort_exprs)
        self.n_partitions = n_partitions
        self.registry = registry
        self.executor = executor

    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Transform(partitions={self.n_partitions})"

    def execute(self) -> RecordBatch:
        batch = self.child.execute()
        tasks = self._partitioned_tasks(batch)
        if self.executor is not None:
            outputs = self.executor(self.fn, tasks)
        else:
            outputs = [self.fn(piece, index) for piece, index in tasks]
        outputs = [out for out in outputs if out.num_rows]
        if not outputs:
            return RecordBatch.empty(self.schema)
        return RecordBatch.concat([out.with_schema(self.schema) for out in outputs])

    def _partitioned_tasks(self, batch: RecordBatch) -> list[tuple[RecordBatch, int]]:
        """Hash-partitioned, sorted buckets in one vectorized pass.

        Instead of filtering the batch once per partition and argsorting
        each bucket (``n_partitions`` full-column gathers), the rows are
        ordered by a single stable lexsort keyed on (partition id,
        sort keys...), after which every bucket is a zero-copy slice of
        the reordered batch.  Row order within a bucket is identical to
        the filter-then-sort formulation because both are stable.
        """
        if batch.num_rows == 0:
            return []
        hashes = self._partition_ids(batch)
        sort_keys = [
            _sort_key_ranks(evaluate(e, batch, self.registry), True)
            for e in self.sort_exprs
        ]
        if hashes is None:
            if sort_keys:
                order = np.lexsort(tuple(reversed(sort_keys)))
                batch = batch.take(order)
            return [(batch, 0)]
        order, bounds = hash_bucket_order(hashes, self.n_partitions, sort_keys)
        ordered = batch.take(order)
        return [
            (_slice_rows(ordered, int(bounds[p]), int(bounds[p + 1])), p)
            for p in range(self.n_partitions)
            if bounds[p + 1] > bounds[p]
        ]

    def _partition_ids(self, batch: RecordBatch) -> np.ndarray | None:
        """Partition id per row, or ``None`` for a single bucket."""
        if self.n_partitions == 1 or not self.partition_exprs:
            return None
        key_cols = [evaluate(e, batch, self.registry) for e in self.partition_exprs]
        if len(key_cols) == 1 and key_cols[0].dtype is INTEGER:
            return key_cols[0].values % self.n_partitions
        codes, _ = factorize_columns(key_cols)
        return codes % self.n_partitions


def _slice_rows(batch: RecordBatch, start: int, stop: int) -> RecordBatch:
    """A contiguous row range as zero-copy column views."""
    return RecordBatch(
        batch.schema,
        [
            Column(col.dtype, col.values[start:stop], col.valid[start:stop])
            for col in batch.columns
        ],
    )
