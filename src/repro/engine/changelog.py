"""Change capture for stored tables: row deltas keyed by table version.

Materialized derivations (graph views, incremental aggregates) need to
know *what changed* in a base table since they last looked, without
re-scanning it.  Every :class:`~repro.engine.table.Table` owns a
:class:`ChangeLog`; the row-level mutation paths (INSERT, DELETE, UPDATE)
append one entry per version bump:

* INSERT  -> ``inserted`` rows
* DELETE  -> ``deleted`` rows
* UPDATE  -> the old rows as ``deleted`` plus the new rows as ``inserted``

so that any window of versions reduces to a pair of row multisets.
Wholesale operations (``replace_data``, ``truncate``, transaction
rollback, checkpoint ``restore``) do not diff — they :meth:`~ChangeLog.reset`
the log, and readers observe "delta unavailable" and fall back to a full
recomputation.  The log is bounded: when the retained delta rows exceed
``capacity`` the oldest entries are evicted and the reconstructable window
shrinks accordingly.

The version/uid contract
------------------------

Everything that derives state from a table — incremental view
maintenance, snapshot-isolated serving reads, version-keyed result
caches — leans on two invariants the mutation paths uphold:

1. **Every observable content change bumps ``Table.version``.**  Row
   DML (INSERT/DELETE/UPDATE) and wholesale swaps (``replace_data``,
   ``truncate``) each bump exactly once; batches are immutable, so a
   batch reference taken at version ``v`` *is* the table's contents at
   ``v`` forever.  Equal ``(uid, version)`` therefore implies equal
   contents — the premise of version-keyed cache hits and of
   version-checked snapshot reads failing loudly instead of serving
   torn data.
2. **A version number is only meaningful together with the table's
   ``uid``.**  Versions restart at 0 for recreated tables and repeat
   after rewinds, so any path that cannot be expressed as a forward
   bump — DROP + CREATE, transaction rollback, checkpoint ``restore`` —
   installs a *fresh process-unique uid* (:func:`next_table_uid`).
   Consumers must record ``(uid, version)`` pairs (see
   ``Database.table_state`` / ``Database.pin_tables``) and treat a uid
   mismatch exactly like an unreadable delta window: recompute from
   scratch (views) or invalidate the handle (snapshots).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.engine.batch import RecordBatch
from repro.engine.schema import Schema

__all__ = ["TableDelta", "ChangeLog", "DEFAULT_CHANGELOG_CAPACITY"]

#: Default bound on retained delta rows per table.  Inserted batches are
#: shared references (no copy) but deleted batches are materialized, so
#: the bound mostly caps memory held for deletions.
DEFAULT_CHANGELOG_CAPACITY = 1_000_000

#: Process-wide table identity counter — survives nothing, which is the
#: point: a recorded uid from a dropped/recreated/restored table can never
#: collide with the new object's uid, so stale version bookkeeping is
#: detected instead of silently trusted.
_uid_counter = itertools.count(1)


def next_table_uid() -> int:
    """A process-unique table identity (see module docstring)."""
    return next(_uid_counter)


@dataclass(frozen=True)
class TableDelta:
    """The net row changes between two versions of one table.

    ``inserted`` and ``deleted`` are row *multisets* in chronological
    order; a row updated in place appears in both.  Equal rows cancel
    arithmetically — consumers may apply all insertions then all
    deletions, or net them first.
    """

    inserted: RecordBatch
    deleted: RecordBatch
    from_version: int
    to_version: int

    @property
    def num_rows(self) -> int:
        """Total delta rows (inserted + deleted)."""
        return self.inserted.num_rows + self.deleted.num_rows

    @property
    def empty(self) -> bool:
        """True when nothing changed in the window."""
        return self.num_rows == 0


@dataclass
class _Entry:
    version: int  # table version after this mutation
    inserted: RecordBatch | None
    deleted: RecordBatch | None

    @property
    def num_rows(self) -> int:
        rows = 0
        if self.inserted is not None:
            rows += self.inserted.num_rows
        if self.deleted is not None:
            rows += self.deleted.num_rows
        return rows


@dataclass
class ChangeLog:
    """Version-keyed row deltas for one table (see module docstring).

    Capture is **armed lazily**: until some consumer takes a bookmark
    (:meth:`enable`, via ``Database.table_state``), nothing is recorded
    and :meth:`changes_since` answers ``None``.  Ordinary tables — the
    per-superstep message/staging relations chief among them — therefore
    pay zero copies and retain zero rows for a facility nothing reads.

    Attributes:
        enabled: True once a bookmark armed capture on this table.
        start_version: the earliest version deltas can be reconstructed
            *from*; ``changes_since(v)`` answers only for
            ``start_version <= v <= current version``.
        capacity: retained-row bound; exceeding it evicts oldest entries.
    """

    enabled: bool = False
    start_version: int = 0
    capacity: int = DEFAULT_CHANGELOG_CAPACITY
    _entries: list[_Entry] = field(default_factory=list)
    _retained_rows: int = 0

    # ------------------------------------------------------------------
    # Producers (called by Table mutation paths)
    # ------------------------------------------------------------------
    def enable(self, version: int) -> None:
        """Arm capture from ``version`` on (idempotent — a later bookmark
        must not shrink the window an earlier consumer relies on)."""
        if not self.enabled:
            self.enabled = True
            self.reset(version)

    def disable(self) -> None:
        """Disarm capture and drop every retained row.

        Called when the last consumer deriving from this table goes away
        (e.g. its only materialized graph view is dropped); a later
        :meth:`enable` re-arms from scratch.  Consumer accounting is the
        caller's job — this log cannot know who else holds bookmarks.
        """
        self.enabled = False
        self._entries.clear()
        self._retained_rows = 0

    def record(
        self,
        version: int,
        inserted: RecordBatch | None = None,
        deleted: RecordBatch | None = None,
    ) -> None:
        """Append the delta of the mutation that produced ``version``
        (a no-op until :meth:`enable` arms capture)."""
        if not self.enabled:
            return
        entry = _Entry(version, inserted, deleted)
        self._entries.append(entry)
        self._retained_rows += entry.num_rows
        while self._retained_rows > self.capacity and self._entries:
            evicted = self._entries.pop(0)
            self._retained_rows -= evicted.num_rows
            self.start_version = evicted.version

    def reset(self, version: int) -> None:
        """Forget everything; deltas are reconstructable only from
        ``version`` on.  Called for wholesale table swaps (replace,
        truncate, rollback, checkpoint restore)."""
        self._entries.clear()
        self._retained_rows = 0
        self.start_version = version

    # ------------------------------------------------------------------
    # Consumer
    # ------------------------------------------------------------------
    def changes_since(
        self, since_version: int, current_version: int, schema: Schema
    ) -> TableDelta | None:
        """The delta from ``since_version`` to ``current_version``.

        Returns ``None`` when the window is not reconstructable: capture
        never armed, the caller's version is ahead of the table (rewound
        table object), or behind the log's retained window (eviction or a
        wholesale swap).
        """
        if not self.enabled:
            return None
        if since_version > current_version or since_version < self.start_version:
            return None
        inserted = [e.inserted for e in self._entries if e.version > since_version and e.inserted is not None]
        deleted = [e.deleted for e in self._entries if e.version > since_version and e.deleted is not None]
        return TableDelta(
            inserted=_concat(inserted, schema),
            deleted=_concat(deleted, schema),
            from_version=since_version,
            to_version=current_version,
        )

    @property
    def retained_rows(self) -> int:
        """Delta rows currently held (observability/tests)."""
        return self._retained_rows


def _concat(batches: list[RecordBatch], schema: Schema) -> RecordBatch:
    if not batches:
        return RecordBatch.empty(schema)
    if len(batches) == 1:
        return batches[0]
    return RecordBatch.concat(batches)
