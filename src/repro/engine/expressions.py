"""Expression AST, type inference, and vectorized evaluation.

The SQL parser produces these nodes; the planner type-checks them against
an input schema; the executor evaluates them over record batches with
numpy.  NULL semantics follow SQL:

* arithmetic and comparisons propagate NULL;
* ``AND``/``OR`` use Kleene three-valued logic;
* ``WHERE`` keeps only rows whose predicate is exactly TRUE;
* division by zero yields NULL (MySQL-style; documented engine choice so
  graph algorithms never crash mid-superstep on a dangling vertex).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.engine.batch import RecordBatch
from repro.engine.column import Column
from repro.engine.schema import Schema
from repro.engine.types import (
    BOOLEAN,
    FLOAT,
    INTEGER,
    VARCHAR,
    DataType,
    common_type,
    infer_literal_type,
    type_from_name,
)
from repro.errors import PlanError, TypeMismatchError

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "Star",
    "Parameter",
    "BinaryOp",
    "UnaryOp",
    "FunctionCall",
    "CaseExpr",
    "CastExpr",
    "InList",
    "Between",
    "IsNull",
    "LikeExpr",
    "infer_type",
    "evaluate",
    "expression_name",
    "contains_aggregate",
    "COMPARISON_OPS",
    "ARITHMETIC_OPS",
]

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")
ARITHMETIC_OPS = ("+", "-", "*", "/", "%")


# ---------------------------------------------------------------------------
# AST nodes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Expression:
    """Base class for all expression nodes."""

    def children(self) -> tuple["Expression", ...]:
        """Direct sub-expressions (used by tree walks)."""
        return ()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant; ``value is None`` encodes the SQL NULL literal."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A (possibly qualified) column reference, e.g. ``e.src``."""

    name: str
    qualifier: str | None = None

    @property
    def display(self) -> str:
        """Human-readable spelling."""
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` — only valid inside ``COUNT(*)`` or as a SELECT item."""

    qualifier: str | None = None


@dataclass(frozen=True)
class Parameter(Expression):
    """A ``?`` placeholder; substituted with a literal before planning."""

    index: int


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Infix operator: arithmetic, comparison, AND/OR, or ``||`` concat."""

    op: str
    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Prefix operator: unary ``-`` or ``NOT``."""

    op: str
    operand: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar/aggregate/UDF call by name.

    The same node covers built-ins and user functions; the planner decides
    which registry the name belongs to.  ``distinct`` only matters for
    aggregates (``COUNT(DISTINCT x)``).
    """

    name: str
    args: tuple[Expression, ...]
    distinct: bool = False

    def children(self) -> tuple[Expression, ...]:
        return self.args


@dataclass(frozen=True)
class CaseExpr(Expression):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    whens: tuple[tuple[Expression, Expression], ...]
    default: Expression | None = None
    operand: Expression | None = None

    def children(self) -> tuple[Expression, ...]:
        out: list[Expression] = []
        if self.operand is not None:
            out.append(self.operand)
        for cond, result in self.whens:
            out.extend((cond, result))
        if self.default is not None:
            out.append(self.default)
        return tuple(out)


@dataclass(frozen=True)
class CastExpr(Expression):
    """``CAST(x AS TYPE)``."""

    operand: Expression
    type_name: str

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class InList(Expression):
    """``x [NOT] IN (a, b, c)`` with literal/computed list items."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, *self.items)


@dataclass(frozen=True)
class Between(Expression):
    """``x [NOT] BETWEEN low AND high`` (inclusive)."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, self.low, self.high)


@dataclass(frozen=True)
class IsNull(Expression):
    """``x IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class LikeExpr(Expression):
    """``x [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, self.pattern)


# ---------------------------------------------------------------------------
# Helpers over the AST
# ---------------------------------------------------------------------------
def expression_name(expr: Expression) -> str:
    """Default output-column name for an un-aliased SELECT item."""
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FunctionCall):
        return expr.name.lower()
    if isinstance(expr, CastExpr):
        return expression_name(expr.operand)
    return "expr"


def contains_aggregate(expr: Expression, aggregate_names: frozenset[str]) -> bool:
    """True if any node in the tree is a call to an aggregate function."""
    if isinstance(expr, FunctionCall) and expr.name.upper() in aggregate_names:
        return True
    return any(contains_aggregate(child, aggregate_names) for child in expr.children())


# ---------------------------------------------------------------------------
# Type inference
# ---------------------------------------------------------------------------
def infer_type(expr: Expression, schema: Schema, registry: "FunctionRegistry") -> DataType:
    """Static type of ``expr`` over rows shaped like ``schema``.

    Raises:
        TypeMismatchError: on ill-typed expressions.
        PlanError: on structurally invalid nodes (bare ``*``, unbound ``?``).
    """
    if isinstance(expr, Literal):
        if expr.value is None:
            # The NULL literal is typeless; default to VARCHAR, contexts that
            # care (CASE branches, IN lists) reconcile via common_type with
            # special NULL handling below.
            return VARCHAR
        return infer_literal_type(expr.value)
    if isinstance(expr, ColumnRef):
        return schema.column(expr.name, expr.qualifier).dtype
    if isinstance(expr, Parameter):
        raise PlanError("unbound ? parameter reached the planner")
    if isinstance(expr, Star):
        raise PlanError("'*' is only valid in COUNT(*) or as a SELECT item")
    if isinstance(expr, BinaryOp):
        return _infer_binary(expr, schema, registry)
    if isinstance(expr, UnaryOp):
        inner = infer_type(expr.operand, schema, registry)
        if expr.op == "NOT":
            if inner is not BOOLEAN:
                raise TypeMismatchError("NOT requires a BOOLEAN operand")
            return BOOLEAN
        if expr.op == "-":
            if not inner.is_numeric:
                raise TypeMismatchError("unary - requires a numeric operand")
            return inner
        raise PlanError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, FunctionCall):
        return registry.infer_call_type(expr, schema)
    if isinstance(expr, CaseExpr):
        return _infer_case(expr, schema, registry)
    if isinstance(expr, CastExpr):
        return type_from_name(expr.type_name)
    if isinstance(expr, (InList, Between, IsNull, LikeExpr)):
        return BOOLEAN
    raise PlanError(f"cannot infer type of {expr!r}")  # pragma: no cover


def _is_null_literal(expr: Expression) -> bool:
    return isinstance(expr, Literal) and expr.value is None


def _infer_binary(expr: BinaryOp, schema: Schema, registry: "FunctionRegistry") -> DataType:
    left = infer_type(expr.left, schema, registry)
    right = infer_type(expr.right, schema, registry)
    op = expr.op
    if op in ("AND", "OR"):
        # The typeless NULL literal adapts to boolean context.
        left_ok = left is BOOLEAN or _is_null_literal(expr.left)
        right_ok = right is BOOLEAN or _is_null_literal(expr.right)
        if not (left_ok and right_ok):
            raise TypeMismatchError(f"{op} requires BOOLEAN operands")
        return BOOLEAN
    if op in COMPARISON_OPS:
        _comparison_common(expr, left, right)
        return BOOLEAN
    # The typeless NULL literal adapts to the other operand.
    left_null = _is_null_literal(expr.left)
    right_null = _is_null_literal(expr.right)
    if op == "||":
        if left_null and right_null:
            return VARCHAR
        if not (left is VARCHAR or left_null) or not (right is VARCHAR or right_null):
            raise TypeMismatchError("|| requires VARCHAR operands")
        return VARCHAR
    if op in ARITHMETIC_OPS:
        if left_null and right_null:
            return FLOAT
        if left_null:
            left = right
        if right_null:
            right = left
        if not left.is_numeric or not right.is_numeric:
            raise TypeMismatchError(f"operator {op} requires numeric operands")
        if op == "/":
            return FLOAT
        return common_type(left, right)
    raise PlanError(f"unknown binary operator {op!r}")


def _comparison_common(expr: BinaryOp, left: DataType, right: DataType) -> DataType:
    """Common comparison type; NULL literals adapt to the other side."""
    if isinstance(expr.left, Literal) and expr.left.value is None:
        return right
    if isinstance(expr.right, Literal) and expr.right.value is None:
        return left
    return common_type(left, right)


def _infer_case(expr: CaseExpr, schema: Schema, registry: "FunctionRegistry") -> DataType:
    result_type: DataType | None = None
    branches = [result for _, result in expr.whens]
    if expr.default is not None:
        branches.append(expr.default)
    for branch in branches:
        if isinstance(branch, Literal) and branch.value is None:
            continue
        branch_type = infer_type(branch, schema, registry)
        result_type = branch_type if result_type is None else common_type(result_type, branch_type)
    if result_type is None:
        return VARCHAR  # all branches NULL
    return result_type


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------
def evaluate(expr: Expression, batch: RecordBatch, registry: "FunctionRegistry") -> Column:
    """Evaluate ``expr`` over every row of ``batch``, vectorized.

    Aggregate calls must have been rewritten away by the planner before
    evaluation; hitting one here is a planner bug surfaced as PlanError.
    """
    n = batch.num_rows
    if isinstance(expr, Literal):
        dtype = VARCHAR if expr.value is None else infer_literal_type(expr.value)
        return Column.constant(dtype, expr.value, n)
    if isinstance(expr, ColumnRef):
        return batch.column(expr.name, expr.qualifier)
    if isinstance(expr, Parameter):
        raise PlanError("unbound ? parameter reached the executor")
    if isinstance(expr, BinaryOp):
        return _eval_binary(expr, batch, registry)
    if isinstance(expr, UnaryOp):
        inner = evaluate(expr.operand, batch, registry)
        if expr.op == "NOT":
            return Column(BOOLEAN, ~inner.values.astype(bool), inner.valid.copy())
        return Column(inner.dtype, -inner.values, inner.valid.copy())
    if isinstance(expr, FunctionCall):
        return registry.evaluate_call(expr, batch)
    if isinstance(expr, CaseExpr):
        return _eval_case(expr, batch, registry)
    if isinstance(expr, CastExpr):
        inner = evaluate(expr.operand, batch, registry)
        return inner.cast(type_from_name(expr.type_name))
    if isinstance(expr, InList):
        return _eval_in_list(expr, batch, registry)
    if isinstance(expr, Between):
        rewritten = BinaryOp(
            "AND",
            BinaryOp(">=", expr.operand, expr.low),
            BinaryOp("<=", expr.operand, expr.high),
        )
        result = evaluate(rewritten, batch, registry)
        if expr.negated:
            return Column(BOOLEAN, ~result.values.astype(bool), result.valid.copy())
        return result
    if isinstance(expr, IsNull):
        inner = evaluate(expr.operand, batch, registry)
        flags = inner.valid.copy() if expr.negated else ~inner.valid
        return Column(BOOLEAN, flags, np.ones(n, dtype=bool))
    if isinstance(expr, LikeExpr):
        return _eval_like(expr, batch, registry)
    raise PlanError(f"cannot evaluate {expr!r}")  # pragma: no cover


def _align_numeric(left: Column, right: Column) -> tuple[np.ndarray, np.ndarray, DataType]:
    target = common_type(left.dtype, right.dtype)
    lv = left.values.astype(target.numpy_dtype) if left.dtype is not target else left.values
    rv = right.values.astype(target.numpy_dtype) if right.dtype is not target else right.values
    return lv, rv, target


def _eval_binary(expr: BinaryOp, batch: RecordBatch, registry: "FunctionRegistry") -> Column:
    op = expr.op
    if op in ("AND", "OR"):
        return _eval_kleene(expr, batch, registry)
    if _is_null_literal(expr.left) or _is_null_literal(expr.right):
        # NULL propagates through comparisons, arithmetic, and concat.
        result_type = _infer_binary(expr, batch.schema, registry)
        return Column.constant(result_type, None, batch.num_rows)
    left = evaluate(expr.left, batch, registry)
    right = evaluate(expr.right, batch, registry)
    valid = left.valid & right.valid
    if op in COMPARISON_OPS:
        return _eval_comparison(op, left, right, valid)
    if op == "||":
        out = np.empty(len(left), dtype=object)
        lv, rv = left.values, right.values
        for i in range(len(left)):
            out[i] = (lv[i] + rv[i]) if valid[i] else ""
        return Column(VARCHAR, out, valid)
    if not left.dtype.is_numeric or not right.dtype.is_numeric:
        raise TypeMismatchError(f"operator {op} requires numeric operands")
    lv, rv, target = _align_numeric(left, right)
    if op == "+":
        return Column(target, lv + rv, valid)
    if op == "-":
        return Column(target, lv - rv, valid)
    if op == "*":
        return Column(target, lv * rv, valid)
    if op == "/":
        lf = lv.astype(np.float64)
        rf = rv.astype(np.float64)
        zero = rf == 0
        safe = np.where(zero, 1.0, rf)
        return Column(FLOAT, lf / safe, valid & ~zero)
    if op == "%":
        zero = rv == 0
        safe = np.where(zero, 1, rv)
        return Column(target, np.mod(lv, safe).astype(target.numpy_dtype), valid & ~zero)
    raise PlanError(f"unknown binary operator {op!r}")  # pragma: no cover


def _eval_comparison(op: str, left: Column, right: Column, valid: np.ndarray) -> Column:
    if left.dtype is VARCHAR or right.dtype is VARCHAR:
        if left.dtype is not right.dtype:
            raise TypeMismatchError("cannot compare VARCHAR with non-VARCHAR")
        lv, rv = left.values, right.values
    elif left.dtype is BOOLEAN or right.dtype is BOOLEAN:
        if left.dtype is not right.dtype:
            raise TypeMismatchError("cannot compare BOOLEAN with non-BOOLEAN")
        lv, rv = left.values, right.values
    else:
        lv, rv, _ = _align_numeric(left, right)
    if op == "=":
        flags = lv == rv
    elif op == "<>":
        flags = lv != rv
    elif op == "<":
        flags = lv < rv
    elif op == "<=":
        flags = lv <= rv
    elif op == ">":
        flags = lv > rv
    else:
        flags = lv >= rv
    return Column(BOOLEAN, np.asarray(flags, dtype=bool), valid)


def _as_boolean_operand(column: Column, n: int) -> Column:
    """Adapt a NULL-literal column (typeless, no valid values) to BOOLEAN."""
    if column.dtype is BOOLEAN:
        return column
    if not column.valid.any():
        return Column.constant(BOOLEAN, None, n)
    raise TypeMismatchError("AND/OR requires BOOLEAN operands")


def _eval_kleene(expr: BinaryOp, batch: RecordBatch, registry: "FunctionRegistry") -> Column:
    left = _as_boolean_operand(evaluate(expr.left, batch, registry), batch.num_rows)
    right = _as_boolean_operand(evaluate(expr.right, batch, registry), batch.num_rows)
    lv = left.values.astype(bool)
    rv = right.values.astype(bool)
    if expr.op == "AND":
        value = lv & rv
        # NULL unless a definite FALSE forces the result.
        known_false = (left.valid & ~lv) | (right.valid & ~rv)
        valid = (left.valid & right.valid) | known_false
    else:
        value = lv | rv
        known_true = (left.valid & lv) | (right.valid & rv)
        valid = (left.valid & right.valid) | known_true
    # Storage under NULL is arbitrary; normalize so equal columns compare equal.
    value = np.where(valid, value, False)
    return Column(BOOLEAN, value, valid)


def _eval_case(expr: CaseExpr, batch: RecordBatch, registry: "FunctionRegistry") -> Column:
    n = batch.num_rows
    result_type = infer_type(expr, batch.schema, registry)
    if result_type is VARCHAR:
        values: np.ndarray = np.empty(n, dtype=object)
        values[:] = ""
    else:
        values = np.zeros(n, dtype=result_type.numpy_dtype)
    valid = np.zeros(n, dtype=bool)
    decided = np.zeros(n, dtype=bool)
    for cond, result in expr.whens:
        if expr.operand is not None:
            cond = BinaryOp("=", expr.operand, cond)
        cond_col = evaluate(cond, batch, registry)
        hit = cond_col.valid & cond_col.values.astype(bool) & ~decided
        if hit.any():
            branch = evaluate(result, batch, registry)
            branch = _adapt_branch(branch, result_type, n)
            values[hit] = branch.values[hit]
            valid[hit] = branch.valid[hit]
        decided |= cond_col.valid & cond_col.values.astype(bool)
    rest = ~decided
    if expr.default is not None and rest.any():
        branch = _adapt_branch(evaluate(expr.default, batch, registry), result_type, n)
        values[rest] = branch.values[rest]
        valid[rest] = branch.valid[rest]
    return Column(result_type, values, valid)


def _adapt_branch(column: Column, target: DataType, n: int) -> Column:
    """Unify a CASE branch with the overall result type (NULL literals and
    INTEGER->FLOAT widening)."""
    if column.dtype is target:
        return column
    if not column.valid.any():  # all-NULL branch, retype freely
        return Column.constant(target, None, n)
    return column.cast(target)


def _eval_in_list(expr: InList, batch: RecordBatch, registry: "FunctionRegistry") -> Column:
    operand = evaluate(expr.operand, batch, registry)
    n = len(operand)
    hit = np.zeros(n, dtype=bool)
    any_null_item = False
    for item in expr.items:
        item_col = evaluate(item, batch, registry)
        if not item_col.valid.any():
            any_null_item = True
            continue
        cmp = _eval_comparison("=", operand, item_col, operand.valid & item_col.valid)
        hit |= cmp.values & cmp.valid
    # SQL semantics: x IN (..) is NULL if x is NULL, or if no match and the
    # list contained NULL.
    valid = operand.valid.copy()
    if any_null_item:
        valid &= hit
    flags = ~hit if expr.negated else hit
    flags = np.where(valid, flags, False)
    return Column(BOOLEAN, flags, valid)


def _like_to_regex(pattern: str) -> "re.Pattern[str]":
    out: list[str] = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _eval_like(expr: LikeExpr, batch: RecordBatch, registry: "FunctionRegistry") -> Column:
    operand = evaluate(expr.operand, batch, registry)
    pattern = evaluate(expr.pattern, batch, registry)
    if operand.dtype is not VARCHAR or pattern.dtype is not VARCHAR:
        raise TypeMismatchError("LIKE requires VARCHAR operands")
    n = len(operand)
    valid = operand.valid & pattern.valid
    flags = np.zeros(n, dtype=bool)
    cache: dict[str, re.Pattern[str]] = {}
    for i in range(n):
        if not valid[i]:
            continue
        pat = pattern.values[i]
        compiled = cache.get(pat)
        if compiled is None:
            compiled = _like_to_regex(pat)
            cache[pat] = compiled
        flags[i] = compiled.match(operand.values[i]) is not None
    if expr.negated:
        flags = np.where(valid, ~flags, False)
    return Column(BOOLEAN, flags, valid)
