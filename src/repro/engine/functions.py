"""Function registry: built-in scalars, aggregate signatures, scalar UDFs.

The registry answers two questions for the planner/executor:

* what is the result type of ``f(args...)`` given argument types?
* given argument :class:`~repro.engine.column.Column` values, what does the
  call evaluate to?

Aggregates are *declared* here (names + result-type rules) but *computed*
inside the Aggregate physical operator, which sees whole groups.  Scalar
UDFs registered by users run row-wise by default; built-ins are vectorized.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.engine.column import Column
from repro.engine.schema import Schema
from repro.engine.types import (
    BOOLEAN,
    FLOAT,
    INTEGER,
    VARCHAR,
    DataType,
    coerce_python_value,
    common_type,
)
from repro.errors import TypeMismatchError, UdfError

__all__ = ["FunctionRegistry", "ScalarUdf", "AGGREGATE_NAMES"]

AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV"})


@dataclass(frozen=True)
class ScalarUdf:
    """A user scalar function.

    Attributes:
        name: SQL-visible name (case-insensitive).
        fn: the Python callable.  Row-wise UDFs receive one Python value per
            argument (``None`` for NULL) and return one value; vectorized
            UDFs receive the argument ``Column`` objects and return a
            ``Column``.
        arg_types: declared argument types (arity is enforced).
        return_type: declared result type.
        vectorized: whether ``fn`` is vectorized.
        strict: row-wise only — if True (default) the function is skipped
            for rows with any NULL argument and returns NULL, like most SQL
            engines' RETURNS NULL ON NULL INPUT.
    """

    name: str
    fn: Callable[..., Any]
    arg_types: tuple[DataType, ...]
    return_type: DataType
    vectorized: bool = False
    strict: bool = True


@dataclass(frozen=True)
class _Builtin:
    name: str
    infer: Callable[[tuple[DataType, ...]], DataType]
    evaluate: Callable[[Sequence[Column]], Column]


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise TypeMismatchError(message)


def _numeric_unary(name: str, np_fn: Callable[[np.ndarray], np.ndarray],
                   result: DataType | None = None) -> _Builtin:
    """A one-argument numeric builtin evaluated directly on the values
    array (NULL positions keep their filler, masked by validity)."""

    def infer(args: tuple[DataType, ...]) -> DataType:
        _require(len(args) == 1 and args[0].is_numeric, f"{name} expects one numeric argument")
        return result or args[0]

    def evaluate(cols: Sequence[Column]) -> Column:
        col = cols[0]
        target = result or col.dtype
        values = np_fn(col.values.astype(np.float64))
        if target is INTEGER:
            values = values.astype(np.int64)
        return Column(target, values.astype(target.numpy_dtype), col.valid.copy())

    return _Builtin(name, infer, evaluate)


def _string_unary(name: str, fn: Callable[[str], Any], result: DataType) -> _Builtin:
    def infer(args: tuple[DataType, ...]) -> DataType:
        _require(len(args) == 1 and args[0] is VARCHAR, f"{name} expects one VARCHAR argument")
        return result

    def evaluate(cols: Sequence[Column]) -> Column:
        col = cols[0]
        if result is VARCHAR:
            out: np.ndarray = np.empty(len(col), dtype=object)
            out[:] = ""
        else:
            out = np.zeros(len(col), dtype=result.numpy_dtype)
        for i, (item, ok) in enumerate(zip(col.values, col.valid)):
            if ok:
                out[i] = fn(item)
        return Column(result, out, col.valid.copy())

    return _Builtin(name, infer, evaluate)


def _variadic_extremum(name: str, np_fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> _Builtin:
    def infer(args: tuple[DataType, ...]) -> DataType:
        _require(len(args) >= 2, f"{name} expects at least two arguments")
        out = args[0]
        for arg in args[1:]:
            out = common_type(out, arg)
        _require(out.is_numeric, f"{name} expects numeric arguments")
        return out

    def evaluate(cols: Sequence[Column]) -> Column:
        target = cols[0].dtype
        for col in cols[1:]:
            target = common_type(target, col.dtype)
        acc = cols[0].values.astype(target.numpy_dtype)
        valid = cols[0].valid.copy()
        for col in cols[1:]:
            acc = np_fn(acc, col.values.astype(target.numpy_dtype))
            valid &= col.valid
        return Column(target, acc, valid)

    return _Builtin(name, infer, evaluate)


def _make_builtins() -> dict[str, _Builtin]:
    builtins: dict[str, _Builtin] = {}

    def add(builtin: _Builtin) -> None:
        builtins[builtin.name] = builtin

    add(_numeric_unary("ABS", np.abs))
    add(_numeric_unary("SQRT", lambda v: np.sqrt(np.maximum(v, 0.0)), FLOAT))
    add(_numeric_unary("EXP", np.exp, FLOAT))
    add(_numeric_unary("LN", lambda v: np.log(np.where(v > 0, v, 1.0)), FLOAT))
    add(_numeric_unary("LOG", lambda v: np.log10(np.where(v > 0, v, 1.0)), FLOAT))
    add(_numeric_unary("FLOOR", np.floor, INTEGER))
    add(_numeric_unary("CEIL", np.ceil, INTEGER))
    add(_numeric_unary("CEILING", np.ceil, INTEGER))
    add(_numeric_unary("SIGN", np.sign, INTEGER))

    def infer_round(args: tuple[DataType, ...]) -> DataType:
        _require(len(args) in (1, 2) and args[0].is_numeric, "ROUND expects ROUND(x [, digits])")
        if len(args) == 2:
            _require(args[1] is INTEGER, "ROUND digits must be INTEGER")
        return FLOAT

    def eval_round(cols: Sequence[Column]) -> Column:
        values = cols[0].values.astype(np.float64)
        valid = cols[0].valid.copy()
        if len(cols) == 2:
            digits = cols[1].values
            valid &= cols[1].valid
            out = np.array(
                [np.round(v, int(d)) for v, d in zip(values, digits)], dtype=np.float64
            )
        else:
            out = np.round(values)
        return Column(FLOAT, out, valid)

    add(_Builtin("ROUND", infer_round, eval_round))

    def infer_power(args: tuple[DataType, ...]) -> DataType:
        _require(len(args) == 2 and all(a.is_numeric for a in args), "POWER expects two numeric arguments")
        return FLOAT

    def eval_power(cols: Sequence[Column]) -> Column:
        base = cols[0].values.astype(np.float64)
        exp = cols[1].values.astype(np.float64)
        return Column(FLOAT, np.power(base, exp), cols[0].valid & cols[1].valid)

    add(_Builtin("POWER", infer_power, eval_power))
    add(_Builtin("POW", infer_power, eval_power))

    def infer_mod(args: tuple[DataType, ...]) -> DataType:
        _require(len(args) == 2 and all(a is INTEGER for a in args), "MOD expects two INTEGER arguments")
        return INTEGER

    def eval_mod(cols: Sequence[Column]) -> Column:
        left = cols[0].values
        right = cols[1].values
        zero = right == 0
        safe = np.where(zero, 1, right)
        return Column(INTEGER, np.mod(left, safe), cols[0].valid & cols[1].valid & ~zero)

    add(_Builtin("MOD", infer_mod, eval_mod))

    add(_string_unary("LENGTH", len, INTEGER))
    add(_string_unary("LOWER", str.lower, VARCHAR))
    add(_string_unary("UPPER", str.upper, VARCHAR))
    add(_string_unary("TRIM", str.strip, VARCHAR))

    def infer_substr(args: tuple[DataType, ...]) -> DataType:
        _require(
            len(args) in (2, 3) and args[0] is VARCHAR and all(a is INTEGER for a in args[1:]),
            "SUBSTR expects (VARCHAR, INTEGER [, INTEGER])",
        )
        return VARCHAR

    def eval_substr(cols: Sequence[Column]) -> Column:
        text = cols[0]
        start = cols[1]
        length = cols[2] if len(cols) == 3 else None
        valid = text.valid & start.valid
        if length is not None:
            valid = valid & length.valid
        out = np.empty(len(text), dtype=object)
        out[:] = ""
        for i in range(len(text)):
            if not valid[i]:
                continue
            begin = max(int(start.values[i]) - 1, 0)  # SQL SUBSTR is 1-based
            if length is None:
                out[i] = text.values[i][begin:]
            else:
                out[i] = text.values[i][begin : begin + int(length.values[i])]
        return Column(VARCHAR, out, valid)

    add(_Builtin("SUBSTR", infer_substr, eval_substr))
    add(_Builtin("SUBSTRING", infer_substr, eval_substr))

    def infer_concat(args: tuple[DataType, ...]) -> DataType:
        _require(len(args) >= 2 and all(a is VARCHAR for a in args), "CONCAT expects VARCHAR arguments")
        return VARCHAR

    def eval_concat(cols: Sequence[Column]) -> Column:
        n = len(cols[0])
        valid = np.ones(n, dtype=bool)
        for col in cols:
            valid &= col.valid
        out = np.empty(n, dtype=object)
        out[:] = ""
        for i in range(n):
            if valid[i]:
                out[i] = "".join(col.values[i] for col in cols)
        return Column(VARCHAR, out, valid)

    add(_Builtin("CONCAT", infer_concat, eval_concat))

    def infer_replace(args: tuple[DataType, ...]) -> DataType:
        _require(len(args) == 3 and all(a is VARCHAR for a in args), "REPLACE expects three VARCHAR arguments")
        return VARCHAR

    def eval_replace(cols: Sequence[Column]) -> Column:
        text, old, new = cols
        valid = text.valid & old.valid & new.valid
        out = np.empty(len(text), dtype=object)
        out[:] = ""
        for i in range(len(text)):
            if valid[i]:
                out[i] = text.values[i].replace(old.values[i], new.values[i])
        return Column(VARCHAR, out, valid)

    add(_Builtin("REPLACE", infer_replace, eval_replace))

    def infer_coalesce(args: tuple[DataType, ...]) -> DataType:
        _require(len(args) >= 1, "COALESCE expects at least one argument")
        out: DataType | None = None
        for arg in args:
            out = arg if out is None else common_type(out, arg)
        assert out is not None
        return out

    def eval_coalesce(cols: Sequence[Column]) -> Column:
        target = cols[0].dtype
        for col in cols[1:]:
            target = common_type(target, col.dtype)
        cols = [col if col.dtype is target else col.cast(target) for col in cols]
        values = cols[0].values.copy()
        valid = cols[0].valid.copy()
        for col in cols[1:]:
            fill = ~valid & col.valid
            values[fill] = col.values[fill]
            valid |= col.valid
        return Column(target, values, valid)

    add(_Builtin("COALESCE", infer_coalesce, eval_coalesce))

    def infer_nullif(args: tuple[DataType, ...]) -> DataType:
        _require(len(args) == 2, "NULLIF expects two arguments")
        return common_type(args[0], args[1])

    def eval_nullif(cols: Sequence[Column]) -> Column:
        left, right = cols
        target = common_type(left.dtype, right.dtype)
        left = left if left.dtype is target else left.cast(target)
        right = right if right.dtype is target else right.cast(target)
        equal = (left.values == right.values) & left.valid & right.valid
        return Column(target, left.values.copy(), left.valid & ~np.asarray(equal, dtype=bool))

    add(_Builtin("NULLIF", infer_nullif, eval_nullif))

    add(_variadic_extremum("LEAST", np.minimum))
    add(_variadic_extremum("GREATEST", np.maximum))
    return builtins


def _aggregate_result_type(name: str, arg: DataType | None) -> DataType:
    if name == "COUNT":
        return INTEGER
    if name in ("AVG", "STDDEV"):
        if arg is None or not arg.is_numeric:
            raise TypeMismatchError(f"{name} expects a numeric argument")
        return FLOAT
    if name == "SUM":
        if arg is None or not arg.is_numeric:
            raise TypeMismatchError("SUM expects a numeric argument")
        return arg
    if name in ("MIN", "MAX"):
        if arg is None:
            raise TypeMismatchError(f"{name} expects an argument")
        return arg
    raise TypeMismatchError(f"unknown aggregate {name!r}")  # pragma: no cover


class FunctionRegistry:
    """Resolves and evaluates scalar calls; declares aggregates.

    One registry lives inside each :class:`~repro.engine.database.Database`,
    so UDF registrations are per-database — like Vertica's per-catalog UDx
    library that the paper's workers are loaded into.
    """

    def __init__(self) -> None:
        self._builtins = _make_builtins()
        self._udfs: dict[str, ScalarUdf] = {}

    # ------------------------------------------------------------------
    # Registration / lookup
    # ------------------------------------------------------------------
    def register_udf(self, udf: ScalarUdf) -> None:
        """Register (or overwrite) a scalar UDF under its upper-cased name.

        Raises:
            UdfError: when the name collides with a built-in or aggregate.
        """
        key = udf.name.upper()
        if key in self._builtins or key in AGGREGATE_NAMES:
            raise UdfError(f"cannot shadow built-in function {key}")
        self._udfs[key] = udf

    def has_function(self, name: str) -> bool:
        """True for built-ins, aggregates, and registered UDFs."""
        key = name.upper()
        return key in self._builtins or key in self._udfs or key in AGGREGATE_NAMES

    def is_aggregate(self, name: str) -> bool:
        """True for COUNT/SUM/AVG/MIN/MAX/STDDEV."""
        return name.upper() in AGGREGATE_NAMES

    @property
    def aggregate_names(self) -> frozenset[str]:
        """The aggregate name set (for tree walks)."""
        return AGGREGATE_NAMES

    # ------------------------------------------------------------------
    # Type inference
    # ------------------------------------------------------------------
    def _adapted_arg_types(
        self, call: "FunctionCall", schema: Schema
    ) -> tuple["DataType", ...]:
        """Argument types with typeless NULL literals adapted to the common
        type of the non-NULL arguments (so ``COALESCE(NULL, 7)`` works)."""
        from repro.engine.expressions import Literal, infer_type

        raw = [infer_type(arg, schema, self) for arg in call.args]
        null_flags = [
            isinstance(arg, Literal) and arg.value is None for arg in call.args
        ]
        if not any(null_flags):
            return tuple(raw)
        non_null = [t for t, is_null in zip(raw, null_flags) if not is_null]
        adaptive: DataType = VARCHAR
        if non_null:
            adaptive = non_null[0]
            for other in non_null[1:]:
                try:
                    adaptive = common_type(adaptive, other)
                except TypeMismatchError:
                    adaptive = non_null[0]
                    break
        return tuple(
            adaptive if is_null else t for t, is_null in zip(raw, null_flags)
        )

    def infer_call_type(self, call: "FunctionCall", schema: Schema) -> DataType:
        """Result type of a call node over rows shaped like ``schema``."""
        from repro.engine.expressions import Star, infer_type

        key = call.name.upper()
        if key in AGGREGATE_NAMES:
            if key == "COUNT" and len(call.args) == 1 and isinstance(call.args[0], Star):
                return INTEGER
            if len(call.args) != 1:
                raise TypeMismatchError(f"{key} expects exactly one argument")
            arg = infer_type(call.args[0], schema, self)
            return _aggregate_result_type(key, arg)
        arg_types = self._adapted_arg_types(call, schema)
        builtin = self._builtins.get(key)
        if builtin is not None:
            return builtin.infer(arg_types)
        udf = self._udfs.get(key)
        if udf is not None:
            self._check_udf_args(udf, arg_types)
            return udf.return_type
        raise TypeMismatchError(f"unknown function {call.name!r}")

    def _check_udf_args(self, udf: ScalarUdf, arg_types: tuple[DataType, ...]) -> None:
        if len(arg_types) != len(udf.arg_types):
            raise UdfError(
                f"{udf.name} expects {len(udf.arg_types)} arguments, got {len(arg_types)}"
            )
        for given, declared in zip(arg_types, udf.arg_types):
            if given is declared:
                continue
            if given is INTEGER and declared is FLOAT:
                continue  # SQL widening
            raise UdfError(
                f"{udf.name}: argument type {given.name} does not match declared {declared.name}"
            )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_call(self, call: "FunctionCall", batch: "RecordBatch") -> Column:
        """Evaluate a scalar call over a batch.  Aggregate names raise —
        the planner must have rewritten them into Aggregate operators."""
        from repro.engine.expressions import Literal, evaluate

        key = call.name.upper()
        if key in AGGREGATE_NAMES:
            raise TypeMismatchError(
                f"aggregate {key} used outside GROUP BY context"
            )
        adapted = self._adapted_arg_types(call, batch.schema)
        args = [
            Column.constant(declared, None, batch.num_rows)
            if isinstance(arg, Literal) and arg.value is None
            else evaluate(arg, batch, self)
            for arg, declared in zip(call.args, adapted)
        ]
        builtin = self._builtins.get(key)
        if builtin is not None:
            return builtin.evaluate(args)
        udf = self._udfs.get(key)
        if udf is not None:
            return self._evaluate_udf(udf, args, batch.num_rows)
        raise TypeMismatchError(f"unknown function {call.name!r}")

    def _evaluate_udf(self, udf: ScalarUdf, args: list[Column], n: int) -> Column:
        widened = [
            arg.cast(declared) if arg.dtype is INTEGER and declared is FLOAT else arg
            for arg, declared in zip(args, udf.arg_types)
        ]
        if udf.vectorized:
            result = udf.fn(*widened)
            if not isinstance(result, Column):
                raise UdfError(f"vectorized UDF {udf.name} must return a Column")
            if result.dtype is not udf.return_type:
                raise UdfError(
                    f"vectorized UDF {udf.name} returned {result.dtype.name}, "
                    f"declared {udf.return_type.name}"
                )
            return result
        arg_lists = [arg.to_list() for arg in widened]
        out: list[Any] = []
        for i in range(n):
            row = [arg_list[i] for arg_list in arg_lists]
            if udf.strict and any(item is None for item in row):
                out.append(None)
                continue
            try:
                value = udf.fn(*row)
            except Exception as exc:  # surface UDF bugs with context
                raise UdfError(f"scalar UDF {udf.name} failed on row {i}: {exc}") from exc
            out.append(coerce_python_value(value, udf.return_type))
        return Column.from_values(udf.return_type, out)
