"""Schemas: ordered, possibly qualified column definitions.

A schema describes the output of a table or operator.  Column names may be
qualified with a table alias (``e.src``) so the planner can resolve
references unambiguously across joins — crucial for the paper's SQL graph
algorithms, which self-join the edge table repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

from repro.engine.types import DataType
from repro.errors import CatalogError

__all__ = ["ColumnDef", "Schema"]


@dataclass(frozen=True)
class ColumnDef:
    """One column of a schema.

    Attributes:
        name: bare column name (``src``).
        dtype: SQL type.
        nullable: whether NULLs are allowed (enforced on insert/update).
        qualifier: optional table alias the column is visible under.
    """

    name: str
    dtype: DataType
    nullable: bool = True
    qualifier: str | None = None

    @property
    def qualified_name(self) -> str:
        """``alias.name`` if qualified, else just ``name``."""
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def with_qualifier(self, qualifier: str | None) -> "ColumnDef":
        """A copy visible under a different (or no) table alias."""
        return replace(self, qualifier=qualifier)

    def renamed(self, name: str) -> "ColumnDef":
        """A copy with a different bare name (used by SELECT aliases)."""
        return replace(self, name=name)


class Schema:
    """An ordered sequence of :class:`ColumnDef` with name resolution.

    Duplicate *qualified* names are rejected at construction; duplicate bare
    names across different qualifiers are fine (that's what joins produce)
    and become ambiguous only when referenced without a qualifier.
    """

    __slots__ = ("columns",)

    def __init__(self, columns: Iterable[ColumnDef]) -> None:
        self.columns: tuple[ColumnDef, ...] = tuple(columns)
        seen: set[str] = set()
        for col in self.columns:
            key = col.qualified_name
            if key in seen:
                raise CatalogError(f"duplicate column name in schema: {key!r}")
            seen.add(key)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[ColumnDef]:
        return iter(self.columns)

    def __getitem__(self, index: int) -> ColumnDef:
        return self.columns[index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{c.qualified_name} {c.dtype.name}" for c in self.columns)
        return f"Schema({inner})"

    def names(self) -> list[str]:
        """Bare column names in order."""
        return [col.name for col in self.columns]

    def dtypes(self) -> list[DataType]:
        """Column types in order."""
        return [col.dtype for col in self.columns]

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def index_of(self, name: str, qualifier: str | None = None) -> int:
        """Resolve a column reference to its position.

        A qualified lookup (``qualifier="e"``) matches only columns under
        that alias.  An unqualified lookup matches on bare name and raises
        if several qualifiers expose that name.

        Raises:
            CatalogError: unknown or ambiguous column.
        """
        matches = [
            i
            for i, col in enumerate(self.columns)
            if col.name == name and (qualifier is None or col.qualifier == qualifier)
        ]
        if not matches:
            shown = f"{qualifier}.{name}" if qualifier else name
            raise CatalogError(f"unknown column: {shown!r}")
        if len(matches) > 1:
            raise CatalogError(f"ambiguous column reference: {name!r}")
        return matches[0]

    def has_column(self, name: str, qualifier: str | None = None) -> bool:
        """True if :meth:`index_of` would succeed unambiguously."""
        try:
            self.index_of(name, qualifier)
        except CatalogError:
            return False
        return True

    def column(self, name: str, qualifier: str | None = None) -> ColumnDef:
        """The :class:`ColumnDef` for a reference (see :meth:`index_of`)."""
        return self.columns[self.index_of(name, qualifier)]

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_qualifier(self, qualifier: str | None) -> "Schema":
        """All columns re-qualified under one alias (FROM t AS x)."""
        return Schema(col.with_qualifier(qualifier) for col in self.columns)

    def unqualified(self) -> "Schema":
        """All qualifiers stripped (the shape of a final result set)."""
        return Schema(col.with_qualifier(None) for col in self.columns)

    def concat(self, other: "Schema") -> "Schema":
        """Columns of ``self`` followed by ``other`` (the shape of a join)."""
        return Schema(tuple(self.columns) + tuple(other.columns))

    def project(self, indices: Sequence[int]) -> "Schema":
        """A schema of the columns at ``indices``, in that order."""
        return Schema(self.columns[i] for i in indices)

    def union_compatible_with(self, other: "Schema") -> bool:
        """True when UNION ALL between the two shapes is legal: same arity
        and pairwise identical types (names may differ; the left side's
        names win, as in standard SQL)."""
        if len(self) != len(other):
            return False
        return all(a.dtype is b.dtype for a, b in zip(self.columns, other.columns))
