"""The Database facade: the public entry point of the engine.

Wires together catalog, parser, planner, executor, function/UDF registries,
transactions, and checkpointing.  A :class:`Database` is the stand-in for
the paper's "industry strength column-oriented database system": everything
Vertexica needs from Vertica — SQL with UDFs, transform functions, stored
procedures, transactions — is available on this object.

Example:
    >>> db = Database()
    >>> db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v FLOAT)")
    <...>
    >>> db.execute("INSERT INTO t VALUES (1, 2.5), (2, 4.5)")
    <...>
    >>> db.execute("SELECT SUM(v) FROM t").scalar()
    7.0
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.engine.batch import RecordBatch
from repro.engine.catalog import Catalog
from repro.engine.changelog import ChangeLog, TableDelta
from repro.engine.executor import Result, StatementExecutor
from repro.engine.expressions import ColumnRef
from repro.engine.functions import FunctionRegistry, ScalarUdf
from repro.engine.operators import (
    BatchSourceOp,
    Operator,
    TransformOp,
    analyze_tree,
    explain_tree,
)
from repro.engine.parallel import PartitionExecutor, serial_executor
from repro.engine.persistence import checkpoint_catalog, restore_catalog
from repro.engine.planner import Planner
from repro.engine.schema import Schema
from repro.engine.sql.ast import SelectStatement, SetOperation
from repro.engine.sql.parser import parse_statement, parse_statements
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.engine.udf import StoredProcedure, TransformUdf, UdfCatalog
from repro.errors import SqlSyntaxError, TransactionError

__all__ = ["Database", "PinnedTable", "Result"]


@dataclass(frozen=True)
class PinnedTable:
    """One table pinned at a point in time for snapshot-isolated reads.

    ``batch`` is the table's contents *at the pinned version* — record
    batches are immutable and every mutation swaps in a fresh batch, so
    holding the reference costs nothing and stays stable no matter what
    the writer does afterwards.  ``(uid, version)`` is the same bookmark
    contract the change log uses (see :mod:`repro.engine.changelog`): a
    later read can prove the live table is still the object, at the
    version, this pin was taken from.
    """

    name: str
    uid: int
    version: int
    batch: RecordBatch
    schema: Schema
    primary_key: str | None

    def as_table(self) -> Table:
        """Materialize a detached :class:`Table` over the pinned batch —
        the copy-on-write handle snapshot readers query against.

        Shares the immutable batch (zero copy), keeps the pinned
        ``(uid, version)`` so nested pins of a shadow database stay
        truthful, and skips constraint re-checking: the data already
        passed it when it entered the live table.
        """
        table = Table.__new__(Table)
        table.name = self.name
        table.schema = self.schema
        table.primary_key = self.primary_key
        table.version = self.version
        table.uid = self.uid
        table.changelog = ChangeLog()
        table._batch = self.batch
        return table


class Database:
    """An in-memory column-oriented relational database."""

    def __init__(self) -> None:
        self.catalog = Catalog()
        self.functions = FunctionRegistry()
        self.udfs = UdfCatalog()
        #: Writer/reader interlock.  Every statement executes under this
        #: re-entrant lock, and :meth:`pin_tables` takes it too, so a
        #: snapshot pin can never observe a half-applied statement.  It
        #: does NOT make multi-statement operations atomic by itself —
        #: compound writers (graph loads, transactions, the serving
        #: tier's write path) hold it across the whole operation.
        self.lock = threading.RLock()
        self._executor = StatementExecutor(self.catalog, self.functions)
        self._tx_snapshot: tuple[dict[str, Table], dict[str, tuple[Any, int]]] | None = None
        #: number of statements executed (observability for tests/benches)
        self.statements_executed = 0
        #: parsed-statement memo — AST nodes are frozen dataclasses with
        #: parameters bound as literals, so (sql, params) fully keys them.
        self._parse_cache: dict[tuple[str, tuple[Any, ...] | None], Any] = {}
        #: statement types dispatched to an external layer (e.g. the
        #: Vertexica layer handles CREATE GRAPH VIEW); see
        #: :meth:`register_statement_handler`.
        self._statement_handlers: dict[type, Callable[["Database", Any], Result]] = {}

    # ------------------------------------------------------------------
    # SQL execution
    # ------------------------------------------------------------------
    @property
    def pushdown(self) -> bool:
        """Whether the planner pushes WHERE conjuncts beneath joins/unions
        toward the scans.  On by default; flip off to A/B plans — pushed
        and unpushed plans return bit-identical batches."""
        return self._executor.planner.pushdown

    @pushdown.setter
    def pushdown(self, value: bool) -> None:
        self._executor.planner.pushdown = bool(value)

    def execute(self, sql: str, params: Sequence[Any] | None = None) -> Result:
        """Parse and run exactly one SQL statement.

        Args:
            sql: the statement text (a single statement).
            params: values for ``?`` placeholders, bound left to right.

        Returns:
            A :class:`Result`: rows for queries, affected count for DML.
        """
        statement = self._parse_cached(sql, params)
        self.statements_executed += 1
        handler = self._statement_handlers.get(type(statement))
        with self.lock:
            if handler is not None:
                return handler(self, statement)
            return self._executor.run(statement)

    def _parse_cached(self, sql: str, params: Sequence[Any] | None):
        """Parse via a bounded memo — the coordinator re-issues identical
        statement texts every superstep, so re-tokenizing them dominates
        small-graph runs otherwise.  Parameter *types* are part of the key:
        ``1``, ``1.0``, and ``True`` compare equal but bind different
        literals into the AST."""
        try:
            key = (
                sql,
                tuple((type(p), p) for p in params) if params is not None else None,
            )
            cached = self._parse_cache.get(key)
        except TypeError:  # unhashable parameter: skip the cache
            return parse_statement(sql, params)
        if cached is not None:
            return cached
        statement = parse_statement(sql, params)
        if len(self._parse_cache) >= 512:
            self._parse_cache.clear()
        self._parse_cache[key] = statement
        return statement

    def execute_script(self, sql: str) -> list[Result]:
        """Run a ';'-separated script, returning one Result per statement."""
        results = []
        with self.lock:
            for statement in parse_statements(sql):
                self.statements_executed += 1
                handler = self._statement_handlers.get(type(statement))
                if handler is not None:
                    results.append(handler(self, statement))
                else:
                    results.append(self._executor.run(statement))
        return results

    def query_batch(self, sql: str, params: Sequence[Any] | None = None) -> RecordBatch:
        """Run a query and return the raw columnar batch (no row
        materialization) — the fast path used by the Vertexica layer."""
        return self.execute(sql, params).batch

    def plan_query(self, sql: str):
        """Parse and plan a SELECT without executing it.

        The returned plan holds direct :class:`Table` references resolved
        under the database lock, so callers may run ``plan.execute()``
        *outside* the lock (batches are immutable); the graph-view
        extraction path plans every lowered query up front this way and
        fans the executions across worker threads.
        """
        statement = self._parse_cached(sql, None)
        if not isinstance(statement, (SelectStatement, SetOperation)):
            raise SqlSyntaxError("plan_query supports only SELECT statements")
        with self.lock:
            self.statements_executed += 1
            return self._executor.planner.plan_select(statement)

    def explain(self, sql: str) -> str:
        """The physical plan of a query as indented text."""
        statement = parse_statement(sql)
        if not isinstance(statement, (SelectStatement, SetOperation)):
            raise SqlSyntaxError("EXPLAIN supports only SELECT statements")
        plan = Planner(
            self.catalog, self.functions, pushdown=self.pushdown
        ).plan_select(statement)
        return explain_tree(plan)

    def explain_analyze(self, sql: str) -> tuple[Result, str]:
        """EXPLAIN ANALYZE: run the query and return its result together
        with the plan annotated per operator with inclusive wall time and
        output row counts."""
        statement = parse_statement(sql)
        if not isinstance(statement, (SelectStatement, SetOperation)):
            raise SqlSyntaxError("EXPLAIN ANALYZE supports only SELECT statements")
        plan = Planner(
            self.catalog, self.functions, pushdown=self.pushdown
        ).plan_select(statement)
        batch, text = analyze_tree(plan)
        self.statements_executed += 1
        return Result(batch=batch), text

    # ------------------------------------------------------------------
    # Catalog conveniences
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        """Direct access to a stored table object."""
        return self.catalog.get(name)

    def has_table(self, name: str) -> bool:
        """True when ``name`` exists in the catalog."""
        return name in self.catalog

    def table_names(self) -> list[str]:
        """Sorted list of table names."""
        return self.catalog.table_names()

    def insert_batch(self, table_name: str, batch: RecordBatch) -> int:
        """Bulk-load a record batch into a table (bypasses SQL parsing —
        this is the engine's COPY path, used by graph loaders)."""
        with self.lock:
            return self.catalog.get(table_name).insert_batch(batch)

    # ------------------------------------------------------------------
    # Change capture (incremental view maintenance)
    # ------------------------------------------------------------------
    def table_state(self, name: str, arm: bool = True) -> tuple[int, int]:
        """``(uid, version)`` of a table — the bookmark a derived view
        records so a later :meth:`changes_since` can prove the deltas it
        gets belong to the same table object it extracted from.

        Taking a bookmark *arms* change capture on the table by default:
        until the first one, mutations record nothing (tables nobody
        derives from pay zero capture overhead).  Pass ``arm=False`` for
        a read-only bookmark — snapshot pinning wants the version/uid
        pair without making every future mutation materialize delta rows
        nothing will consume."""
        table = self.catalog.get(name)
        if arm:
            table.changelog.enable(table.version)
        return table.uid, table.version

    def current_versions(self, names: Sequence[str] | None = None) -> dict[str, int]:
        """Current version per table (all tables when ``names`` is
        ``None``), without arming change capture — the read-only face of
        the version/uid machinery, used by the serving tier to key
        caches and name snapshots.

        Taken under :attr:`lock`, so the mapping is a consistent cut:
        it never interleaves with a half-applied statement.
        """
        with self.lock:
            if names is None:
                names = self.catalog.table_names()
            return {name: self.catalog.get(name).version for name in names}

    def pin_tables(self, names: Sequence[str] | None = None) -> dict[str, PinnedTable]:
        """Pin a consistent snapshot of tables for isolated reads.

        Returns one :class:`PinnedTable` per requested table (all tables
        when ``names`` is ``None``).  Pinning is O(#tables) and copies
        nothing — batches are immutable, mutations swap pointers — and
        runs under :attr:`lock`, so the set is a consistent cut even
        while a writer streams DML from another thread.  Change capture
        is *not* armed.

        Raises:
            CatalogError: a requested table does not exist.
        """
        with self.lock:
            if names is None:
                names = self.catalog.table_names()
            pins: dict[str, PinnedTable] = {}
            for name in names:
                table = self.catalog.get(name)
                pins[table.name] = PinnedTable(
                    name=table.name,
                    uid=table.uid,
                    version=table.version,
                    batch=table.data(),
                    schema=table.schema,
                    primary_key=table.primary_key,
                )
            return pins

    def release_capture(self, name: str) -> None:
        """Disarm change capture on a table and free its retained deltas.

        Call when the last derived consumer of the table is gone; the
        caller is responsible for knowing that (the Vertexica layer does
        this when the final materialized view over a table is dropped).
        A later :meth:`table_state` re-arms capture."""
        if name in self.catalog:
            self.catalog.get(name).changelog.disable()

    def changes_since(self, name: str, uid: int, version: int) -> TableDelta | None:
        """Row deltas of ``name`` since a recorded ``(uid, version)``
        bookmark, or ``None`` when unavailable: the table was dropped and
        recreated (uid mismatch), wholesale-replaced, rolled back, or the
        change log evicted the window — all of which mean the caller must
        recompute from scratch."""
        table = self.catalog.get(name)
        if table.uid != uid:
            return None
        return table.changes_since(version)

    # ------------------------------------------------------------------
    # Functions, transforms, procedures
    # ------------------------------------------------------------------
    def register_function(
        self,
        name: str,
        fn: Callable[..., Any],
        arg_types: Sequence[DataType],
        return_type: DataType,
        vectorized: bool = False,
        strict: bool = True,
    ) -> None:
        """Register a scalar UDF usable from SQL expressions."""
        self.functions.register_udf(
            ScalarUdf(name, fn, tuple(arg_types), return_type, vectorized, strict)
        )

    def register_transform(
        self,
        name: str,
        fn: Callable[[RecordBatch, int], RecordBatch],
        output_schema: Schema,
    ) -> None:
        """Register a transform (table) UDF — the worker container."""
        self.udfs.register_transform(TransformUdf(name, fn, output_schema))

    def run_transform(
        self,
        name: str,
        input_sql: str,
        partition_by: Sequence[str] = (),
        order_by: Sequence[str] = (),
        n_partitions: int = 1,
        executor: PartitionExecutor | None = None,
    ) -> RecordBatch:
        """Run a registered transform UDF over the result of ``input_sql``.

        The input is hash partitioned on ``partition_by`` into
        ``n_partitions`` buckets, each bucket sorted by ``order_by``, and
        the UDF invoked once per non-empty bucket (optionally through a
        parallel ``executor``).  Mirrors Vertica's
        ``SELECT udf(...) OVER (PARTITION BY ...)`` execution.
        """
        udf = self.udfs.get_transform(name)
        source_batch = self.query_batch(input_sql)
        op = TransformOp(
            BatchSourceOp(source_batch),
            udf.fn,
            udf.output_schema,
            [ColumnRef(c) for c in partition_by],
            [ColumnRef(c) for c in order_by],
            n_partitions,
            self.functions,
            executor=executor or serial_executor,
        )
        return op.execute()

    def register_statement_handler(
        self, statement_type: type, handler: Callable[["Database", Any], Result]
    ) -> None:
        """Route a parsed statement type to an external executor.

        Lets higher layers own statements the relational engine cannot
        execute by itself — the Vertexica layer registers handlers for
        ``CREATE GRAPH VIEW`` / ``DROP GRAPH VIEW`` this way.  The handler
        receives ``(db, statement)`` and must return a :class:`Result`.
        """
        self._statement_handlers[statement_type] = handler

    def register_procedure(self, name: str, fn: Callable[..., Any]) -> None:
        """Register a stored procedure: ``fn(db, *args)``."""
        self.udfs.register_procedure(StoredProcedure(name, fn))

    def call(self, name: str, *args: Any) -> Any:
        """Invoke a stored procedure by name."""
        return self.udfs.get_procedure(name).fn(self, *args)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Start a transaction (snapshot of every table; O(#tables)).

        Raises:
            TransactionError: when one is already open.
        """
        with self.lock:
            if self._tx_snapshot is not None:
                raise TransactionError("transaction already in progress")
            self._tx_snapshot = (self.catalog.tables_snapshot(), self.catalog.snapshot())

    def commit(self) -> None:
        """Commit the open transaction.

        Raises:
            TransactionError: when none is open.
        """
        if self._tx_snapshot is None:
            raise TransactionError("no transaction in progress")
        self._tx_snapshot = None

    def rollback(self) -> None:
        """Roll every table back to the :meth:`begin` snapshot: data and
        versions restored, created tables dropped, dropped tables revived.

        Raises:
            TransactionError: when none is open.
        """
        with self.lock:
            if self._tx_snapshot is None:
                raise TransactionError("no transaction in progress")
            tables, data = self._tx_snapshot
            self.catalog.restore_tables(tables)
            self.catalog.restore(data)
            self._tx_snapshot = None

    @property
    def in_transaction(self) -> bool:
        """True while a transaction is open."""
        return self._tx_snapshot is not None

    @contextlib.contextmanager
    def transaction(self) -> Iterator["Database"]:
        """``with db.transaction():`` — commit on success, roll back on
        exception (re-raised)."""
        self.begin()
        try:
            yield self
        except BaseException:
            self.rollback()
            raise
        self.commit()

    # ------------------------------------------------------------------
    # Checkpoint / recovery
    # ------------------------------------------------------------------
    def checkpoint(self, directory: str, metadata: dict[str, Any] | None = None) -> None:
        """Persist every table to ``directory`` (see
        :mod:`repro.engine.persistence` for the format).

        ``metadata`` is an optional JSON-serializable dict stored inside
        the manifest — higher layers persist their own catalogs through it
        (e.g. the Vertexica graph-view registry) and read it back with
        :func:`repro.engine.persistence.read_checkpoint_metadata`.
        """
        checkpoint_catalog(self.catalog, directory, metadata=metadata)

    @classmethod
    def restore(cls, directory: str) -> "Database":
        """Rebuild a database from a checkpoint directory."""
        db = cls()
        db.catalog = restore_catalog(directory)
        db._executor = StatementExecutor(db.catalog, db.functions)
        return db
