"""Transform (table) UDFs and stored procedures.

Transform UDFs are the container Vertexica runs its workers in: the engine
hash-partitions an input relation, sorts each partition, and invokes the
UDF once per partition.  Stored procedures are named Python callables that
receive the owning :class:`~repro.engine.database.Database` and issue SQL
through it — the paper's coordinator is implemented as one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.engine.batch import RecordBatch
from repro.engine.schema import Schema
from repro.errors import UdfError

__all__ = ["TransformUdf", "StoredProcedure", "UdfCatalog"]


@dataclass(frozen=True)
class TransformUdf:
    """A table-to-table user function.

    Attributes:
        name: registration name (case-insensitive).
        fn: ``fn(partition: RecordBatch, partition_index: int) -> RecordBatch``;
            must return rows matching ``output_schema``.
        output_schema: declared output shape, checked per partition.
    """

    name: str
    fn: Callable[[RecordBatch, int], RecordBatch]
    output_schema: Schema


@dataclass(frozen=True)
class StoredProcedure:
    """A named procedure: ``fn(db, *args) -> Any``."""

    name: str
    fn: Callable[..., Any]


class UdfCatalog:
    """Registry of transform UDFs and stored procedures for one database."""

    def __init__(self) -> None:
        self._transforms: dict[str, TransformUdf] = {}
        self._procedures: dict[str, StoredProcedure] = {}

    # -- transforms ------------------------------------------------------
    def register_transform(self, udf: TransformUdf) -> None:
        """Register (or replace) a transform UDF."""
        self._transforms[udf.name.lower()] = udf

    def get_transform(self, name: str) -> TransformUdf:
        """Look up a transform UDF.

        Raises:
            UdfError: unknown name.
        """
        udf = self._transforms.get(name.lower())
        if udf is None:
            raise UdfError(f"unknown transform UDF: {name!r}")
        return udf

    # -- procedures --------------------------------------------------------
    def register_procedure(self, proc: StoredProcedure) -> None:
        """Register (or replace) a stored procedure."""
        self._procedures[proc.name.lower()] = proc

    def get_procedure(self, name: str) -> StoredProcedure:
        """Look up a stored procedure.

        Raises:
            UdfError: unknown name.
        """
        proc = self._procedures.get(name.lower())
        if proc is None:
            raise UdfError(f"unknown stored procedure: {name!r}")
        return proc
