"""Null-aware columnar storage.

A :class:`Column` pairs a numpy values array with a boolean validity mask.
Every physical operator in the engine manipulates columns with vectorized
numpy operations — this is what makes the "column store" substrate honest:
scans, joins, and aggregations work on arrays, not on Python row objects,
mirroring how Vertica gains its performance edge in the paper.

Columns are treated as immutable once constructed.  Operators produce new
columns via :meth:`Column.take`, :meth:`Column.filter`, and
:func:`concat_columns`; this immutability is also what makes transaction
snapshots cheap (see :mod:`repro.engine.transactions`).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.engine.types import (
    BOOLEAN,
    FLOAT,
    INTEGER,
    VARCHAR,
    DataType,
    coerce_python_value,
)
from repro.errors import TypeMismatchError

__all__ = ["Column", "concat_columns"]


class Column:
    """A typed vector of values with an out-of-band NULL mask.

    Attributes:
        dtype: the SQL :class:`~repro.engine.types.DataType` of the column.
        values: numpy array of storage values; positions that are NULL hold
            an arbitrary filler and must never be interpreted.
        valid: boolean numpy array, ``True`` where the value is non-NULL.
    """

    __slots__ = ("dtype", "values", "valid")

    def __init__(self, dtype: DataType, values: np.ndarray, valid: np.ndarray | None = None) -> None:
        if valid is None:
            valid = np.ones(len(values), dtype=bool)
        if len(values) != len(valid):
            raise TypeMismatchError(
                f"values ({len(values)}) and validity mask ({len(valid)}) lengths differ"
            )
        self.dtype = dtype
        self.values = values
        self.valid = valid

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, dtype: DataType, items: Iterable[Any]) -> "Column":
        """Build a column from Python values, treating ``None`` as NULL.

        Each value is validated against ``dtype`` via
        :func:`~repro.engine.types.coerce_python_value`, so a bad row fails
        fast with :class:`~repro.errors.TypeMismatchError`.
        """
        coerced = [coerce_python_value(item, dtype) for item in items]
        valid = np.array([item is not None for item in coerced], dtype=bool)
        filler = dtype.default_value()
        storage = [filler if item is None else item for item in coerced]
        if dtype is VARCHAR:
            values = np.empty(len(storage), dtype=object)
            values[:] = storage
        else:
            values = np.array(storage, dtype=dtype.numpy_dtype)
        return cls(dtype, values, valid)

    @classmethod
    def from_numpy(cls, dtype: DataType, values: np.ndarray, valid: np.ndarray | None = None) -> "Column":
        """Wrap an existing numpy array without copying.

        The caller guarantees the array's dtype matches ``dtype``; integer
        arrays are normalized to int64 and floats to float64 so that joins
        and comparisons never hit cross-width surprises.
        """
        if dtype is VARCHAR:
            if values.dtype != object:
                values = values.astype(object)
        elif values.dtype != dtype.numpy_dtype:
            values = values.astype(dtype.numpy_dtype)
        return cls(dtype, values, valid)

    @classmethod
    def empty(cls, dtype: DataType) -> "Column":
        """A zero-length column of ``dtype``."""
        return cls.from_values(dtype, [])

    @classmethod
    def constant(cls, dtype: DataType, value: Any, length: int) -> "Column":
        """A column repeating one value (or NULL) ``length`` times."""
        if value is None:
            filler = dtype.default_value()
            if dtype is VARCHAR:
                values = np.empty(length, dtype=object)
                values[:] = filler
            else:
                values = np.full(length, filler, dtype=dtype.numpy_dtype)
            return cls(dtype, values, np.zeros(length, dtype=bool))
        coerced = coerce_python_value(value, dtype)
        if dtype is VARCHAR:
            values = np.empty(length, dtype=object)
            values[:] = coerced
        else:
            values = np.full(length, coerced, dtype=dtype.numpy_dtype)
        return cls(dtype, values, np.ones(length, dtype=bool))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.to_list())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        preview = ", ".join(repr(item) for item in self.to_list()[:8])
        suffix = ", ..." if len(self) > 8 else ""
        return f"Column({self.dtype.name}, [{preview}{suffix}])"

    def null_count(self) -> int:
        """Number of NULL entries."""
        return int(len(self.valid) - np.count_nonzero(self.valid))

    def has_nulls(self) -> bool:
        """True if at least one entry is NULL."""
        return not bool(self.valid.all())

    def value_at(self, index: int) -> Any:
        """The Python value at ``index`` (``None`` for NULL)."""
        if not self.valid[index]:
            return None
        return self._to_python(self.values[index])

    def to_list(self) -> list[Any]:
        """Materialize the column as a list of Python values with ``None``
        for NULLs.  Used at result boundaries, never inside operators."""
        if not self.has_nulls():
            return [self._to_python(item) for item in self.values]
        return [
            self._to_python(item) if ok else None
            for item, ok in zip(self.values, self.valid)
        ]

    def _to_python(self, item: Any) -> Any:
        if self.dtype is INTEGER:
            return int(item)
        if self.dtype is FLOAT:
            return float(item)
        if self.dtype is BOOLEAN:
            return bool(item)
        return item

    # ------------------------------------------------------------------
    # Vectorized transforms (operators build new columns from these)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by position; the backbone of joins and sorts."""
        return Column(self.dtype, self.values[indices], self.valid[indices])

    def filter(self, mask: np.ndarray) -> "Column":
        """Keep rows where ``mask`` is True; the backbone of selections."""
        return Column(self.dtype, self.values[mask], self.valid[mask])

    def cast(self, target: DataType) -> "Column":
        """Cast to another type.

        Supported casts: numeric widening/narrowing (FLOAT<->INTEGER, with
        truncation toward zero), anything -> VARCHAR (SQL rendering), and
        VARCHAR -> numeric (parse, raising on garbage).
        """
        if target is self.dtype:
            return self
        if self.dtype.is_numeric and target.is_numeric:
            return Column(target, self.values.astype(target.numpy_dtype), self.valid.copy())
        if target is VARCHAR:
            out = np.empty(len(self), dtype=object)
            for i, (item, ok) in enumerate(zip(self.values, self.valid)):
                out[i] = self._render_sql_text(item) if ok else ""
            return Column(VARCHAR, out, self.valid.copy())
        if self.dtype is VARCHAR and target.is_numeric:
            out = np.zeros(len(self), dtype=target.numpy_dtype)
            for i, (item, ok) in enumerate(zip(self.values, self.valid)):
                if not ok:
                    continue
                try:
                    out[i] = target.python_type(item)
                except ValueError as exc:
                    raise TypeMismatchError(
                        f"cannot cast {item!r} to {target.name}"
                    ) from exc
            return Column(target, out, self.valid.copy())
        if self.dtype is BOOLEAN and target.is_numeric:
            return Column(target, self.values.astype(target.numpy_dtype), self.valid.copy())
        raise TypeMismatchError(f"unsupported cast: {self.dtype.name} -> {target.name}")

    def _render_sql_text(self, item: Any) -> str:
        if self.dtype is BOOLEAN:
            return "true" if item else "false"
        if self.dtype is INTEGER:
            return str(int(item))
        if self.dtype is FLOAT:
            return repr(float(item))
        return str(item)

    # ------------------------------------------------------------------
    # Equality (used heavily in tests)
    # ------------------------------------------------------------------
    def equals(self, other: "Column") -> bool:
        """Exact equality: same type, same NULL positions, same values at
        every non-NULL position."""
        if self.dtype is not other.dtype or len(self) != len(other):
            return False
        if not np.array_equal(self.valid, other.valid):
            return False
        mask = self.valid
        if self.dtype is VARCHAR:
            return all(a == b for a, b in zip(self.values[mask], other.values[mask]))
        return bool(np.array_equal(self.values[mask], other.values[mask]))


def concat_columns(columns: Sequence[Column]) -> Column:
    """Concatenate columns of identical type; the backbone of UNION ALL."""
    if not columns:
        raise TypeMismatchError("cannot concatenate zero columns")
    dtype = columns[0].dtype
    for col in columns[1:]:
        if col.dtype is not dtype:
            raise TypeMismatchError(
                f"UNION of incompatible column types: {dtype.name} vs {col.dtype.name}"
            )
    if len(columns) == 1:
        return columns[0]
    values = np.concatenate([col.values for col in columns])
    valid = np.concatenate([col.valid for col in columns])
    if dtype is VARCHAR and values.dtype != object:  # empty-object edge case
        values = values.astype(object)
    return Column(dtype, values, valid)
