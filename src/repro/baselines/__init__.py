"""``repro.baselines`` — the comparison systems from Figure 2.

* :mod:`repro.baselines.giraph` — a Giraph-like BSP engine: hash-partitioned
  workers, sender-side combiners, serialized message shuffles, and a
  synchronization barrier per superstep.
* :mod:`repro.baselines.graphdb` — a Neo4j-like transactional property-graph
  store with a write-ahead log and traversal-based algorithms.

See DESIGN.md §2 for what each simulation charges for and why that
preserves the paper's relative ordering.
"""

from repro.baselines.giraph import GiraphConfig, GiraphEngine, GiraphResult
from repro.baselines.graphdb import PropertyGraphStore

__all__ = ["GiraphEngine", "GiraphConfig", "GiraphResult", "PropertyGraphStore"]
