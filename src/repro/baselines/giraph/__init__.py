"""A Giraph-like in-memory BSP engine (the paper's main comparison system).

Runs the *same* :class:`~repro.core.program.VertexProgram` objects as
Vertexica, but on a dedicated vertex-centric runtime instead of a
relational engine: vertices are hash partitioned across workers, messages
are combined at the sender, serialized (pickled) per worker pair to model
the network shuffle, and every superstep ends at a synchronization
barrier with a configurable coordination latency — the costs that
dominate real Giraph deployments at these graph sizes.
"""

from repro.baselines.giraph.engine import GiraphConfig, GiraphEngine, GiraphResult

__all__ = ["GiraphEngine", "GiraphConfig", "GiraphResult"]
