"""The Giraph-like BSP engine.

Architecture (mirroring Apache Giraph's compute model):

* the vertex set is hash partitioned over ``n_workers`` workers;
* each superstep, every worker runs the compute function over its active
  vertices and buffers outgoing messages per destination worker;
* combiners (when the program declares one) run at the *sender* worker,
  as Giraph's ``MessageCombiner`` does;
* at the barrier, each (sender, receiver) buffer crosses the simulated
  network: it is serialized with :mod:`pickle` and deserialized on the
  other side (real CPU cost, byte counts recorded), and one configurable
  coordination latency is charged per superstep — the ZooKeeper barrier
  + RPC setup cost that dominates Giraph on small inputs and explains
  the paper's "4x faster on the small graph, comparable on large".

Execution within a superstep is deterministic: workers are processed in
index order and vertices in id order, so results are bit-identical to
Vertexica's for the same program.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.api import OutEdge, Vertex
from repro.core.metrics import RunStats, SuperstepStats
from repro.core.program import VertexProgram
from repro.errors import BaselineError

__all__ = ["GiraphConfig", "GiraphEngine", "GiraphResult"]

#: Safety cap when the program declares no superstep bound.
SUPERSTEP_SAFETY_LIMIT = 10_000


@dataclass(frozen=True)
class GiraphConfig:
    """Runtime knobs of the BSP engine.

    Attributes:
        n_workers: number of simulated workers (hash partitions).
        barrier_latency_s: coordination latency charged once per superstep
            (simulates the ZooKeeper barrier + RPC round of a real
            deployment; set 0.0 for pure-compute measurements).
        serialize_messages: pickle/unpickle message buffers between
            workers (the shuffle's real serialization cost).  Disabling it
            models an ideal zero-copy network.
        track_metrics: collect per-superstep statistics.
    """

    n_workers: int = 4
    barrier_latency_s: float = 0.1
    serialize_messages: bool = True
    track_metrics: bool = True

    def validated(self) -> "GiraphConfig":
        """Self, after invariant checks."""
        if self.n_workers < 1:
            raise BaselineError("n_workers must be >= 1")
        if self.barrier_latency_s < 0:
            raise BaselineError("barrier_latency_s must be >= 0")
        return self


@dataclass
class GiraphResult:
    """Output of one Giraph-baseline run."""

    values: dict[int, Any]
    stats: RunStats
    bytes_shuffled: int = 0


class GiraphEngine:
    """An in-memory vertex-centric runtime over one graph.

    The graph is stored as CSR adjacency (numpy offsets + targets), the
    closest analogue of Giraph's in-memory partition stores.
    """

    def __init__(
        self,
        num_vertices: int,
        src: Sequence[int] | np.ndarray,
        dst: Sequence[int] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
        config: GiraphConfig | None = None,
    ) -> None:
        self.config = (config or GiraphConfig()).validated()
        self.num_vertices = int(num_vertices)
        src_arr = np.asarray(src, dtype=np.int64)
        dst_arr = np.asarray(dst, dtype=np.int64)
        if src_arr.shape != dst_arr.shape:
            raise BaselineError("src and dst arrays differ in length")
        if len(src_arr) and (src_arr.max(initial=0) >= num_vertices or dst_arr.max(initial=0) >= num_vertices):
            raise BaselineError("edge endpoint exceeds num_vertices")
        if weights is None:
            weight_arr = np.ones(len(src_arr), dtype=np.float64)
        else:
            weight_arr = np.asarray(weights, dtype=np.float64)
        order = np.argsort(src_arr, kind="stable")
        self._targets = dst_arr[order]
        self._weights = weight_arr[order]
        counts = np.bincount(src_arr, minlength=num_vertices)
        self._offsets = np.concatenate(([0], np.cumsum(counts)))

    # ------------------------------------------------------------------
    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> None:
        """Not supported — documenting the paper's §3.3 contrast in code:
        "graph processing systems, such as Giraph, have no clear method of
        updating the graphs it analyzes."  Reload the engine with a new
        edge list instead (or use Vertexica, where mutation is SQL DML).

        Raises:
            BaselineError: always.
        """
        raise BaselineError(
            "the Giraph baseline cannot mutate a loaded graph (per the "
            "paper's §3.3); rebuild the engine or use Vertexica's "
            "GraphMutator"
        )

    def remove_edge(self, src: int, dst: int) -> None:
        """Not supported; see :meth:`add_edge`.

        Raises:
            BaselineError: always.
        """
        raise BaselineError(
            "the Giraph baseline cannot mutate a loaded graph (per the "
            "paper's §3.3); rebuild the engine or use Vertexica's "
            "GraphMutator"
        )

    def out_edges(self, vertex_id: int) -> list[OutEdge]:
        """Materialize the out-edge list of one vertex."""
        start, stop = self._offsets[vertex_id], self._offsets[vertex_id + 1]
        return [
            OutEdge(int(t), float(w))
            for t, w in zip(self._targets[start:stop], self._weights[start:stop])
        ]

    def _worker_of(self, vertex_id: int) -> int:
        return vertex_id % self.config.n_workers

    # ------------------------------------------------------------------
    def run(self, program: VertexProgram, graph_name: str = "graph") -> GiraphResult:
        """Execute a vertex program to quiescence (or its superstep cap)."""
        program.validate()
        config = self.config
        n = self.num_vertices
        n_workers = config.n_workers
        stats = RunStats(program=program.name, graph=graph_name)
        started = time.perf_counter()

        degrees = np.diff(self._offsets)
        values: list[Any] = [
            program.initial_value(v, int(degrees[v]), n) for v in range(n)
        ]
        halted = np.zeros(n, dtype=bool)
        #: per-vertex inbox of (sender, value) pairs — the sender travels
        #: beside the payload, like Vertexica's message-table src column.
        inboxes: list[list[tuple[int, Any]]] = [[] for _ in range(n)]
        worker_vertices = [
            [v for v in range(n) if self._worker_of(v) == w] for w in range(n_workers)
        ]

        limit = program.max_supersteps
        hard_cap = limit if limit is not None else SUPERSTEP_SAFETY_LIMIT
        bytes_shuffled = 0
        aggregated: dict[str, float] = {}
        superstep = 0
        while True:
            has_messages = any(inboxes[v] for v in range(n))
            if superstep > 0 and not has_messages and halted.all():
                break
            if limit is not None and superstep >= limit:
                break
            if superstep >= hard_cap:
                raise BaselineError(
                    f"superstep safety limit ({hard_cap}) exceeded by {program.name}"
                )
            step_started = time.perf_counter()
            messages_in = sum(len(inboxes[v]) for v in range(n))

            # Outgoing buffers: [sender_worker][receiver_worker] ->
            # [(dst, sender, value)]
            buffers: list[list[list[tuple[int, int, Any]]]] = [
                [[] for _ in range(n_workers)] for _ in range(n_workers)
            ]
            ran = 0
            agg_partials: dict[str, list[float]] = {}
            for w in range(n_workers):
                out_buffers = buffers[w]
                for v in worker_vertices[w]:
                    messages = inboxes[v]
                    if superstep > 0 and not messages and halted[v]:
                        continue
                    vertex = Vertex(
                        v, values[v], self.out_edges(v),
                        [value for _, value in messages],
                        superstep, n, bool(halted[v]),
                        aggregated=aggregated,
                        senders=[sender for sender, _ in messages],
                    )
                    program.compute(vertex)
                    ran += 1
                    _, values[v] = vertex.collect_value_update()
                    halted[v] = vertex.collect_halt_vote()
                    for dst, value in vertex.collect_outbox():
                        out_buffers[self._worker_of(dst)].append((dst, v, value))
                    for name, value in vertex.collect_aggregates():
                        if name not in program.aggregators:
                            raise BaselineError(
                                f"undeclared aggregator {name!r}"
                            )
                        agg_partials.setdefault(name, []).append(value)
                    inboxes[v] = []
            aggregated = {
                name: program.reduce_aggregate(program.aggregators[name], vals)
                for name, vals in agg_partials.items()
            }

            # Sender-side combining, then the shuffle.
            messages_out = 0
            messages_precombine = 0
            for w in range(n_workers):
                for r in range(n_workers):
                    buffer = buffers[w][r]
                    if not buffer:
                        continue
                    messages_precombine += len(buffer)
                    if program.combiner is not None:
                        buffer = _combine_buffer(program, buffer)
                    if config.serialize_messages:
                        payload = pickle.dumps(buffer, protocol=pickle.HIGHEST_PROTOCOL)
                        bytes_shuffled += len(payload)
                        buffer = pickle.loads(payload)
                    messages_out += len(buffer)
                    for dst, sender, value in buffer:
                        inboxes[dst].append((sender, value))

            if config.barrier_latency_s:
                time.sleep(config.barrier_latency_s)

            if config.track_metrics:
                stats.supersteps.append(
                    SuperstepStats(
                        superstep=superstep,
                        active_vertices=ran,
                        messages_in=messages_in,
                        messages_out=messages_out,
                        vertex_updates=ran,
                        update_path="memory",
                        seconds=time.perf_counter() - step_started,
                        aggregated=tuple(sorted(aggregated.items())),
                        messages_precombine=messages_precombine,
                    )
                )
            superstep += 1

        stats.total_seconds = time.perf_counter() - started
        return GiraphResult(
            values={v: values[v] for v in range(n)},
            stats=stats,
            bytes_shuffled=bytes_shuffled,
        )


def _combine_buffer(
    program: VertexProgram, buffer: list[tuple[int, int, Any]]
) -> list[tuple[int, int, Any]]:
    """Apply the program's combiner per destination (sender-side); the
    combined message carries the smallest contributing sender id,
    mirroring Vertexica's ``MIN(vid)`` in the combining GROUP BY."""
    grouped: dict[int, list[tuple[int, Any]]] = {}
    for dst, sender, value in buffer:
        grouped.setdefault(dst, []).append((sender, value))
    return [
        (
            dst,
            min(sender for sender, _ in items),
            items[0][1]
            if len(items) == 1
            else program.combine([value for _, value in items]),
        )
        for dst, items in grouped.items()
    ]
