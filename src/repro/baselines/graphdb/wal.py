"""Write-ahead log for the property-graph store.

Every mutating operation is appended as a JSON line *before* it is applied
(write-ahead); a commit marker with the transaction id seals the batch and
the file is flushed.  Recovery replays committed transactions in order and
discards uncommitted tails — exercised by the store's tests.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator

from repro.errors import GraphDbError

__all__ = ["WriteAheadLog"]


class WriteAheadLog:
    """An append-only JSON-lines log with commit/abort markers."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")
        self.appends = 0
        self.flushes = 0

    # ------------------------------------------------------------------
    def log_operation(self, tx_id: int, op: str, payload: dict[str, Any]) -> None:
        """Append one operation record (not yet durable)."""
        record = {"tx": tx_id, "op": op, **payload}
        self._fh.write(json.dumps(record) + "\n")
        self.appends += 1

    def log_commit(self, tx_id: int) -> None:
        """Append the commit marker and flush — the durability point."""
        self._fh.write(json.dumps({"tx": tx_id, "op": "commit"}) + "\n")
        self._fh.flush()
        self.appends += 1
        self.flushes += 1

    def log_abort(self, tx_id: int) -> None:
        """Append an abort marker (uncommitted ops are ignored on replay)."""
        self._fh.write(json.dumps({"tx": tx_id, "op": "abort"}) + "\n")
        self._fh.flush()
        self.appends += 1
        self.flushes += 1

    def close(self) -> None:
        """Close the underlying file."""
        if not self._fh.closed:
            self._fh.close()

    # ------------------------------------------------------------------
    @staticmethod
    def replay(path: str) -> Iterator[dict[str, Any]]:
        """Yield the operations of committed transactions, in log order.

        Raises:
            GraphDbError: when the log file does not exist.
        """
        if not os.path.exists(path):
            raise GraphDbError(f"no WAL at {path!r}")
        pending: dict[int, list[dict[str, Any]]] = {}
        committed: list[dict[str, Any]] = []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                tx_id = record["tx"]
                op = record["op"]
                if op == "commit":
                    committed.extend(pending.pop(tx_id, []))
                elif op == "abort":
                    pending.pop(tx_id, None)
                else:
                    pending.setdefault(tx_id, []).append(record)
        return iter(committed)
