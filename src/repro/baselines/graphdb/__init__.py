"""A transactional property-graph database (the Neo4j stand-in).

Per-object nodes and relationships, ACID-ish transactions with an on-disk
write-ahead log, and traversal-based algorithm implementations.  The paper
uses "a transactional graph database system" as its slowest baseline —
the costs this stand-in charges (per-object traversal, per-transaction WAL
appends and flushes, undo logging) are the same architectural costs, minus
the 2014 disk latencies, so the ordering in Figure 2 is preserved even
though absolute gaps compress (documented in EXPERIMENTS.md).
"""

from repro.baselines.graphdb.algorithms import (
    graphdb_pagerank,
    graphdb_shortest_paths,
    graphdb_wcc,
)
from repro.baselines.graphdb.store import (
    Node,
    PropertyGraphStore,
    Relationship,
    StoreConfig,
)

__all__ = [
    "PropertyGraphStore",
    "StoreConfig",
    "Node",
    "Relationship",
    "graphdb_pagerank",
    "graphdb_shortest_paths",
    "graphdb_wcc",
]
