"""The property-graph store: nodes, relationships, transactions.

Mirrors an embedded 2014-era Neo4j: every entity is a heap object with a
property dictionary, every mutation happens inside a transaction that
write-ahead-logs its operations and keeps an in-memory undo list, and
traversal walks per-object adjacency lists.  A configurable capacity cap
lets the benchmark harness mirror the paper's "the graph database runs
only for the smallest graph".
"""

from __future__ import annotations

import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.baselines.graphdb.wal import WriteAheadLog
from repro.errors import GraphDbCapacityError, GraphDbError

__all__ = ["Node", "Relationship", "StoreConfig", "PropertyGraphStore"]


class Relationship:
    """A directed, typed edge with properties."""

    __slots__ = ("start", "end", "rel_type", "properties")

    def __init__(self, start: int, end: int, rel_type: str, properties: dict[str, Any]) -> None:
        self.start = start
        self.end = end
        self.rel_type = rel_type
        self.properties = properties

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"({self.start})-[:{self.rel_type}]->({self.end})"


class Node:
    """A vertex object with properties and adjacency lists."""

    __slots__ = ("id", "properties", "out_rels", "in_rels")

    def __init__(self, node_id: int) -> None:
        self.id = node_id
        self.properties: dict[str, Any] = {}
        self.out_rels: list[Relationship] = []
        self.in_rels: list[Relationship] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.id}, out={len(self.out_rels)}, in={len(self.in_rels)})"


@dataclass(frozen=True)
class StoreConfig:
    """Store limits and placement.

    Attributes:
        wal_path: WAL file location; ``None`` = a fresh temp file.
        max_nodes / max_relationships: capacity caps (``None`` = unlimited).
            The Figure 2 harness sets these to mirror the paper's DNFs.
        access_latency_s: simulated store-access latency charged per node
            lookup and per relationship record read.  The 2014 comparison
            system was a disk-backed store accessed through a query layer;
            a RAM-resident Python dict hides that cost entirely, so the
            store charges a configurable latency per access (accumulated
            and slept off in ~1 ms chunks to respect OS timer granularity).
            Default 200 us, matching the paper's implied per-edge cost
            (589 s PageRank over 2.28 M edges — see EXPERIMENTS.md).  Set
            0.0 for pure-algorithm measurements and in unit tests.
    """

    wal_path: str | None = None
    max_nodes: int | None = None
    max_relationships: int | None = None
    access_latency_s: float = 200e-6


class _Transaction:
    """One transaction: WAL-ahead logging plus an undo list."""

    def __init__(self, store: "PropertyGraphStore", tx_id: int) -> None:
        self.store = store
        self.tx_id = tx_id
        self._undo: list[Callable[[], None]] = []
        self.closed = False

    # -- mutations -------------------------------------------------------
    def create_node(self, node_id: int) -> Node:
        """Create a node (id must be new).

        Raises:
            GraphDbError: duplicate id.
            GraphDbCapacityError: store is full.
        """
        store = self.store
        if node_id in store._nodes:
            raise GraphDbError(f"node {node_id} already exists")
        cap = store.config.max_nodes
        if cap is not None and len(store._nodes) >= cap:
            raise GraphDbCapacityError(
                f"store capacity of {cap} nodes exceeded"
            )
        store.wal.log_operation(self.tx_id, "create_node", {"id": node_id})
        node = Node(node_id)
        store._nodes[node_id] = node
        self._undo.append(lambda: store._nodes.pop(node_id, None))
        return node

    def create_relationship(
        self, start: int, end: int, rel_type: str = "LINKS", **properties: Any
    ) -> Relationship:
        """Create a directed relationship between existing nodes.

        Raises:
            GraphDbError: unknown endpoint.
            GraphDbCapacityError: store is full.
        """
        store = self.store
        start_node = store.node(start)
        end_node = store.node(end)
        cap = store.config.max_relationships
        if cap is not None and store._n_relationships >= cap:
            raise GraphDbCapacityError(
                f"store capacity of {cap} relationships exceeded"
            )
        store.wal.log_operation(
            self.tx_id,
            "create_rel",
            {"start": start, "end": end, "type": rel_type, "props": properties},
        )
        rel = Relationship(start, end, rel_type, dict(properties))
        start_node.out_rels.append(rel)
        end_node.in_rels.append(rel)
        store._n_relationships += 1

        def undo() -> None:
            start_node.out_rels.remove(rel)
            end_node.in_rels.remove(rel)
            store._n_relationships -= 1

        self._undo.append(undo)
        return rel

    def set_property(self, node_id: int, key: str, value: Any) -> None:
        """Set one node property."""
        store = self.store
        node = store.node(node_id)
        store.wal.log_operation(
            self.tx_id, "set_prop", {"id": node_id, "key": key, "value": value}
        )
        had_key = key in node.properties
        old = node.properties.get(key)
        node.properties[key] = value

        def undo() -> None:
            if had_key:
                node.properties[key] = old
            else:
                node.properties.pop(key, None)

        self._undo.append(undo)

    # -- lifecycle -------------------------------------------------------
    def commit(self) -> None:
        """Seal the transaction (WAL commit marker + flush)."""
        self._ensure_open()
        self.store.wal.log_commit(self.tx_id)
        self.closed = True
        self.store._active_tx = None

    def rollback(self) -> None:
        """Undo every operation, newest first, and mark the tx aborted."""
        self._ensure_open()
        for undo in reversed(self._undo):
            undo()
        self.store.wal.log_abort(self.tx_id)
        self.closed = True
        self.store._active_tx = None

    def _ensure_open(self) -> None:
        if self.closed:
            raise GraphDbError("transaction already closed")


class PropertyGraphStore:
    """The embedded graph database."""

    def __init__(self, config: StoreConfig | None = None) -> None:
        self.config = config or StoreConfig()
        path = self.config.wal_path
        if path is None:
            fd, path = tempfile.mkstemp(prefix="graphdb_wal_", suffix=".jsonl")
            os.close(fd)
            self._owns_wal_file = True
        else:
            self._owns_wal_file = False
        self.wal = WriteAheadLog(path)
        self._nodes: dict[int, Node] = {}
        self._n_relationships = 0
        self._next_tx_id = 1
        self._active_tx: _Transaction | None = None
        self._pending_latency = 0.0
        #: total simulated latency charged so far (observability)
        self.simulated_latency_s = 0.0

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _charge_access(self, count: int = 1) -> None:
        """Accumulate ``count`` access latencies; sleep them off in >=1 ms
        chunks so the simulation is cheap to administer."""
        latency = self.config.access_latency_s
        if latency <= 0.0:
            return
        charge = latency * count
        self._pending_latency += charge
        self.simulated_latency_s += charge
        if self._pending_latency >= 0.001:
            time.sleep(self._pending_latency)
            self._pending_latency = 0.0

    def node(self, node_id: int) -> Node:
        """Look up a node (charges one simulated store access).

        Raises:
            GraphDbError: unknown id.
        """
        self._charge_access()
        node = self._nodes.get(node_id)
        if node is None:
            raise GraphDbError(f"unknown node {node_id}")
        return node

    def out_relationships(self, node_id: int) -> list[Relationship]:
        """A node's outgoing relationships (charges one access per
        relationship record, as reading them from store pages would)."""
        node = self.node(node_id)
        self._charge_access(len(node.out_rels))
        return node.out_rels

    def in_relationships(self, node_id: int) -> list[Relationship]:
        """A node's incoming relationships (charged like
        :meth:`out_relationships`)."""
        node = self.node(node_id)
        self._charge_access(len(node.in_rels))
        return node.in_rels

    def has_node(self, node_id: int) -> bool:
        """True when the node exists."""
        return node_id in self._nodes

    def node_ids(self) -> list[int]:
        """All node ids, sorted (deterministic iteration order)."""
        return sorted(self._nodes)

    @property
    def num_nodes(self) -> int:
        """Node count."""
        return len(self._nodes)

    @property
    def num_relationships(self) -> int:
        """Relationship count."""
        return self._n_relationships

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self) -> _Transaction:
        """Open a transaction.

        Raises:
            GraphDbError: when one is already active (single-writer store).
        """
        if self._active_tx is not None and not self._active_tx.closed:
            raise GraphDbError("a transaction is already active")
        tx = _Transaction(self, self._next_tx_id)
        self._next_tx_id += 1
        self._active_tx = tx
        return tx

    @contextmanager
    def transaction(self) -> Iterator[_Transaction]:
        """``with store.transaction() as tx:`` — commit on success,
        rollback on exception (re-raised)."""
        tx = self.begin()
        try:
            yield tx
        except BaseException:
            if not tx.closed:
                tx.rollback()
            raise
        if not tx.closed:
            tx.commit()

    # ------------------------------------------------------------------
    # Bulk loading / lifecycle
    # ------------------------------------------------------------------
    def load_edge_list(
        self,
        src: Iterator[int] | Any,
        dst: Iterator[int] | Any,
        weights: Any = None,
        rel_type: str = "LINKS",
        batch_size: int = 10_000,
    ) -> None:
        """Import an edge list in committed batches (as ``neo4j-import``
        style loaders do), creating endpoint nodes on demand."""
        src = list(src)
        dst = list(dst)
        weight_list = list(weights) if weights is not None else [1.0] * len(src)
        for start in range(0, len(src), batch_size):
            with self.transaction() as tx:
                for i in range(start, min(start + batch_size, len(src))):
                    a, b = int(src[i]), int(dst[i])
                    if a not in self._nodes:
                        tx.create_node(a)
                    if b not in self._nodes:
                        tx.create_node(b)
                    tx.create_relationship(a, b, rel_type, weight=float(weight_list[i]))

    @classmethod
    def recover(cls, wal_path: str, config: StoreConfig | None = None) -> "PropertyGraphStore":
        """Rebuild a store from a write-ahead log.

        Replays the operations of *committed* transactions in log order;
        an uncommitted tail (a crash mid-transaction) is discarded, which
        is exactly the recovery guarantee the WAL exists to provide.

        The recovered store appends to a fresh temp WAL (not the source
        file) unless ``config`` names one.
        """
        store = cls(config or StoreConfig(access_latency_s=0.0))
        with store.transaction() as tx:
            for op in WriteAheadLog.replay(wal_path):
                if op["op"] == "create_node":
                    tx.create_node(op["id"])
                elif op["op"] == "create_rel":
                    tx.create_relationship(
                        op["start"], op["end"], op["type"], **op["props"]
                    )
                elif op["op"] == "set_prop":
                    tx.set_property(op["id"], op["key"], op["value"])
        return store

    def close(self) -> None:
        """Close the WAL (and delete it when the store created it)."""
        self.wal.close()
        if self._owns_wal_file and os.path.exists(self.wal.path):
            os.unlink(self.wal.path)

    def __enter__(self) -> "PropertyGraphStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
