"""Graph algorithms over the property-graph store, traversal-style.

Implemented the way an embedded-graph-database user writes them: per-object
adjacency walks, node properties for state, and write transactions for
every state change (one transaction per vertex per iteration for PageRank,
matching autocommit-style usage).  These are the "Graph Database" bars of
Figure 2.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any

from repro.baselines.graphdb.store import PropertyGraphStore

__all__ = ["graphdb_pagerank", "graphdb_shortest_paths", "graphdb_wcc"]


def graphdb_pagerank(
    store: PropertyGraphStore,
    iterations: int = 10,
    damping: float = 0.85,
) -> dict[int, float]:
    """PageRank via property traversal.

    Each iteration reads every node's in-neighbors through the object
    graph and writes the new rank as a node property inside a per-node
    write transaction.  Semantics match
    :class:`repro.programs.pagerank.PageRank` exactly (dangling vertices
    keep their rank), so results can be cross-checked.
    """
    node_ids = store.node_ids()
    n = len(node_ids)
    if n == 0:
        return {}
    with store.transaction() as tx:
        for node_id in node_ids:
            tx.set_property(node_id, "rank", 1.0 / n)

    for _ in range(iterations):
        # Read phase: compute new ranks from the current properties.
        fresh: dict[int, float] = {}
        for node_id in node_ids:
            incoming = 0.0
            for rel in store.in_relationships(node_id):
                neighbor = store.node(rel.start)
                incoming += neighbor.properties["rank"] / len(neighbor.out_rels)
            fresh[node_id] = (1.0 - damping) / n + damping * incoming
        # Write phase: one transaction per node, autocommit style.
        for node_id in node_ids:
            with store.transaction() as tx:
                tx.set_property(node_id, "rank", fresh[node_id])

    return {node_id: store.node(node_id).properties["rank"] for node_id in node_ids}


def graphdb_shortest_paths(store: PropertyGraphStore, source: int) -> dict[int, float]:
    """Single-source shortest paths via Dijkstra over object adjacency.

    Distances are recorded as node properties in a write transaction per
    settled node; unreachable nodes get ``inf``.
    """
    infinity = float("inf")
    dist: dict[int, float] = {node_id: infinity for node_id in store.node_ids()}
    if source not in dist:
        return dist
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    while heap:
        d, node_id = heapq.heappop(heap)
        if node_id in settled:
            continue
        settled.add(node_id)
        with store.transaction() as tx:
            tx.set_property(node_id, "distance", d)
        for rel in store.out_relationships(node_id):
            weight = float(rel.properties.get("weight", 1.0))
            candidate = d + weight
            if candidate < dist[rel.end]:
                dist[rel.end] = candidate
                heapq.heappush(heap, (candidate, rel.end))
    return dist


def graphdb_wcc(store: PropertyGraphStore) -> dict[int, int]:
    """Weakly connected components via BFS over both edge directions;
    component label = smallest member id."""
    label: dict[int, int] = {}
    for start in store.node_ids():
        if start in label:
            continue
        queue = deque([start])
        members = []
        label[start] = start
        while queue:
            node_id = queue.popleft()
            members.append(node_id)
            for rel in store.out_relationships(node_id):
                if rel.end not in label:
                    label[rel.end] = start
                    queue.append(rel.end)
            for rel in store.in_relationships(node_id):
                if rel.start not in label:
                    label[rel.start] = start
                    queue.append(rel.start)
    return label
