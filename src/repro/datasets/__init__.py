"""``repro.datasets`` — synthetic graphs, metadata, and edge-list I/O.

The paper evaluates on SNAP social graphs (Twitter, GPlus, LiveJournal).
Offline, :mod:`repro.datasets.generators` produces power-law graphs with
the same shape characteristics at laptop scale; a SNAP-format reader is
provided for anyone with the real files.  :mod:`repro.datasets.metadata`
implements the §4 metadata specification (uniform/zipfian/float/string
node attributes; weight/timestamp/type edge attributes).
"""

from repro.datasets.generators import (
    Graph,
    gplus_like,
    livejournal_like,
    power_law_graph,
    ring_graph,
    star_graph,
    twitter_like,
)
from repro.datasets.metadata import MetadataSpec, attach_metadata
from repro.datasets.snap import read_snap_edge_list, write_snap_edge_list

__all__ = [
    "Graph",
    "power_law_graph",
    "twitter_like",
    "gplus_like",
    "livejournal_like",
    "ring_graph",
    "star_graph",
    "MetadataSpec",
    "attach_metadata",
    "read_snap_edge_list",
    "write_snap_edge_list",
]
