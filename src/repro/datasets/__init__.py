"""``repro.datasets`` — synthetic graphs, metadata, and edge-list I/O.

The paper evaluates on SNAP social graphs (Twitter, GPlus, LiveJournal).
Offline, :mod:`repro.datasets.generators` produces power-law graphs with
the same shape characteristics at laptop scale; a SNAP-format reader is
provided for anyone with the real files.  :mod:`repro.datasets.metadata`
implements the §4 metadata specification (uniform/zipfian/float/string
node attributes; weight/timestamp/type edge attributes).
:mod:`repro.datasets.relational` generates normalized multi-table schemas
(users/follows/likes) whose foreign keys hide a graph — the test bed for
the graph-view extraction subsystem.
"""

from repro.datasets.generators import (
    Graph,
    gplus_like,
    livejournal_like,
    power_law_graph,
    ring_graph,
    star_graph,
    twitter_like,
)
from repro.datasets.metadata import MetadataSpec, attach_metadata
from repro.datasets.relational import (
    SocialSchema,
    load_graph_as_schema,
    load_social_schema,
)
from repro.datasets.snap import read_snap_edge_list, write_snap_edge_list

__all__ = [
    "Graph",
    "power_law_graph",
    "twitter_like",
    "gplus_like",
    "livejournal_like",
    "ring_graph",
    "star_graph",
    "MetadataSpec",
    "attach_metadata",
    "SocialSchema",
    "load_social_schema",
    "load_graph_as_schema",
    "read_snap_edge_list",
    "write_snap_edge_list",
]
