"""Normalized relational schemas hiding a graph — graph-view test beds.

The graph-view subsystem needs what the paper assumes every enterprise
already has: ordinary normalized tables whose foreign keys *are* a graph.
This module generates two such schemas directly inside a
:class:`~repro.engine.database.Database`:

* :func:`load_social_schema` — a 3-table social network
  (``users`` / ``follows`` / ``likes``) with a power-law follower graph
  and a junction table for join-derived co-occurrence edges;
* :func:`load_graph_as_schema` — any :class:`~repro.datasets.generators.Graph`
  (e.g. the Figure-2 benchmark graphs) re-normalized into
  ``{prefix}_users`` / ``{prefix}_follows`` tables, so extraction can be
  benchmarked at paper scale.

All inserts go through columnar batches (``Column.from_numpy``), so
loading is as fast as the plain edge-list path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.generators import Graph, power_law_graph
from repro.engine.batch import RecordBatch
from repro.engine.column import Column
from repro.engine.database import Database
from repro.engine.types import FLOAT, INTEGER, VARCHAR

__all__ = ["SocialSchema", "load_social_schema", "load_graph_as_schema"]

_COUNTRIES = ("us", "de", "fr", "jp", "br", "in", "ng", "pl")


@dataclass(frozen=True)
class SocialSchema:
    """What :func:`load_social_schema` created.

    Attributes:
        users_table, follows_table, likes_table: created table names.
        num_users, num_follows, num_likes, num_posts: row/entity counts.
    """

    users_table: str
    follows_table: str
    likes_table: str
    num_users: int
    num_follows: int
    num_likes: int
    num_posts: int


def _insert_numpy(db: Database, table: str, columns: list[tuple]) -> None:
    """Bulk-insert ``(dtype, array)`` columns through the batch fast path."""
    schema = db.table(table).schema
    db.insert_batch(
        table,
        RecordBatch(schema, [Column.from_numpy(dtype, arr) for dtype, arr in columns]),
    )


def load_social_schema(
    db: Database,
    num_users: int = 500,
    num_follows: int = 4_000,
    num_likes: int = 1_500,
    num_posts: int | None = None,
    prefix: str = "",
    seed: int = 42,
    likes_zipf: float = 1.6,
) -> SocialSchema:
    """Create and populate the normalized 3-table social schema.

    ``{prefix}users(id, country, karma)`` one row per user;
    ``{prefix}follows(follower_id, followee_id, closeness)`` a power-law
    directed follower graph; ``{prefix}likes(user_id, post_id)`` a
    junction table connecting users who liked the same post (the
    co-occurrence edge source).  Deterministic under ``seed``.

    The row-count arguments are the scale knobs the extraction benchmark
    turns; ``likes_zipf`` shapes the Zipfian distribution of like targets
    (*larger* exponents concentrate likes on fewer posts, producing the
    celebrity-post via groups that stress co-occurrence expansion; the
    default 1.6 keeps the historical random stream bit-identical).
    """
    users = f"{prefix}users"
    follows = f"{prefix}follows"
    likes = f"{prefix}likes"
    if num_posts is None:
        num_posts = max(num_users // 4, 1)
    rng = np.random.default_rng(seed)

    for table in (users, follows, likes):
        db.execute(f"DROP TABLE IF EXISTS {table}")
    db.execute(
        f"CREATE TABLE {users} "
        "(id INTEGER NOT NULL, country VARCHAR NOT NULL, karma FLOAT NOT NULL)"
    )
    db.execute(
        f"CREATE TABLE {follows} (follower_id INTEGER NOT NULL, "
        "followee_id INTEGER NOT NULL, closeness FLOAT NOT NULL)"
    )
    db.execute(
        f"CREATE TABLE {likes} "
        f"(user_id INTEGER NOT NULL, post_id INTEGER NOT NULL)"
    )

    ids = np.arange(num_users, dtype=np.int64)
    countries = np.array(_COUNTRIES, dtype=object)[
        rng.integers(0, len(_COUNTRIES), num_users)
    ]
    karma = np.round(rng.exponential(10.0, num_users), 3)
    _insert_numpy(
        db, users, [(INTEGER, ids), (VARCHAR, countries), (FLOAT, karma)]
    )

    graph = power_law_graph(
        "follows", num_users, num_follows, seed=seed, weighted=False
    )
    closeness = np.round(rng.uniform(0.1, 5.0, graph.num_edges), 3)
    _insert_numpy(
        db,
        follows,
        [(INTEGER, graph.src), (INTEGER, graph.dst), (FLOAT, closeness)],
    )

    # Likes: distinct (user, post) pairs, posts zipf-weighted so some posts
    # have many co-likers (dense co-occurrence neighborhoods).
    posts = rng.zipf(likes_zipf, size=num_likes * 2) % num_posts
    likers = rng.integers(0, num_users, num_likes * 2)
    pairs = np.unique(np.stack([likers, posts], axis=1), axis=0)[:num_likes]
    _insert_numpy(
        db,
        likes,
        [(INTEGER, pairs[:, 0].astype(np.int64)), (INTEGER, pairs[:, 1].astype(np.int64))],
    )
    return SocialSchema(
        users_table=users,
        follows_table=follows,
        likes_table=likes,
        num_users=num_users,
        num_follows=graph.num_edges,
        num_likes=len(pairs),
        num_posts=num_posts,
    )


def load_graph_as_schema(db: Database, graph: Graph, prefix: str) -> SocialSchema:
    """Re-normalize an edge-list graph into ``{prefix}_users`` /
    ``{prefix}_follows`` base tables (no junction table).

    This is the benchmark path: the Figure-2 graphs become relational
    base tables, and graph-view extraction over them is timed against the
    direct ``load_graph`` edge-list path on identical data.
    """
    users = f"{prefix}_users"
    follows = f"{prefix}_follows"
    for table in (users, follows):
        db.execute(f"DROP TABLE IF EXISTS {table}")
    db.execute(f"CREATE TABLE {users} (id INTEGER NOT NULL)")
    db.execute(
        f"CREATE TABLE {follows} (follower_id INTEGER NOT NULL, "
        "followee_id INTEGER NOT NULL, closeness FLOAT NOT NULL)"
    )
    ids = np.arange(graph.num_vertices, dtype=np.int64)
    _insert_numpy(db, users, [(INTEGER, ids)])
    weights = (
        graph.weights
        if graph.weights is not None
        else np.ones(graph.num_edges, dtype=np.float64)
    )
    _insert_numpy(
        db,
        follows,
        [(INTEGER, graph.src), (INTEGER, graph.dst), (FLOAT, weights)],
    )
    return SocialSchema(
        users_table=users,
        follows_table=follows,
        likes_table="",
        num_users=graph.num_vertices,
        num_follows=graph.num_edges,
        num_likes=0,
        num_posts=0,
    )
