"""Synthetic graph generators.

:func:`power_law_graph` draws both edge endpoints from a Zipf-like
distribution over vertex ids, yielding the heavy-tailed in/out degree
distributions of social networks (a configuration-model analogue of the
SNAP graphs the paper uses).  The three presets scale the paper's datasets
down to laptop size while preserving their *relative* shapes:

=================  ==========  ==========  ================  =============
preset             paper |V|   paper |E|   default (|V|,|E|)  density rank
=================  ==========  ==========  ================  =============
twitter_like       81 K        1.7 M       (2 000, 40 000)    medium (~20)
gplus_like         107 K       13.6 M      (1 200, 110 000)   dense (~92)
livejournal_like   4.8 M       68 M        (24 000, 340 000)  sparse (~14)
=================  ==========  ==========  ================  =============

All generators are deterministic under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError

__all__ = [
    "Graph",
    "power_law_graph",
    "twitter_like",
    "gplus_like",
    "livejournal_like",
    "ring_graph",
    "star_graph",
]


@dataclass
class Graph:
    """An edge-list graph with optional weights.

    Attributes:
        name: identifier (doubles as the Vertexica table prefix).
        num_vertices: ids are ``0..num_vertices-1``.
        src, dst: int64 endpoint arrays.
        weights: float64 edge weights (``None`` = unweighted/1.0).
        directed: whether edges are one-way (generators produce directed).
    """

    name: str
    num_vertices: int
    src: np.ndarray
    dst: np.ndarray
    weights: np.ndarray | None = None
    directed: bool = True

    @property
    def num_edges(self) -> int:
        """Edge count."""
        return len(self.src)

    def degree_sequence(self) -> np.ndarray:
        """Out-degree per vertex."""
        return np.bincount(self.src, minlength=self.num_vertices)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Graph({self.name!r}, |V|={self.num_vertices}, |E|={self.num_edges})"


def _zipf_probabilities(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    probabilities = ranks**-exponent
    return probabilities / probabilities.sum()


def power_law_graph(
    name: str,
    num_vertices: int,
    num_edges: int,
    exponent: float = 1.4,
    seed: int = 42,
    weighted: bool = False,
    weight_range: tuple[float, float] = (1.0, 10.0),
) -> Graph:
    """A directed multigraph-free power-law graph.

    Endpoints are drawn independently from a Zipf(``exponent``)
    distribution over a seed-shuffled id permutation (so hubs are spread
    over the id space rather than clustered at 0, which would bias
    hash-partitioning experiments).  Duplicate edges and self-loops are
    rejected and redrawn, so exactly ``num_edges`` distinct edges return.

    Raises:
        DatasetError: when ``num_edges`` exceeds what a simple directed
            graph of this size can hold.
    """
    if num_vertices < 2:
        raise DatasetError("power_law_graph needs at least 2 vertices")
    capacity = num_vertices * (num_vertices - 1)
    if num_edges > capacity * 0.8:
        raise DatasetError(
            f"cannot draw {num_edges} distinct edges from a {num_vertices}-vertex "
            f"graph (capacity {capacity}); lower num_edges or raise num_vertices"
        )
    rng = np.random.default_rng(seed)
    probabilities = _zipf_probabilities(num_vertices, exponent)
    permutation = rng.permutation(num_vertices)

    chosen: set[int] = set()
    src_out = np.empty(num_edges, dtype=np.int64)
    dst_out = np.empty(num_edges, dtype=np.int64)
    filled = 0
    while filled < num_edges:
        need = int((num_edges - filled) * 1.5) + 16
        s = permutation[rng.choice(num_vertices, size=need, p=probabilities)]
        d = permutation[rng.choice(num_vertices, size=need, p=probabilities)]
        for a, b in zip(s, d):
            if a == b:
                continue
            key = int(a) * num_vertices + int(b)
            if key in chosen:
                continue
            chosen.add(key)
            src_out[filled] = a
            dst_out[filled] = b
            filled += 1
            if filled == num_edges:
                break
    weights = None
    if weighted:
        low, high = weight_range
        weights = rng.uniform(low, high, size=num_edges)
    return Graph(name, num_vertices, src_out, dst_out, weights=weights)


def _preset(name: str, n: int, e: int, exponent: float, seed: int) -> Graph:
    """Build a preset, clamping edges to half the simple-graph capacity so
    very small scales of the dense presets stay generatable."""
    n = max(n, 10)
    capacity_cap = n * (n - 1) // 2
    e = max(min(e, capacity_cap), 20)
    return power_law_graph(name, n, e, exponent=exponent, seed=seed)


def twitter_like(scale: float = 1.0, seed: int = 42) -> Graph:
    """The small, moderately dense graph of Figure 2 (Twitter-shaped)."""
    return _preset("twitter", int(2_000 * scale), int(40_000 * scale), 1.5, seed)


def gplus_like(scale: float = 1.0, seed: int = 43) -> Graph:
    """The medium graph with very high density (GPlus-shaped)."""
    return _preset("gplus", int(1_200 * scale), int(110_000 * scale), 1.2, seed)


def livejournal_like(scale: float = 1.0, seed: int = 44) -> Graph:
    """The large sparse graph (LiveJournal-shaped)."""
    return _preset("livejournal", int(24_000 * scale), int(340_000 * scale), 1.35, seed)


def ring_graph(name: str, num_vertices: int) -> Graph:
    """A directed cycle — worst case for propagation algorithms (diameter
    ``|V|``); used by tests and the SSSP edge-case benches."""
    ids = np.arange(num_vertices, dtype=np.int64)
    return Graph(name, num_vertices, ids, (ids + 1) % num_vertices)


def star_graph(name: str, num_leaves: int) -> Graph:
    """Vertex 0 pointing at every leaf — maximal skew for batching tests."""
    dst = np.arange(1, num_leaves + 1, dtype=np.int64)
    src = np.zeros(num_leaves, dtype=np.int64)
    return Graph(name, num_leaves + 1, src, dst)
