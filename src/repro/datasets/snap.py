"""SNAP edge-list I/O.

The paper's datasets come from http://snap.stanford.edu/data/ as
whitespace-separated edge lists with ``#`` comment headers.  This module
reads/writes that format so the harness can run on the real files when
they are available, and on generated graphs otherwise.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable

import numpy as np

from repro.core.faults import retry_call
from repro.datasets.generators import Graph
from repro.errors import DatasetError

__all__ = ["read_snap_edge_list", "write_snap_edge_list", "download_snap_edge_list"]


def download_snap_edge_list(
    url: str,
    path: str,
    *,
    timeout: float = 30.0,
    retries: int = 3,
    backoff: float = 0.5,
    opener: Callable[..., Any] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> str:
    """Download a SNAP edge-list file to ``path``; returns ``path``.

    Transient network failures — connection resets, timeouts, DNS
    hiccups, retriable HTTP statuses (429/5xx) — are retried up to
    ``retries`` times with the runtime's shared capped deterministic
    backoff (:func:`repro.core.faults.retry_call` and its classifier);
    deterministic failures (404s, bad URLs) fail immediately.  The file
    lands atomically (written to ``path + ".part"``, then renamed), so a
    crashed download never leaves a half file that parses.

    Args:
        url: source URL (an http(s) SNAP ``.txt`` edge list).
        path: destination file path.
        timeout: per-attempt socket timeout in seconds.
        retries: transient-retry budget.
        backoff: base backoff seconds between attempts.
        opener: ``urllib.request.urlopen``-compatible callable (tests
            inject fakes; the default imports urllib lazily).
        sleep: backoff sleeper (tests inject a recorder).

    Raises:
        DatasetError: the download failed after exhausting retries (the
            original network error is chained).
    """
    if opener is None:
        from urllib.request import urlopen as opener  # pragma: no cover

    def attempt() -> None:
        with opener(url, timeout=timeout) as response:
            payload = response.read()
        partial = f"{path}.part"
        with open(partial, "wb") as fh:
            fh.write(payload)
        os.replace(partial, path)

    try:
        retry_call(attempt, retries=retries, backoff=backoff, sleep=sleep)
    except Exception as exc:
        raise DatasetError(f"failed to download {url!r}: {exc}") from exc
    return path


def read_snap_edge_list(path: str, name: str | None = None, relabel: bool = True) -> Graph:
    """Parse a SNAP-format edge list into a :class:`Graph`.

    Args:
        path: the ``.txt`` edge-list file.
        name: graph name (default: file stem).
        relabel: map arbitrary ids to the dense range ``0..n-1`` (SNAP
            files use sparse ids; Vertexica only needs them integer, but
            dense ids keep the generated metadata compact).

    Raises:
        DatasetError: missing file or malformed lines.
    """
    if not os.path.exists(path):
        raise DatasetError(f"no edge-list file at {path!r}")
    src: list[int] = []
    dst: list[int] = []
    with open(path, encoding="utf-8") as fh:
        for line_number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected 'src dst', got {line!r}"
                )
            try:
                src.append(int(parts[0]))
                dst.append(int(parts[1]))
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: non-integer vertex id"
                ) from exc
    src_arr = np.asarray(src, dtype=np.int64)
    dst_arr = np.asarray(dst, dtype=np.int64)
    if relabel and len(src_arr):
        uniques, inverse = np.unique(
            np.concatenate([src_arr, dst_arr]), return_inverse=True
        )
        src_arr = inverse[: len(src_arr)].astype(np.int64)
        dst_arr = inverse[len(src_arr):].astype(np.int64)
        num_vertices = len(uniques)
    else:
        num_vertices = int(max(src_arr.max(initial=-1), dst_arr.max(initial=-1)) + 1)
    stem = name or os.path.splitext(os.path.basename(path))[0]
    safe = "".join(ch if ch.isalnum() else "_" for ch in stem) or "snap"
    return Graph(safe, num_vertices, src_arr, dst_arr)


def write_snap_edge_list(graph: Graph, path: str) -> None:
    """Write a graph in SNAP format (with a comment header)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# {graph.name}: {graph.num_vertices} nodes, {graph.num_edges} edges\n")
        fh.write("# FromNodeId\tToNodeId\n")
        for s, d in zip(graph.src, graph.dst):
            fh.write(f"{int(s)}\t{int(d)}\n")
