"""The §4 metadata generator.

"For each node, we added 24 uniformly distributed integer attributes with
cardinality varying from 2 to 10^9, 8 skewed (zipfian distribution)
integer attributes with varying skewness, 18 floating point attributes
with varying value ranges, and 10 string attributes with varying size and
cardinality.  For each edge, we added three additional attributes: the
weight, the creation timestamp, and an edge type (friend, family, or
classmate), chosen uniformly at random."

:func:`attach_metadata` materializes exactly that into two tables,
``{g}_node_attrs`` and ``{g}_edge_attrs``, enabling the §3.4 "richer graph
analytics" use cases (select a subgraph by attribute, aggregate algorithm
output against metadata, extract implicit graphs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.storage import GraphHandle
from repro.engine.batch import RecordBatch
from repro.engine.column import Column
from repro.engine.database import Database
from repro.engine.schema import ColumnDef, Schema
from repro.engine.types import FLOAT, INTEGER, VARCHAR

__all__ = ["MetadataSpec", "attach_metadata", "EDGE_TYPES"]

EDGE_TYPES = ("friend", "family", "classmate")

#: 2014-01-01 .. 2014-08-31 in unix seconds — the demo's "last one year".
_TS_RANGE = (1_388_534_400, 1_409_443_200)


@dataclass(frozen=True)
class MetadataSpec:
    """How many attributes of each §4 class to generate.

    Defaults are the paper's exact counts; tests shrink them for speed.
    """

    uniform_ints: int = 24
    zipf_ints: int = 8
    floats: int = 18
    strings: int = 10

    @property
    def total(self) -> int:
        """Total node-attribute count."""
        return self.uniform_ints + self.zipf_ints + self.floats + self.strings


def _uniform_cardinalities(count: int) -> list[int]:
    """Log-spaced cardinalities from 2 to 10^9, as the paper specifies."""
    if count == 1:
        return [2]
    exponents = np.linspace(np.log10(2), 9.0, count)
    return [max(int(round(10**e)), 2) for e in exponents]


def _zipf_exponents(count: int) -> list[float]:
    """Varying skewness: a in [1.5, 4.0]."""
    if count == 1:
        return [2.0]
    return list(np.linspace(1.5, 4.0, count))


def _float_ranges(count: int) -> list[tuple[float, float]]:
    """Varying value ranges: widths from 1 to 10^6."""
    widths = np.logspace(0, 6, count) if count > 1 else np.array([1.0])
    return [(-w / 2, w / 2) for w in widths]


def _string_pools(rng: np.random.Generator, count: int) -> list[list[str]]:
    """Pools with varying string size (4..32 chars) and cardinality
    (5..1000 distinct values)."""
    alphabet = np.array(list("abcdefghijklmnopqrstuvwxyz"))
    pools: list[list[str]] = []
    sizes = np.linspace(4, 32, count).astype(int) if count > 1 else [8]
    cards = np.geomspace(5, 1000, count).astype(int) if count > 1 else [10]
    for size, card in zip(sizes, cards):
        pool = [
            "".join(rng.choice(alphabet, size=int(size)))
            for _ in range(int(card))
        ]
        pools.append(pool)
    return pools


def attach_metadata(
    db: Database,
    graph: GraphHandle,
    spec: MetadataSpec | None = None,
    seed: int = 1234,
) -> tuple[str, str]:
    """Create ``{g}_node_attrs`` and ``{g}_edge_attrs`` for a loaded graph.

    Node attribute columns are named ``u0..``, ``z0..``, ``f0..``,
    ``s0..`` by class.  Edge attributes are ``weight`` (uniform 0..10),
    ``created_at`` (unix seconds across 2014), and ``etype`` (uniform over
    friend/family/classmate).

    Returns:
        ``(node_attrs_table, edge_attrs_table)`` names.
    """
    spec = spec or MetadataSpec()
    rng = np.random.default_rng(seed)
    node_table = f"{graph.name}_node_attrs"
    edge_table = f"{graph.name}_edge_attrs"
    db.execute(f"DROP TABLE IF EXISTS {node_table}")
    db.execute(f"DROP TABLE IF EXISTS {edge_table}")

    ids = np.array(
        [row[0] for row in db.execute(
            f"SELECT id FROM {graph.node_table} ORDER BY id"
        ).rows()],
        dtype=np.int64,
    )
    n = len(ids)

    defs: list[ColumnDef] = [ColumnDef("id", INTEGER, nullable=False)]
    columns: list[Column] = [Column.from_numpy(INTEGER, ids)]

    for i, cardinality in enumerate(_uniform_cardinalities(spec.uniform_ints)):
        defs.append(ColumnDef(f"u{i}", INTEGER))
        columns.append(
            Column.from_numpy(INTEGER, rng.integers(0, cardinality, size=n))
        )
    for i, a in enumerate(_zipf_exponents(spec.zipf_ints)):
        defs.append(ColumnDef(f"z{i}", INTEGER))
        columns.append(Column.from_numpy(INTEGER, rng.zipf(a, size=n)))
    for i, (low, high) in enumerate(_float_ranges(spec.floats)):
        defs.append(ColumnDef(f"f{i}", FLOAT))
        columns.append(Column.from_numpy(FLOAT, rng.uniform(low, high, size=n)))
    for i, pool in enumerate(_string_pools(rng, spec.strings)):
        defs.append(ColumnDef(f"s{i}", VARCHAR))
        picks = rng.integers(0, len(pool), size=n)
        values = np.empty(n, dtype=object)
        values[:] = [pool[p] for p in picks]
        columns.append(Column(VARCHAR, values))

    node_schema = Schema(defs)
    node_ddl = ", ".join(
        f"{c.name} {c.dtype.name}" + ("" if c.nullable else " NOT NULL")
        for c in node_schema
    )
    db.execute(f"CREATE TABLE {node_table} ({node_ddl})")
    db.insert_batch(node_table, RecordBatch(node_schema, columns))

    edges = db.execute(
        f"SELECT src, dst FROM {graph.edge_table}"
    ).batch
    m = edges.num_rows
    etype_values = np.empty(m, dtype=object)
    etype_values[:] = [EDGE_TYPES[i] for i in rng.integers(0, len(EDGE_TYPES), size=m)]
    edge_schema = Schema(
        [
            ColumnDef("src", INTEGER, nullable=False),
            ColumnDef("dst", INTEGER, nullable=False),
            ColumnDef("weight", FLOAT, nullable=False),
            ColumnDef("created_at", INTEGER, nullable=False),
            ColumnDef("etype", VARCHAR, nullable=False),
        ]
    )
    db.execute(
        f"CREATE TABLE {edge_table} (src INTEGER NOT NULL, dst INTEGER NOT NULL, "
        "weight FLOAT NOT NULL, created_at INTEGER NOT NULL, etype VARCHAR NOT NULL)"
    )
    db.insert_batch(
        edge_table,
        RecordBatch(
            edge_schema,
            [
                edges.column("src"),
                edges.column("dst"),
                Column.from_numpy(FLOAT, rng.uniform(0.0, 10.0, size=m)),
                Column.from_numpy(INTEGER, rng.integers(*_TS_RANGE, size=m)),
                Column(VARCHAR, etype_values),
            ],
        ),
    )
    return node_table, edge_table
