"""The §4 demonstration, console edition.

Recreates the Figure 3 interaction programmatically: lay out the graph,
select scopes (a bounding rectangle, a metadata filter, clicked vertices),
and print the console blocks the GUI shows for each scope — node/edge/
triangle counts, top shortest paths, top PageRanks, and a histogram.

Run:
    python examples/demo_console.py
"""

from repro import Vertexica
from repro.datasets import MetadataSpec, attach_metadata, twitter_like
from repro.demo import DemoConsole, ScopeSelector, assign_layout


def main() -> None:
    vx = Vertexica()
    data = twitter_like(scale=0.04)
    graph = vx.load_graph(
        "march", data.src, data.dst, num_vertices=data.num_vertices
    )
    attach_metadata(
        vx.db, graph, MetadataSpec(uniform_ints=2, zipf_ints=1, floats=1, strings=1)
    )
    assign_layout(vx.db, graph, seed=3)
    hub = vx.sql(
        "SELECT src FROM march_edge GROUP BY src ORDER BY COUNT(*) DESC LIMIT 1"
    ).scalar()

    # -- full-graph console (the GUI's default view) ---------------------
    print(DemoConsole(vx.db, graph, label="Mar").report(source=hub))

    selector = ScopeSelector(vx.db, graph)

    # -- scope 1: draw a bounding rectangle over the visualization -------
    rect = selector.by_rectangle(-0.4, -0.4, 0.4, 0.4)
    print("\n" + "=" * 60)
    print("scope: rectangle (-0.4,-0.4)..(0.4,0.4)\n")
    print(DemoConsole(vx.db, rect, label="Mar[rect]").report())

    # -- scope 2: metadata filter ('Family' edges, as in §4.2.3) ----------
    family = selector.by_edge_predicate("etype = 'family'")
    print("\n" + "=" * 60)
    print("scope: edges of type 'family'\n")
    console = DemoConsole(vx.db, family, label="Mar[family]")
    print(console.node_count())
    print(console.edge_count())
    print(console.triangle_count())

    # -- scope 3: clicked vertices (the hub's neighborhood) ---------------
    neighborhood = [hub] + [
        r[0] for r in vx.sql(
            "SELECT dst FROM march_edge WHERE src = ? LIMIT 12", params=(hub,)
        ).rows()
    ]
    clicked = selector.by_vertices(neighborhood)
    print("\n" + "=" * 60)
    print(f"scope: clicked vertices around hub {hub}\n")
    print(DemoConsole(vx.db, clicked, label="Mar[clicked]").report(source=hub))


if __name__ == "__main__":
    main()
