"""Recommendations: collaborative filtering as a vertex program (§3.1).

Builds a synthetic user x item ratings bipartite graph with planted taste
clusters, learns latent factors with the CollaborativeFiltering vertex
program (factor vectors stored densely in RANK typed FLOAT columns via
the vector codec — pass ``codec="json"`` for the legacy VARCHAR
serialization), and produces top-N recommendations — then sanity-checks
that held-out ratings are predicted better than chance.

Run:
    python examples/recommendations.py
"""

import numpy as np

from repro import Vertexica
from repro.programs import CollaborativeFiltering

N_USERS = 24
N_ITEMS = 16
RANK = 6


def synthetic_ratings(seed: int = 11) -> list[tuple[int, int, float]]:
    """Two taste clusters: users love their cluster's items (4-5 stars)
    and shrug at the other's (1-2 stars); ~60% of cells observed."""
    rng = np.random.default_rng(seed)
    ratings = []
    for user in range(N_USERS):
        user_cluster = user % 2
        for item in range(N_ITEMS):
            if rng.random() > 0.6:
                continue
            item_cluster = item % 2
            base = 4.5 if user_cluster == item_cluster else 1.5
            ratings.append(
                (user, N_USERS + item, float(np.clip(base + rng.normal(0, 0.3), 1, 5)))
            )
    return ratings


def main() -> None:
    ratings = synthetic_ratings()
    rng = np.random.default_rng(99)
    holdout_idx = set(rng.choice(len(ratings), size=len(ratings) // 10, replace=False))
    train = [r for i, r in enumerate(ratings) if i not in holdout_idx]
    test = [r for i, r in enumerate(ratings) if i in holdout_idx]
    print(f"{N_USERS} users x {N_ITEMS} items, {len(train)} train / {len(test)} held out")

    vx = Vertexica()
    graph = vx.load_graph(
        "ratings",
        [u for u, i, r in train],
        [i for u, i, r in train],
        weights=[r for u, i, r in train],
        symmetrize=True,  # items must message users back
    )

    program = CollaborativeFiltering(
        iterations=60, rank=RANK, learning_rate=0.08, regularization=0.05
    )
    result = vx.run(graph, program)
    print(result.stats.summary())

    train_rmse = program.rmse(result.values, train)
    test_rmse = program.rmse(result.values, test)
    print(f"\nRMSE: train {train_rmse:.3f}, held-out {test_rmse:.3f}")
    spread = np.std([r for _, _, r in ratings])
    print(f"(predicting the mean would score ~{spread:.3f})")

    # Top-N recommendations: unrated items with the highest predicted rating.
    user = 0
    rated = {i for u, i, _ in train if u == user}
    candidates = [
        (item, program.predict(result.values, user, item))
        for item in range(N_USERS, N_USERS + N_ITEMS)
        if item not in rated
    ]
    candidates.sort(key=lambda pair: -pair[1])
    print(f"\ntop recommendations for user {user} (even-cluster user):")
    for item, predicted in candidates[:5]:
        cluster = "same-taste" if (item - N_USERS) % 2 == user % 2 else "other"
        print(f"  item {item - N_USERS:>3} ({cluster:<10}) predicted {predicted:.2f}")

    same = [p for item, p in candidates if (item - N_USERS) % 2 == user % 2]
    other = [p for item, p in candidates if (item - N_USERS) % 2 != user % 2]
    if same and other:
        print(
            f"\nmean predicted rating — same-taste items {np.mean(same):.2f} "
            f"vs other {np.mean(other):.2f}"
        )


if __name__ == "__main__":
    main()
