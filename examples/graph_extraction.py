"""Graph views: analytics over a graph hidden in normalized tables.

The "relational friend" workflow: an ordinary 3-table social schema
(users / follows / likes) already contains two graphs — who-follows-whom
and who-liked-the-same-post.  This walkthrough declares both as one
graph view, materializes it, runs PageRank and connected components over
the extraction, cross-checks against an explicitly loaded edge list,
shows `refresh()` after base-table DML, and does it all again in plain
SQL with ``CREATE GRAPH VIEW``.

Run:
    python examples/graph_extraction.py
"""

import numpy as np

from repro import CoEdgeSpec, EdgeSpec, GraphView, NodeSpec, Vertexica
from repro.datasets import load_social_schema
from repro.programs import ConnectedComponents, PageRank


def main() -> None:
    vx = Vertexica()

    # 1. A normalized schema, not an edge list: users, a follower FK pair,
    #    and a likes junction table.
    schema = load_social_schema(vx.db, num_users=300, num_follows=2_400, num_likes=900)
    print(
        f"base tables: {schema.num_users} users, {schema.num_follows} follows, "
        f"{schema.num_likes} likes over {schema.num_posts} posts"
    )

    # 2. Declare the graph hiding inside it.  `follows` rows are edges;
    #    `likes` rows co-occur through their shared post_id — a
    #    join-derived edge weighted by the number of shared posts.
    view = GraphView(
        vertices=NodeSpec("users", key="id"),
        edges=[
            EdgeSpec(
                "follows",
                src="follower_id",
                dst="followee_id",
                weight="closeness",
                directed=False,  # also emit reverse edges (undirected algos)
            ),
            CoEdgeSpec("likes", member="user_id", via="post_id"),
        ],
    )
    social = vx.create_graph_view("social", view)
    print(social.last_extraction.summary())

    # 3. Run vertex programs straight on the view.
    ranks = vx.run(social, PageRank(iterations=10))
    print("\nTop 5 users by PageRank over the extracted graph:")
    for vertex, rank in ranks.top(5):
        print(f"  user {vertex:>4}  rank {rank:.6f}")
    components = vx.run(social, ConnectedComponents())
    n_components = len(set(components.values.values()))
    print(f"connected components: {n_components}")

    # 4. Cross-check: the same graph loaded as an explicit edge list gives
    #    identical results — extraction is exact, not approximate.
    src, dst, weight = _explicit_edges(vx)
    explicit = vx.load_graph(
        "explicit", src, dst, weights=weight, num_vertices=schema.num_users
    )
    check = vx.run(explicit, PageRank(iterations=10))
    worst = max(
        abs(ranks.values[v] - check.values[v]) for v in check.values
    )
    print(f"\nmax |view - explicit edge list| = {worst:.2e}")

    # 5. Base-table DML + refresh: the view follows its base tables.
    vx.sql("INSERT INTO follows VALUES (0, 299, 9.9), (299, 0, 9.9)")
    before = social.resolve().num_edges
    social.refresh()
    print(f"refresh after INSERT: |E| {before} -> {social.resolve().num_edges}")

    # 6. The same declaration as a SQL statement.
    vx.sql(
        "CREATE MATERIALIZED GRAPH VIEW influencers AS "
        "NODES (users KEY id WHERE karma > 5.0) "
        "EDGES (follows SRC follower_id DST followee_id WEIGHT closeness "
        "       WHERE closeness > 1.0)"
    )
    handle = vx.graph_view("influencers")
    print(f"\nSQL-declared view: {handle.last_extraction.summary()}")
    top = vx.run("influencers", PageRank(iterations=10)).top(3)
    print("top 3 high-karma users by strong-tie PageRank:", [v for v, _ in top])


def _explicit_edges(vx: Vertexica):
    """Rebuild the view's edge list by hand (follows both ways + co-likes)."""
    fwd = vx.sql(
        "SELECT follower_id, followee_id, closeness FROM follows"
    ).rows()
    likes = vx.sql("SELECT user_id, post_id FROM likes").rows()
    by_post: dict[int, list[int]] = {}
    for user, post in likes:
        by_post.setdefault(post, []).append(user)
    co: dict[tuple[int, int], int] = {}
    for members in by_post.values():
        for a in members:
            for b in members:
                if a != b:
                    co[(a, b)] = co.get((a, b), 0) + 1
    src = [r[0] for r in fwd] + [r[1] for r in fwd] + [a for a, _ in co]
    dst = [r[1] for r in fwd] + [r[0] for r in fwd] + [b for _, b in co]
    weight = (
        [r[2] for r in fwd] * 2 + [float(n) for n in co.values()]
    )
    return np.array(src), np.array(dst), np.array(weight, dtype=np.float64)


if __name__ == "__main__":
    main()
