"""Reproduce Figure 2: the paper's four-system performance comparison.

Runs PageRank and single-source shortest paths on the three Figure 2
graphs across all four systems, verifies every system computed the same
answer, and prints the grid in the paper's layout.

Scale via REPRO_BENCH_SCALE (default 0.25):

    REPRO_BENCH_SCALE=0.1 python examples/reproduce_figure2.py
"""

from repro.bench import bench_graphs, bench_scale, format_figure2_table
from repro.bench.figure2 import figure2_rows


def main() -> None:
    scale = bench_scale()
    graphs = bench_graphs().ordered()
    print(f"scale = {scale}")
    for graph in graphs:
        print(f"  {graph.name:<12} |V| = {graph.num_vertices:>6}  |E| = {graph.num_edges:>7}")
    print()

    for algorithm, title in (
        ("pagerank", "Figure 2(a): PageRank"),
        ("sssp", "Figure 2(b): Single-Source Shortest Paths"),
    ):
        rows = figure2_rows(algorithm, graphs)
        print(format_figure2_table(title, rows))
        print()

    print(
        "All timed systems produced identical results on every graph\n"
        "(asserted via result fingerprints before printing the tables)."
    )


if __name__ == "__main__":
    main()
