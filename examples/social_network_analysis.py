"""Social-network analysis: the paper's §3.2/§3.4 hybrid workloads.

A metadata-rich social graph analyzed end-to-end in one system:

* 1-hop SQL algorithms (triangles, strong overlap, weak ties);
* hybrid queries mixing PageRank with weak ties and clustering;
* relational pre-filtering (edges of type 'family') feeding graph
  algorithms, and relational post-processing of their output.

Run:
    python examples/social_network_analysis.py
"""

from repro import Vertexica
from repro.datasets import MetadataSpec, attach_metadata, twitter_like
from repro.hybrid import (
    important_bridges,
    near_or_important,
    sssp_from_most_clustered,
)
from repro.programs import PageRank
from repro.sql_graph import (
    global_clustering_coefficient,
    strong_overlap_sql,
    triangle_count_sql,
    weak_ties_sql,
)


def main() -> None:
    vx = Vertexica()
    data = twitter_like(scale=0.05)
    graph = vx.load_graph(
        "social", data.src, data.dst, num_vertices=data.num_vertices
    )
    node_attrs, edge_attrs = attach_metadata(
        vx.db, graph, MetadataSpec(uniform_ints=4, zipf_ints=2, floats=2, strings=2)
    )
    print(f"graph: {graph.num_vertices} people, {graph.num_edges} links")
    print(f"metadata: {node_attrs}, {edge_attrs}\n")

    # -- 1-hop analyses (§3.2) -----------------------------------------
    triangles = triangle_count_sql(vx.db, graph)
    clustering = global_clustering_coefficient(vx.db, graph)
    print(f"triangles: {triangles}, global clustering coefficient: {clustering:.4f}")

    overlaps = strong_overlap_sql(vx.db, graph, min_common=5)
    print(f"strongly overlapping pairs (>=5 common friends): {len(overlaps)}")
    for a, b, common in overlaps[:3]:
        print(f"  {a} & {b} share {common} friends")

    ties = weak_ties_sql(vx.db, graph, min_pairs=10)
    print(f"weak ties bridging >=10 disconnected pairs: {len(ties)}")

    # -- hybrid queries (§3.2) -------------------------------------------
    bridges = important_bridges(vx.db, graph, rank_percentile=0.9)
    print("\nimportant bridges (top PageRank decile AND weak ties):")
    for vertex, rank, pairs in bridges[:5]:
        print(f"  vertex {vertex:>5}: rank {rank:.5f}, bridges {pairs} pairs")

    source, distances = sssp_from_most_clustered(vx.db, graph)
    reachable = sum(1 for d in distances.values() if d != float("inf"))
    print(f"\nmost-clustered vertex: {source}; reaches {reachable} vertices")

    flagged = near_or_important(
        vx.db, graph, source=source, distance_threshold=2.0, rank_percentile=0.95
    )
    print(f"near-or-important vertices relative to {source}: {len(flagged)}")

    # -- relational pre-filter -> graph algorithm (§3.4) -----------------
    family = vx.sql(
        f"SELECT src, dst FROM {edge_attrs} WHERE etype = 'family'"
    ).rows()
    family_graph = vx.load_graph(
        "family", [r[0] for r in family], [r[1] for r in family]
    )
    family_result = vx.run(family_graph, PageRank(iterations=8))
    print(
        f"\nfamily subgraph: {family_graph.num_edges} edges; "
        f"top family member: vertex {family_result.top(1)[0][0]}"
    )

    # -- relational post-processing of graph output (§3.4) ---------------
    vx.run(graph, PageRank(iterations=8))
    report = vx.sql(
        f"SELECT a.s0 AS community_tag, COUNT(*) AS members, "
        f"AVG(v.value) AS avg_rank "
        f"FROM social_vertex v JOIN {node_attrs} a ON v.id = a.id "
        f"GROUP BY a.s0 ORDER BY avg_rank DESC LIMIT 5"
    ).rows()
    print("\naverage PageRank by profile tag (SQL over program output):")
    for tag, members, avg_rank in report:
        print(f"  {tag:<12} {members:>4} members, avg rank {avg_rank:.6f}")


if __name__ == "__main__":
    main()
