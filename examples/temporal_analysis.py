"""Dynamic & time-series graph analysis (§3.3 / §4.2.3).

A growing social graph recorded in a versioned edge store, analyzed the
way the demo's continuous/time-series modes do:

* PageRank at multiple points in time + the biggest movers;
* "which nodes have come closer" (shortest-path decreases);
* continuous mode: mutate -> re-analyze -> watch output and runtime.

Run:
    python examples/temporal_analysis.py
"""

import numpy as np

from repro import Vertexica
from repro.datasets import twitter_like
from repro.sql_graph import triangle_count_sql
from repro.temporal import (
    ContinuousAnalysis,
    VersionedEdgeStore,
    pagerank_delta,
    pagerank_over_time,
    paths_decreased,
)

YEAR = 365 * 24 * 3600
T2010 = 1262304000  # 2010-01-01


def main() -> None:
    vx = Vertexica()
    data = twitter_like(scale=0.04)

    # Record 5 years of growth: each year adds a fifth of the edges.
    store = VersionedEdgeStore(vx.db, "history")
    per_year = data.num_edges // 5
    for index, (src, dst) in enumerate(zip(data.src.tolist(), data.dst.tolist())):
        year = min(index // per_year, 4)
        store.add_edge(src, dst, timestamp=T2010 + year * YEAR)
    print(f"recorded {data.num_edges} edges across 5 yearly cohorts")

    # -- "how has PageRank changed in the last 5 years?" -----------------
    timestamps = [T2010 + y * YEAR + 1 for y in range(5)]
    series = pagerank_over_time(vx.db, store, timestamps, iterations=6)
    sizes = {t: store.snapshot(t).num_edges for t in timestamps}
    print("\nsnapshot sizes:", [sizes[t] for t in timestamps])

    movers = pagerank_delta(series[timestamps[0]], series[timestamps[-1]], top_k=5)
    print("\nbiggest PageRank movers, year 1 -> year 5:")
    for vertex, delta in movers:
        a = series[timestamps[0]].get(vertex, 0.0)
        b = series[timestamps[-1]].get(vertex, 0.0)
        print(f"  vertex {vertex:>5}: {a:.5f} -> {b:.5f}  ({delta:+.5f})")

    # -- "which nodes have come closer in the last year?" ----------------
    hub = int(np.argmax(data.degree_sequence()))
    closer = paths_decreased(
        vx.db, store, source=hub,
        before_ts=timestamps[-2], after_ts=timestamps[-1],
        min_decrease=1.0,
    )
    print(f"\nnodes that moved >=1 hop closer to hub {hub} in the final year: {len(closer)}")
    for vertex, old, new in closer[:5]:
        old_text = "unreachable" if old == float("inf") else f"{old:.0f}"
        print(f"  vertex {vertex:>5}: {old_text} -> {new:.0f}")

    # -- continuous mode (§4.2.3) -----------------------------------------
    live = store.snapshot(timestamps[-1], snapshot_name="live")
    analysis = ContinuousAnalysis(
        vx.db, live, lambda db, g: triangle_count_sql(db, g)
    )
    tick = analysis.run_once()
    print(f"\ncontinuous mode — initial triangles: {tick.result} ({tick.seconds:.3f}s)")
    rng = np.random.default_rng(7)
    for _ in range(3):
        a, b = rng.integers(0, data.num_vertices, size=2)
        tick = analysis.apply_and_rerun(edges_to_add=[(int(a), int(b), 1.0)])
        print(
            f"  +edge ({a:>4} -> {b:>4}): triangles {tick.result} "
            f"({tick.seconds:.3f}s)"
        )


if __name__ == "__main__":
    main()
