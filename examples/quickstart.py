"""Quickstart: vertex-centric PageRank on a relational engine.

Loads a small social-network-shaped graph, runs PageRank through the
Pregel-style API, cross-checks the hand-tuned SQL implementation, and
shows that the graph is ordinary relational data you can keep querying.

Run:
    python examples/quickstart.py
"""

from repro import Vertexica
from repro.datasets import twitter_like
from repro.programs import PageRank
from repro.sql_graph import pagerank_sql


def main() -> None:
    # 1. One object wraps the relational engine + the vertex-centric layer.
    vx = Vertexica()

    # 2. Load a graph: it becomes two tables, {name}_edge and {name}_node.
    graph_data = twitter_like(scale=0.05)
    graph = vx.load_graph(
        "quickstart",
        graph_data.src,
        graph_data.dst,
        num_vertices=graph_data.num_vertices,
    )
    print(f"loaded {graph.num_vertices} vertices / {graph.num_edges} edges")

    # 3. Run a vertex program.  The coordinator is a stored procedure; the
    #    workers are transform UDFs; state lives in vertex/edge/message
    #    tables — exactly the paper's architecture.
    result = vx.run(graph, PageRank(iterations=10))
    print(f"\n{result.stats.summary()}")
    print("\nTop 5 vertices by PageRank (vertex-centric):")
    for vertex, rank in result.top(5):
        print(f"  vertex {vertex:>5}  rank {rank:.6f}")

    # 4. The same algorithm as hand-written SQL — the paper's fastest path.
    sql_ranks = pagerank_sql(vx.db, graph, iterations=10)
    top_sql = sorted(sql_ranks.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
    print("\nTop 5 vertices by PageRank (pure SQL):")
    for vertex, rank in top_sql:
        print(f"  vertex {vertex:>5}  rank {rank:.6f}")

    worst = max(
        abs(result.values[v] - sql_ranks[v]) for v in range(graph.num_vertices)
    )
    print(f"\nmax |vertex-centric - SQL| = {worst:.2e}  (same algorithm, same answer)")

    # 5. Results are rows in the vertex table: keep analyzing relationally.
    histogram = vx.sql(
        "SELECT ROUND(value * 1000) AS bucket, COUNT(*) AS n "
        "FROM quickstart_vertex GROUP BY bucket ORDER BY bucket DESC LIMIT 5"
    ).rows()
    print("\nrank histogram (top buckets, straight from SQL):")
    for bucket, count in histogram:
        print(f"  ~{bucket/1000:.3f}: {count} vertices")


if __name__ == "__main__":
    main()
