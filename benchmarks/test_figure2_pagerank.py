"""F2a — Figure 2(a): PageRank runtime across systems and graphs.

Reproduces the paper's grid: {Graph Database, Apache Giraph, Vertexica,
Vertexica (SQL)} x {Twitter, GPlus, LiveJournal}-shaped graphs.  The graph
database runs only the smallest graph (the paper's DNF behaviour).

Expected shape (paper): graph DB slowest by an order of magnitude;
Vertexica ~4x faster than Giraph on the smallest graph and comparable on
the largest; Vertexica (SQL) fastest everywhere.
"""

import pytest

from conftest import run_once
from repro.bench.figure2 import GRAPHDB_ONLY_SMALLEST, prepare_system
from repro.bench.harness import GRAPH_ORDER, SYSTEM_ORDER

ALGORITHM = "pagerank"


@pytest.mark.parametrize("graph_name", GRAPH_ORDER)
@pytest.mark.parametrize("system", SYSTEM_ORDER)
@pytest.mark.benchmark(group="figure2a-pagerank")
def test_figure2a(benchmark, graphs, system, graph_name):
    graph = graphs.by_name(graph_name)
    smallest = min(graphs.ordered(), key=lambda g: g.num_edges).name
    if system == "graphdb" and GRAPHDB_ONLY_SMALLEST and graph_name != smallest:
        pytest.skip("DNF — paper: the graph database runs only the smallest graph")
    runner = prepare_system(system, graph, ALGORITHM)
    fingerprint = run_once(benchmark, runner)
    assert fingerprint > 0.0
