"""U3 — §3.4 end-to-end pipelines.

The GUI's example dataflow (Selection -> Triangle Counting -> Shortest
Paths -> PageRank -> Aggregate) measured as one pipeline, compared against
running the full-graph algorithms without the selection step — the point
being that relational pre-filtering shrinks the graph the expensive
algorithms see.
"""

import pytest

from conftest import run_once
from repro.bench.figure2 import sssp_source
from repro.core import Vertexica
from repro.pipeline import (
    Pipeline,
    aggregate_stage,
    pagerank_stage,
    select_subgraph_stage,
    shortest_paths_stage,
    triangle_count_stage,
)
from repro.sql_graph import pagerank_sql, shortest_paths_sql, triangle_count_sql


@pytest.fixture(scope="module")
def loaded(graphs):
    vx = Vertexica()
    graph = graphs.twitter
    handle = vx.load_graph(
        f"{graph.name}_pipe", graph.src, graph.dst,
        num_vertices=graph.num_vertices,
    )
    return vx, graph, handle


@pytest.mark.benchmark(group="usecase-pipeline")
def test_filtered_pipeline(benchmark, loaded):
    vx, graph, handle = loaded
    keep_below = graph.num_vertices // 2
    pipe = (
        Pipeline("demo")
        .add_stage(
            "subgraph",
            select_subgraph_stage(
                f"src < {keep_below} AND dst < {keep_below}", name="pipe_sub"
            ),
        )
        .add_stage("triangles", triangle_count_stage(graph_key="subgraph"),
                   depends_on=["subgraph"])
        .add_stage("paths", shortest_paths_stage(0, graph_key="subgraph"),
                   depends_on=["subgraph"])
        .add_stage("ranks", pagerank_stage(iterations=5, graph_key="subgraph"),
                   depends_on=["subgraph"])
        .add_stage(
            "top10",
            aggregate_stage("ranks", lambda r: sorted(
                r.items(), key=lambda kv: (-kv[1], kv[0])
            )[:10]),
            depends_on=["ranks"],
        )
    )
    result = run_once(benchmark, lambda: pipe.run({"db": vx.db, "graph": handle}))
    assert len(result["top10"]) == 10


@pytest.mark.benchmark(group="usecase-pipeline")
def test_unfiltered_equivalent(benchmark, loaded):
    """The same three algorithms over the full graph (no selection stage)."""
    vx, graph, handle = loaded
    source = sssp_source(graph)

    def run_all():
        return (
            triangle_count_sql(vx.db, handle),
            shortest_paths_sql(vx.db, handle, source),
            pagerank_sql(vx.db, handle, iterations=5),
        )

    triangles, paths, ranks = run_once(benchmark, run_all)
    assert len(ranks) == graph.num_vertices
