"""U2 — §3.3 dynamic graph analysis.

Continuous mode: mutate the graph, re-run the analysis, observe runtimes —
"treat graph analytics as a continuous process".  Plus the temporal
queries: PageRank drift between snapshots and shortest-path decreases.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.core import Vertexica
from repro.sql_graph import pagerank_sql, triangle_count_sql
from repro.temporal import (
    ContinuousAnalysis,
    VersionedEdgeStore,
    pagerank_delta,
    pagerank_over_time,
    paths_decreased,
)


@pytest.mark.benchmark(group="usecase-dynamic")
def test_continuous_triangle_monitoring(benchmark, twitter):
    """Initial analysis + 5 mutation batches with re-analysis after each."""
    vx = Vertexica()
    handle = vx.load_graph(
        "cont", twitter.src, twitter.dst, num_vertices=twitter.num_vertices
    )
    rng = np.random.default_rng(5)

    def drive():
        analysis = ContinuousAnalysis(
            vx.db, handle, lambda db, g: triangle_count_sql(db, g)
        )
        analysis.run_once()
        for _ in range(5):
            a, b = rng.integers(0, twitter.num_vertices, size=2)
            analysis.apply_and_rerun(edges_to_add=[(int(a), int(b), 1.0)])
        return analysis.history

    history = run_once(benchmark, drive)
    assert len(history) == 6


@pytest.mark.benchmark(group="usecase-dynamic")
def test_pagerank_over_time(benchmark, twitter):
    """PageRank on three snapshots of a growing graph + drift report."""
    vx = Vertexica()
    store = VersionedEdgeStore(vx.db, "ts")
    third = twitter.num_edges // 3
    for i, (s, d) in enumerate(zip(twitter.src.tolist(), twitter.dst.tolist())):
        store.add_edge(s, d, timestamp=(i // third) * 100)

    def drive():
        series = pagerank_over_time(vx.db, store, [50, 150, 250], iterations=5)
        return pagerank_delta(series[50], series[250], top_k=10)

    drift = run_once(benchmark, drive)
    assert len(drift) == 10


@pytest.mark.benchmark(group="usecase-dynamic")
def test_paths_decreased(benchmark, twitter):
    """'Which nodes have come closer in the last year?' between snapshots."""
    vx = Vertexica()
    store = VersionedEdgeStore(vx.db, "pd")
    half = twitter.num_edges // 2
    for i, (s, d) in enumerate(zip(twitter.src.tolist(), twitter.dst.tolist())):
        store.add_edge(s, d, timestamp=0 if i < half else 500)
    source = int(np.argmax(twitter.degree_sequence()))

    closer = run_once(
        benchmark,
        lambda: paths_decreased(vx.db, store, source, 100, 600, min_decrease=1.0),
    )
    assert isinstance(closer, list)
