"""F2b — Figure 2(b): single-source shortest paths across systems/graphs.

Same grid as Figure 2(a) with SSSP from the max-out-degree vertex.
Expected shape (paper): graph DB slowest; Vertexica ~4x faster than Giraph
on the smallest graph; Vertexica (SQL) fastest everywhere.
"""

import pytest

from conftest import run_once
from repro.bench.figure2 import GRAPHDB_ONLY_SMALLEST, prepare_system
from repro.bench.harness import GRAPH_ORDER, SYSTEM_ORDER

ALGORITHM = "sssp"


@pytest.mark.parametrize("graph_name", GRAPH_ORDER)
@pytest.mark.parametrize("system", SYSTEM_ORDER)
@pytest.mark.benchmark(group="figure2b-sssp")
def test_figure2b(benchmark, graphs, system, graph_name):
    graph = graphs.by_name(graph_name)
    smallest = min(graphs.ordered(), key=lambda g: g.num_edges).name
    if system == "graphdb" and GRAPHDB_ONLY_SMALLEST and graph_name != smallest:
        pytest.skip("DNF — paper: the graph database runs only the smallest graph")
    runner = prepare_system(system, graph, ALGORITHM)
    fingerprint = run_once(benchmark, runner)
    assert fingerprint >= 0.0
