"""O4 — §2.3 Parallel Workers ablation.

"Vertexica exploits multiple cores ... by running multiple instances of
the worker in parallel."  The worker-count sweep exercises the thread-pool
execution path.  Note (documented in EXPERIMENTS.md): CPython's GIL caps
the speedup for pure-Python vertex programs, so the expected shape here is
*no significant regression* from parallel workers plus the code-path
coverage — the paper's cluster-level scaling is out of scope.
"""

import pytest

from conftest import run_once
from repro.core import Vertexica, VertexicaConfig
from repro.programs import PageRank

ITERATIONS = 3


def prepare(graph, n_workers: int):
    vx = Vertexica(
        config=VertexicaConfig(n_partitions=max(8, n_workers * 2), n_workers=n_workers)
    )
    handle = vx.load_graph(
        f"{graph.name}_w{n_workers}", graph.src, graph.dst,
        num_vertices=graph.num_vertices,
    )
    return lambda: vx.run(handle, PageRank(iterations=ITERATIONS)).values


@pytest.mark.parametrize("n_workers", [1, 2, 4, 8])
@pytest.mark.benchmark(group="ablation-parallel-workers")
def test_worker_sweep(benchmark, twitter, n_workers):
    values = run_once(benchmark, prepare(twitter, n_workers))
    assert len(values) == twitter.num_vertices
