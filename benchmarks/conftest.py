"""Shared benchmark fixtures.

Scale is controlled by ``REPRO_BENCH_SCALE`` (default 0.25); graphs are
generated once per session.  Every benchmark uses
``benchmark.pedantic(rounds=1)`` — the measured operations are seconds-long
algorithm runs, so statistical rounds would only multiply wall time.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BenchGraphs, bench_graphs
from repro.datasets.generators import Graph


@pytest.fixture(scope="session")
def graphs() -> BenchGraphs:
    """The three Figure 2 graphs at the configured scale."""
    return bench_graphs()


@pytest.fixture(scope="session")
def twitter(graphs: BenchGraphs) -> Graph:
    """The smallest Figure 2 graph."""
    return graphs.twitter


def run_once(benchmark, fn, *args, **kwargs):
    """One measured round, no warmup — suits multi-second graph runs."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
