"""O1 — §2.3 Table Unions ablation.

The paper replaces the naive three-way join (vertex x edge x message) with
a UNION ALL of the three tables: "for large number of messages (every
vertex could send a message to every other vertex in the worst case), this
three-way join could be very expensive and kill the performance".

The join input has ``out_degree(v) x messages(v)`` rows per vertex, so the
blowup only exists when vertices receive many messages — message combiners
collapse the inbox to one row and hide it.  The bench therefore measures
PageRank with combining disabled (every vertex receives ``in_degree``
messages), on both strategies, plus the combined variant as a reference
point.

Expected shape: join is several times slower than union without a
combiner; with a combiner the two converge (and both beat the uncombined
runs) — exactly why the paper unions the tables instead.
"""

import pytest

from conftest import run_once
from repro.core import Vertexica, VertexicaConfig
from repro.programs import PageRank

ITERATIONS = 4


def prepare(graph, strategy: str, use_combiner: bool):
    vx = Vertexica(
        config=VertexicaConfig(
            n_partitions=8, input_strategy=strategy, use_combiner=use_combiner
        )
    )
    suffix = "c" if use_combiner else "nc"
    handle = vx.load_graph(
        f"{graph.name}_{strategy}_{suffix}", graph.src, graph.dst,
        num_vertices=graph.num_vertices,
    )
    return lambda: vx.run(handle, PageRank(iterations=ITERATIONS)).values


@pytest.mark.parametrize("strategy", ["union", "join"])
@pytest.mark.benchmark(group="ablation-union-vs-join")
def test_union_vs_join_uncombined(benchmark, twitter, strategy):
    values = run_once(benchmark, prepare(twitter, strategy, use_combiner=False))
    assert len(values) == twitter.num_vertices


@pytest.mark.parametrize("strategy", ["union", "join"])
@pytest.mark.benchmark(group="ablation-union-vs-join")
def test_union_vs_join_combined_reference(benchmark, twitter, strategy):
    values = run_once(benchmark, prepare(twitter, strategy, use_combiner=True))
    assert len(values) == twitter.num_vertices
