"""O2 — §2.3 Vertex Batching ablation.

"The extreme case could be to run each active vertex in a different
worker.  However, this leads to many UDF calls, which are relatively
expensive...  Therefore, Vertexica batches several vertices together."

Partition count sweeps from 1 (one giant batch) through moderate batching
to one-call-per-few-vertices.  Expected shape: runtime is flat-to-slightly-
better for small partition counts and degrades as the per-call overhead
dominates (largest partition counts slowest).
"""

import pytest

from conftest import run_once
from repro.core import Vertexica, VertexicaConfig
from repro.programs import PageRank

ITERATIONS = 3


def prepare(graph, n_partitions: int):
    vx = Vertexica(config=VertexicaConfig(n_partitions=n_partitions))
    handle = vx.load_graph(
        f"{graph.name}_p{n_partitions}", graph.src, graph.dst,
        num_vertices=graph.num_vertices,
    )
    return lambda: vx.run(handle, PageRank(iterations=ITERATIONS)).values


@pytest.mark.parametrize("n_partitions", [1, 8, 64, 512])
@pytest.mark.benchmark(group="ablation-vertex-batching")
def test_batch_count_sweep(benchmark, twitter, n_partitions):
    values = run_once(benchmark, prepare(twitter, n_partitions))
    assert len(values) == twitter.num_vertices
