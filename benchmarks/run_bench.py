#!/usr/bin/env python
"""Figure-2 perf trajectory runner: PageRank / SSSP / CC on the standard
generated graphs, batch vs. scalar data plane.

Writes a ``BENCH_*.json`` with wall time per superstep, rows/sec, and
vertices/sec for every (graph, algorithm, compute-path) cell, so future
PRs have a trajectory point to compare against::

    PYTHONPATH=src python benchmarks/run_bench.py --out BENCH_PR1.json
    PYTHONPATH=src python benchmarks/run_bench.py --quick   # CI smoke

``--quick`` runs a tiny scale, asserts batch/scalar agreement, checks the
batch path is not slower than scalar (a loud perf-regression tripwire),
and does not write a file unless ``--out`` is given explicitly.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from typing import Any

from repro.bench.figure2 import sssp_source
from repro.bench.harness import bench_graphs, pagerank_iterations
from repro.core import Vertexica, VertexicaConfig
from repro.datasets.generators import Graph
from repro.programs import ConnectedComponents, PageRank, ShortestPaths

MODES = ("batch", "scalar")


ALGORITHMS = ("pagerank", "sssp", "cc")


def _program_for(algorithm: str, graph: Graph):
    if algorithm == "pagerank":
        return PageRank(iterations=pagerank_iterations())
    if algorithm == "sssp":
        return ShortestPaths(source=sssp_source(graph))
    if algorithm == "cc":
        return ConnectedComponents()
    raise ValueError(f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}")


def _fingerprint(values: dict[int, Any]) -> float:
    total = 0.0
    for value in values.values():
        if isinstance(value, (int, float)) and value == value and value != float("inf"):
            total += float(value)
    return total


def run_cell(
    graph: Graph, algorithm: str, mode: str, n_partitions: int, repeat: int = 1
) -> dict[str, Any]:
    """One (graph, algorithm, compute-path) measurement.

    With ``repeat > 1`` the run with the smallest superstep wall time
    wins — best-of-N suppresses scheduler jitter, the usual practice for
    sub-second benchmark cells.
    """
    vx = Vertexica(
        config=VertexicaConfig(n_partitions=n_partitions, compute_strategy=mode)
    )
    handle = vx.load_graph(
        graph.name,
        graph.src,
        graph.dst,
        num_vertices=graph.num_vertices,
        symmetrize=algorithm == "cc",
    )
    best: tuple[float, Any] | None = None
    for _ in range(max(repeat, 1)):
        started = time.perf_counter()
        result = vx.run(handle, _program_for(algorithm, graph))
        total = time.perf_counter() - started
        step_secs = sum(s.seconds for s in result.stats.supersteps)
        if best is None or step_secs < best[0]:
            best = (step_secs, (total, result))
    total, result = best[1]
    stats = result.stats
    superstep_seconds = sum(s.seconds for s in stats.supersteps)
    return {
        "graph": graph.name,
        "algorithm": algorithm,
        "mode": mode,
        "num_vertices": handle.num_vertices,
        "num_edges": handle.num_edges,
        "n_supersteps": stats.n_supersteps,
        "total_seconds": round(total, 6),
        "superstep_seconds": round(superstep_seconds, 6),
        "vertices_per_sec": round(stats.vertices_per_sec, 1),
        "rows_per_sec": round(stats.rows_per_sec, 1),
        "fingerprint": _fingerprint(result.values),
        "supersteps": [
            {
                "superstep": s.superstep,
                "seconds": round(s.seconds, 6),
                "compute_path": s.compute_path,
                "active_vertices": s.active_vertices,
                "rows_in": s.rows_in,
                "rows_out": s.rows_out,
                "messages_out": s.messages_out,
                "vertices_per_sec": round(s.vertices_per_sec, 1),
                "rows_per_sec": round(s.rows_per_sec, 1),
            }
            for s in stats.supersteps
        ],
    }


def git_commit() -> str | None:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=10,
            ).stdout.strip()
            or None
        )
    except OSError:
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument("--scale", type=float, default=None, help="graph scale override")
    parser.add_argument(
        "--graphs", default="twitter,gplus,livejournal", help="comma-separated graph names"
    )
    parser.add_argument(
        "--algos", default="pagerank,sssp,cc", help="comma-separated algorithms"
    )
    parser.add_argument("--partitions", type=int, default=8)
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="runs per cell; the best (min superstep time) is recorded",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny-scale smoke run: twitter only, asserts parity and that "
        "the batch path did not regress below the scalar path",
    )
    args = parser.parse_args(argv)

    scale = 0.05 if args.quick and args.scale is None else args.scale
    graphs = bench_graphs(scale)
    graph_names = ["twitter"] if args.quick else args.graphs.split(",")
    algos = args.algos.split(",")
    known_graphs = {g.name for g in graphs.ordered()}
    bad = [g for g in graph_names if g not in known_graphs] + [
        a for a in algos if a not in ALGORITHMS
    ]
    if bad:
        parser.error(
            f"unknown graph/algorithm name(s): {', '.join(bad)} "
            f"(graphs: {', '.join(sorted(known_graphs))}; algos: {', '.join(ALGORITHMS)})"
        )
    out_path = args.out
    if out_path is None and not args.quick:
        # Trajectory files are append-only history: never clobber an
        # existing one implicitly — require an explicit --out for that.
        out_path = "BENCH_PR1.json"
        if os.path.exists(out_path):
            print(
                f"{out_path} already exists; pass --out to overwrite it or "
                "choose a new trajectory filename (e.g. --out BENCH_PR2.json)",
                file=sys.stderr,
            )
            out_path = None

    results: list[dict[str, Any]] = []
    speedups: dict[str, float] = {}
    failures: list[str] = []
    for graph_name in graph_names:
        graph = graphs.by_name(graph_name)
        for algorithm in algos:
            cells = {
                mode: run_cell(graph, algorithm, mode, args.partitions, args.repeat)
                for mode in MODES
            }
            results.extend(cells.values())
            batch, scalar = cells["batch"], cells["scalar"]
            if abs(batch["fingerprint"] - scalar["fingerprint"]) > 1e-6 * max(
                1.0, abs(scalar["fingerprint"])
            ):
                failures.append(
                    f"{graph_name}/{algorithm}: batch and scalar paths disagree "
                    f"({batch['fingerprint']} vs {scalar['fingerprint']})"
                )
            ratio = (
                scalar["superstep_seconds"] / batch["superstep_seconds"]
                if batch["superstep_seconds"]
                else float("inf")
            )
            speedups[f"{graph_name}/{algorithm}"] = round(ratio, 2)
            print(
                f"{graph_name:<12} {algorithm:<9} "
                f"batch {batch['superstep_seconds']:.3f}s  "
                f"scalar {scalar['superstep_seconds']:.3f}s  "
                f"({ratio:.1f}x, {batch['vertices_per_sec']:,.0f} v/s)"
            )

    report = {
        "bench": "figure2 data-plane trajectory",
        "commit": git_commit(),
        "scale": scale if scale is not None else "default",
        "pagerank_iterations": pagerank_iterations(),
        "n_partitions": args.partitions,
        "repeat": args.repeat,
        "speedup_scalar_over_batch_superstep_seconds": speedups,
        "results": results,
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {out_path}")

    if failures:
        for line in failures:
            print("FAIL:", line, file=sys.stderr)
        return 1
    if args.quick:
        # Loud perf tripwire: the vectorized path must not lose to the
        # scalar path on any cell (generous 1.2x slack for CI noise).
        for key, ratio in speedups.items():
            if ratio < 1.0 / 1.2:
                print(f"FAIL: batch path slower than scalar on {key} ({ratio}x)", file=sys.stderr)
                return 1
        print("quick bench OK:", ", ".join(f"{k}={v}x" for k, v in speedups.items()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
